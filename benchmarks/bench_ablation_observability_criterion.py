"""Ablation — the paper's counting criterion vs numerical rank.

The paper's observability definition (full state coverage + at least n
unique delivered measurements) is a *necessary* condition for numerical
observability, cheaper to encode but potentially optimistic.  This
bench measures, over random failure sets, how often the two criteria
disagree — i.e. how conservative the paper's abstraction is — and the
cost of the numeric check.
"""

import random

import pytest

from repro.core import ObservabilityProblem, ScadaAnalyzer
from repro.grid import is_rank_observable
from repro.grid.ieee_cases import ieee14
from repro.scada import GeneratorConfig, generate_scada

_summary = {}


@pytest.fixture(scope="module")
def system():
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.2,
                        seed=4))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic, ScadaAnalyzer(synthetic.network, problem)


def test_criteria_comparison(benchmark, system):
    synthetic, analyzer = system
    rng = random.Random(0)
    field = analyzer.network.field_device_ids

    def compare():
        agree = 0
        optimistic = 0
        trials = 200
        for _ in range(trials):
            failed = set(rng.sample(field, rng.randint(0, 3)))
            delivered = analyzer.reference.delivered_measurements(failed)
            paper = analyzer.reference.observable(failed)
            rank = is_rank_observable(synthetic.table, delivered,
                                      reference_bus=1)
            if paper == rank:
                agree += 1
            elif paper and not rank:
                optimistic += 1
        return agree, optimistic, trials

    agree, optimistic, trials = benchmark.pedantic(compare, rounds=1,
                                                   iterations=1)
    _summary["counts"] = (agree, optimistic, trials)
    # Rank-observable must imply paper-observable (necessity).
    assert agree + optimistic == trials


def test_report_criterion(benchmark, report):
    def make():
        agree, optimistic, trials = _summary.get("counts", (0, 0, 0))
        lines = [
            f"random failure trials      : {trials}",
            f"criteria agree             : {agree}",
            f"paper-yes but rank-no      : {optimistic} "
            f"(the abstraction's optimism)",
            f"rank-yes but paper-no      : {trials - agree - optimistic} "
            f"(must be 0: necessity)",
        ]
        report("ablation_observability_criterion", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
