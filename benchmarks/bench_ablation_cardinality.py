"""Ablation — cardinality encoding choice (totalizer vs sequential).

Not a paper figure: DESIGN.md calls out the cardinality encoding as the
main degree of freedom our Z3 substitution introduces, so this bench
quantifies it.  Both encodings are bidirectional and truncated; the
totalizer builds a balanced merge tree (more clauses, shorter
propagation chains), the sequential counter a register chain (fewer
variables on small bounds, longer chains).
"""

import pytest

from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import case57
from repro.scada import GeneratorConfig, generate_scada

ENCODINGS = ["totalizer", "sequential"]
_stats = {}


def _analyzer(encoding):
    synthetic = generate_scada(
        case57(),
        GeneratorConfig(measurement_fraction=0.8, hierarchy_level=2,
                        dual_home_fraction=0.2, seed=0))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return ScadaAnalyzer(synthetic.network, problem,
                         card_encoding=encoding)


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_encoding_verify_time(benchmark, encoding):
    analyzer = _analyzer(encoding)
    spec = ResiliencySpec.observability(k=2)

    def run():
        return analyzer.verify(spec, minimize=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    _stats[encoding] = (result.num_vars, result.num_clauses,
                        result.status.value)


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_encodings_agree(benchmark, encoding):
    """Both encodings must produce identical verdicts."""
    analyzer = _analyzer(encoding)

    def verdicts():
        return tuple(
            analyzer.verify(ResiliencySpec.observability(k=k),
                            minimize=False).status
            for k in (0, 1, 2))

    outcome = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    _stats[f"verdicts-{encoding}"] = outcome


def test_report_ablation(benchmark, report):
    def make():
        lines = ["encoding   | vars | clauses | verdict(k=2)"]
        for encoding in ENCODINGS:
            if encoding not in _stats:
                analyzer = _analyzer(encoding)
                result = analyzer.verify(
                    ResiliencySpec.observability(k=2), minimize=False)
                _stats[encoding] = (result.num_vars, result.num_clauses,
                                    result.status.value)
            num_vars, clauses, verdict = _stats[encoding]
            lines.append(f"{encoding:10} | {num_vars:4d} | {clauses:7d} | "
                         f"{verdict}")
        a = _stats.get("verdicts-totalizer")
        b = _stats.get("verdicts-sequential")
        if a and b:
            assert a == b, (a, b)
            lines.append(f"verdict agreement across k=0..2: {a == b}")
        report("ablation_cardinality", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
