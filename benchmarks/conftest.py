"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4).  Besides pytest-benchmark timings, each
module writes the series the corresponding figure plots into
``benchmarks/results/<name>.txt`` so the shapes can be inspected and
compared with the paper (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write (and echo) a named result table."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"\n===== {name} =====\n{text}")

    return _write
