"""Structural screening ablation — 118-bus max resiliency + threat space.

Measures what the polynomial-time structural pass buys the solver-backed
analyses on the largest evaluation case:

* **max-resiliency axis**: the total-budget search for every property,
  screening on vs off — wall time, solver queries issued, and the
  returned bounds (which must be identical: screening is an
  optimization, never an answer change).
* **threat-space axis**: enumeration *candidate counts* (solver calls:
  one per vector found plus the final refutation) for budgets below the
  structurally certified minimal attack cardinality — screened runs
  prove emptiness with zero solver calls.

Run directly (``python benchmarks/bench_graphs_screening.py``) to write
``BENCH_graphs.json`` at the repo root; ``BENCH_SMOKE=1`` switches to
the 14-bus case for CI.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import time
from typing import Any, Dict

from repro.analysis import threat_space
from repro.core import ObservabilityProblem, Property, ResiliencySpec
from repro.engine import VerificationEngine
from repro.grid import case_by_buses
from repro.obs.tracer import Tracer, set_tracer
from repro.scada import GeneratorConfig, generate_scada

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
BUSES = 14 if SMOKE else 118
HIERARCHIES = (1,) if SMOKE else (1, 2)
SEED = 7
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_graphs.json"


def _build(hierarchy: int):
    synthetic = generate_scada(
        case_by_buses(BUSES, seed=SEED),
        GeneratorConfig(measurement_fraction=0.7, secure_fraction=1.0,
                        dual_home_fraction=0.3, hierarchy_level=hierarchy,
                        seed=SEED))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def _traced(fn):
    """Run *fn* under a fresh tracer; return (result, wall_s, counters)."""
    sink = io.StringIO()
    tracer = Tracer(sink)
    previous = set_tracer(tracer)
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        wall = time.perf_counter() - start
        tracer.close()
        set_tracer(previous)
    counters: Dict[str, int] = {"query": 0}
    for line in sink.getvalue().splitlines():
        record = json.loads(line)
        if record.get("type") == "span" and record.get("name") == "query":
            counters["query"] += 1
        if record.get("type") == "metrics":
            for key, value in record.get("counters", {}).items():
                if key.startswith("graphs."):
                    counters[key] = counters.get(key, 0) + value
    return result, wall, counters


def _bench_max_resiliency(network, problem) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for prop in Property:
        entry: Dict[str, Any] = {}
        for screen in (True, False):
            engine = VerificationEngine(network, problem,
                                        backend="assumption", lint=False)
            bounds, wall, counters = _traced(
                lambda e=engine, s=screen: e.max_total_resiliency_bounds(
                    prop=prop, screen=s))
            entry["screened" if screen else "unscreened"] = {
                "wall_s": round(wall, 3),
                "solver_queries": counters["query"],
                "bounds": [bounds.lower, bounds.upper],
            }
        entry["agree"] = (entry["screened"]["bounds"]
                          == entry["unscreened"]["bounds"])
        out[prop.value] = entry
    return out


def _bench_threat_space(network, problem) -> Dict[str, Any]:
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    lower = {prop: engine.structural().attack_bounds(prop).lower
             for prop in Property}
    specs = []
    for prop in (Property.OBSERVABILITY, Property.SECURED_OBSERVABILITY):
        for budget in range(0, max(1, lower[prop])):
            specs.append(ResiliencySpec.for_property(prop, k=budget))
    rows = []
    totals = {"screened": 0, "unscreened": 0}
    for spec in specs:
        row: Dict[str, Any] = {"spec": spec.describe()}
        for screen in (True, False):
            space, wall, _ = _traced(
                lambda s=screen: threat_space(engine, spec, screen=s))
            # Solver calls issued: one per vector plus the closing
            # refutation; a screened run never reaches the solver.
            candidates = 0 if space.screened else space.size + 1
            key = "screened" if screen else "unscreened"
            row[key] = {"candidates": candidates, "vectors": space.size,
                        "wall_s": round(wall, 3)}
            row.setdefault("sizes", []).append(space.size)
            totals[key] += candidates
        row["sizes_agree"] = row["sizes"][0] == row["sizes"][1]
        del row["sizes"]
        rows.append(row)
    return {"specs": rows, "total_candidates": totals}


def _bench_hierarchy(hierarchy: int) -> Dict[str, Any]:
    network, problem = _build(hierarchy)
    engine = VerificationEngine(network, problem, backend="assumption",
                                lint=False)
    start = time.perf_counter()
    structural = engine.structural()
    brackets = {prop.value: structural.attack_bounds(prop).describe()
                for prop in Property}
    structural_wall = time.perf_counter() - start
    return {
        "case": {
            "buses": BUSES,
            "hierarchy": hierarchy,
            "seed": SEED,
            "devices": len(network.devices),
            "measurements": problem.num_measurements,
            "states": problem.num_states,
        },
        "structural_pass": {
            "wall_s": round(structural_wall, 3),
            "certified": {
                "assured": structural.certified(False),
                "secured": structural.certified(True),
            },
            "brackets": brackets,
        },
        "max_resiliency": _bench_max_resiliency(network, problem),
        "threat_space": _bench_threat_space(network, problem),
    }


def main() -> None:
    payload = {f"hierarchy_{h}": _bench_hierarchy(h) for h in HIERARCHIES}
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")
    for key, entry in payload.items():
        totals = entry["threat_space"]["total_candidates"]
        print(f"{key}: devices={entry['case']['devices']} "
              f"candidates {totals['unscreened']} -> "
              f"{totals['screened']}")


if __name__ == "__main__":
    main()
