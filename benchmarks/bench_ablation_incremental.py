"""Ablation — verification backends × sweep parallelism.

Two workloads exercise the engine's ablation axes:

* **backend axis** (Fig. 7(a)-style): maximal-resiliency search issues a
  sequence of budget-only-different queries.  The ``incremental``
  backend encodes the delivery layer once, scopes budgets with
  activation literals, and reuses learned clauses; ``fresh`` re-encodes
  per query; ``preprocessed`` additionally simplifies each CNF.
* **jobs axis** (Fig. 5(a)-style): a bus-size sweep fanned over a
  process pool must keep per-point outputs identical while reducing
  wall-clock on multicore hosts.

Besides pytest-benchmark timings, the final test writes the full
ablation matrix to ``benchmarks/results/ablation_backend_jobs.json``.
"""

import json
import time

import pytest

from repro.analysis import sweep_bus_sizes
from repro.core import ObservabilityProblem
from repro.engine import BACKEND_NAMES, VerificationEngine
from repro.grid import case57
from repro.scada import GeneratorConfig, generate_scada

_results = {"backends": {}, "sweep_jobs": {}}

SWEEP_JOBS = (1, 2)


@pytest.fixture(scope="module")
def system():
    synthetic = generate_scada(
        case57(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=1))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_backend_max_resiliency(benchmark, system, backend):
    network, problem = system

    def run():
        engine = VerificationEngine(network, problem, backend=backend,
                                    lint=False)
        return engine.max_total_resiliency()

    started = time.perf_counter()
    k_star = benchmark.pedantic(run, rounds=3, iterations=1)
    _results["backends"][backend] = {
        "k_star": k_star,
        "mean_time": (time.perf_counter() - started) / 3,
    }


@pytest.mark.parametrize("jobs", SWEEP_JOBS)
def test_sweep_jobs(benchmark, jobs):
    def run():
        return sweep_bus_sizes([14, 30], seeds=(0, 1), runs=1, jobs=jobs)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["sweep_jobs"][jobs] = {
        "points": [
            {
                "bus_size": p.bus_size,
                "seed": p.seed,
                "max_k": p.max_k,
                "sat_vars": p.sat_num_vars,
                "unsat_vars": p.unsat_num_vars,
            }
            for p in sweep.points
        ],
    }


def test_report_ablation(benchmark, results_dir, report):
    def make():
        backends = _results["backends"]
        lines = []
        for name, row in backends.items():
            lines.append(f"max-resiliency [{name:>12}]: "
                         f"k* = {row['k_star']}, "
                         f"mean {row['mean_time']:.3f}s")
        k_values = {row["k_star"] for row in backends.values()}
        if len(backends) == len(BACKEND_NAMES):
            assert len(k_values) == 1, "backends disagree on k*"
            lines.append("verdict parity across backends: True")
            fresh = backends["fresh"]["mean_time"]
            incremental = backends["incremental"]["mean_time"]
            lines.append(f"incremental speedup over fresh: "
                         f"{fresh / max(incremental, 1e-9):.2f}x")
        sweeps = _results["sweep_jobs"]
        if len(sweeps) == len(SWEEP_JOBS):
            parity = all(sweeps[j]["points"] == sweeps[1]["points"]
                         for j in SWEEP_JOBS)
            assert parity, "parallel sweep diverged from serial"
            lines.append("sweep determinism across jobs: True")
        report("ablation_incremental", "\n".join(lines))
        payload = json.dumps(_results, indent=2, sort_keys=True,
                             default=str)
        (results_dir / "ablation_backend_jobs.json").write_text(
            payload + "\n")

    benchmark.pedantic(make, rounds=1, iterations=1)
