"""Ablation — fresh re-encoding vs incremental (push/pop) verification.

Maximal-resiliency search issues a sequence of budget-only-different
queries; the incremental analyzer encodes the delivery layer once and
scopes budgets with activation literals, reusing learned clauses.
"""

import pytest

from repro.analysis import max_total_resiliency
from repro.core import ObservabilityProblem, ScadaAnalyzer
from repro.core.incremental import IncrementalAnalyzer
from repro.grid import case57
from repro.scada import GeneratorConfig, generate_scada

_results = {}


@pytest.fixture(scope="module")
def system():
    synthetic = generate_scada(
        case57(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=1))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def test_fresh_max_resiliency(benchmark, system):
    network, problem = system

    def run():
        return max_total_resiliency(ScadaAnalyzer(network, problem))

    _results["fresh"] = benchmark.pedantic(run, rounds=3, iterations=1)


def test_incremental_max_resiliency(benchmark, system):
    network, problem = system

    def run():
        return IncrementalAnalyzer(network,
                                   problem).max_total_resiliency()

    _results["incremental"] = benchmark.pedantic(run, rounds=3,
                                                 iterations=1)


def test_report_incremental(benchmark, report):
    def make():
        fresh = _results.get("fresh")
        incremental = _results.get("incremental")
        lines = [
            f"max-resiliency (fresh encoding)      : k* = {fresh}",
            f"max-resiliency (incremental push/pop): k* = {incremental}",
        ]
        if fresh is not None and incremental is not None:
            assert fresh == incremental
            lines.append("verdict parity: True")
        report("ablation_incremental", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
