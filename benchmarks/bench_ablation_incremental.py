"""Ablation — verification backends × sweep parallelism.

Three workloads exercise the engine's ablation axes:

* **backend axis** (Fig. 7(a)-style): maximal-resiliency search issues a
  sequence of budget-only-different queries.  ``fresh`` re-encodes per
  query; ``incremental`` encodes the delivery layer once and scopes
  budgets with push/pop activation literals; ``assumption`` selects
  budgets with assumption literals over persistent extendable counters;
  ``preprocessed`` additionally simplifies each CNF.
* **budget-sweep axis** (the three-way ablation): a >= 20-query sweep
  over failure budgets run on ``fresh`` vs ``incremental`` vs
  ``assumption``, recording per-budget search effort and learned-clause
  retention — push/pop loses every learned clause touching a scope's
  activation literal when the scope pops, while assumption selection
  keeps all of them.
* **jobs axis** (Fig. 5(a)-style): a bus-size sweep fanned over a
  process pool must keep per-point outputs identical while reducing
  wall-clock on multicore hosts.

Besides pytest-benchmark timings, the final test writes the full
ablation matrix to ``benchmarks/results/ablation_backend_jobs.json``
and the per-budget retention series to
``benchmarks/results/ablation_budget_sweep.json``.

Setting ``BENCH_SMOKE=1`` switches to the paper's 5-bus case with a
tiny budget range — the CI smoke configuration, small enough to finish
in seconds while still crossing every backend.
"""

import json
import os
import time

import pytest

from repro.analysis import sweep_bus_sizes
from repro.core import ObservabilityProblem, ResiliencySpec
from repro.engine import BACKEND_NAMES, VerificationEngine
from repro.grid import case57
from repro.scada import GeneratorConfig, generate_scada

_results = {"backends": {}, "budget_sweep": {}, "sweep_jobs": {}}

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
SWEEP_JOBS = (1,) if SMOKE else (1, 2)
#: The three-way ablation: one budget sweep per clause-reuse strategy.
SWEEP_BACKENDS = ("fresh", "incremental", "assumption")
#: Budgets visited per pass and number of passes; the non-smoke
#: configuration issues 2 x 10 = 20 queries per backend.
SWEEP_KS = tuple(range(4)) if SMOKE else tuple(range(10))
SWEEP_PASSES = 2


@pytest.fixture(scope="module")
def system():
    if SMOKE:
        from repro.cases import case_problem, fig3_network

        return fig3_network(), case_problem()
    synthetic = generate_scada(
        case57(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=1))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_backend_max_resiliency(benchmark, system, backend):
    network, problem = system

    def run():
        engine = VerificationEngine(network, problem, backend=backend,
                                    lint=False)
        return engine.max_total_resiliency()

    rounds = 1 if SMOKE else 3
    started = time.perf_counter()
    k_star = benchmark.pedantic(run, rounds=rounds, iterations=1)
    _results["backends"][backend] = {
        "k_star": k_star,
        "mean_time": (time.perf_counter() - started) / rounds,
    }


def _run_budget_sweep(network, problem, backend):
    """One >= 20-query budget sweep; per-query effort + retention."""
    engine = VerificationEngine(network, problem, backend=backend,
                                lint=False)
    shared_solver = backend in ("incremental", "assumption")
    queries = []
    retained = 0
    for sweep_pass in range(SWEEP_PASSES):
        for k in SWEEP_KS:
            result = engine.verify(ResiliencySpec.observability(k=k),
                                   minimize=False)
            stats = result.stats
            learned = int(stats.get("learned_clauses", 0))
            deleted = int(stats.get("deleted_clauses", 0))
            if shared_solver:
                retained += learned - deleted
            else:
                retained = learned - deleted
            queries.append({
                "pass": sweep_pass,
                "k": k,
                "status": result.status.value,
                "conflicts": int(stats.get("conflicts", 0)),
                "decisions": int(stats.get("decisions", 0)),
                "propagations": int(stats.get("propagations", 0)),
                "learned_clauses": learned,
                "deleted_clauses": deleted,
                "retained_clauses": retained,
                "encode_vars": result.num_vars,
                "encode_clauses": result.num_clauses,
                "check_time": stats.get("check_time", 0.0),
            })
    return {
        "queries": queries,
        "totals": {
            "num_queries": len(queries),
            "conflicts": sum(q["conflicts"] for q in queries),
            "decisions": sum(q["decisions"] for q in queries),
            "learned_clauses": sum(q["learned_clauses"] for q in queries),
            "final_retained_clauses": retained,
        },
    }


@pytest.mark.parametrize("backend", SWEEP_BACKENDS)
def test_budget_sweep_three_way(benchmark, system, backend):
    network, problem = system
    row = benchmark.pedantic(
        lambda: _run_budget_sweep(network, problem, backend),
        rounds=1, iterations=1)
    _results["budget_sweep"][backend] = row


@pytest.mark.parametrize("jobs", SWEEP_JOBS)
def test_sweep_jobs(benchmark, jobs):
    def run():
        return sweep_bus_sizes([14, 30], seeds=(0, 1), runs=1, jobs=jobs)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["sweep_jobs"][jobs] = {
        "points": [
            {
                "bus_size": p.bus_size,
                "seed": p.seed,
                "max_k": p.max_k,
                "sat_vars": p.sat_num_vars,
                "unsat_vars": p.unsat_num_vars,
            }
            for p in sweep.points
        ],
    }


def test_report_ablation(benchmark, results_dir, report):
    def make():
        backends = _results["backends"]
        lines = []
        for name, row in backends.items():
            lines.append(f"max-resiliency [{name:>12}]: "
                         f"k* = {row['k_star']}, "
                         f"mean {row['mean_time']:.3f}s")
        k_values = {row["k_star"] for row in backends.values()}
        if len(backends) == len(BACKEND_NAMES):
            assert len(k_values) == 1, "backends disagree on k*"
            lines.append("verdict parity across backends: True")
            fresh = backends["fresh"]["mean_time"]
            incremental = backends["incremental"]["mean_time"]
            lines.append(f"incremental speedup over fresh: "
                         f"{fresh / max(incremental, 1e-9):.2f}x")

        sweeps = _results["budget_sweep"]
        if len(sweeps) == len(SWEEP_BACKENDS):
            # Verdict parity query by query across the three-way sweep.
            verdicts = {
                name: [q["status"] for q in row["queries"]]
                for name, row in sweeps.items()
            }
            assert (verdicts["fresh"] == verdicts["incremental"]
                    == verdicts["assumption"]), \
                "budget-sweep verdicts diverged"
            lines.append(f"budget sweep: "
                         f"{sweeps['fresh']['totals']['num_queries']} "
                         f"queries per backend, verdict parity: True")
            for name in SWEEP_BACKENDS:
                totals = sweeps[name]["totals"]
                lines.append(
                    f"budget sweep [{name:>12}]: "
                    f"conflicts {totals['conflicts']}, "
                    f"learned {totals['learned_clauses']}, "
                    f"retained {totals['final_retained_clauses']}")
            # The tentpole claim: with every learned clause usable
            # across budgets (push/pop permanently disables clauses
            # that mention a popped scope's activation literal, even
            # though they stay in the database and count as retained),
            # the assumption backend re-derives less and conflicts
            # less over the sweep.  Skipped in smoke mode: the 5-bus
            # sweep is too small for stable search-effort comparisons.
            if not SMOKE:
                assert (sweeps["assumption"]["totals"]["conflicts"] <=
                        sweeps["incremental"]["totals"]["conflicts"]), \
                    "assumption backend needed more conflicts than push/pop"
            payload = json.dumps(sweeps, indent=2, sort_keys=True,
                                 default=str)
            (results_dir / "ablation_budget_sweep.json").write_text(
                payload + "\n")

        jobs_rows = _results["sweep_jobs"]
        if len(jobs_rows) == len(SWEEP_JOBS):
            parity = all(jobs_rows[j]["points"] == jobs_rows[1]["points"]
                         for j in SWEEP_JOBS)
            assert parity, "parallel sweep diverged from serial"
            lines.append("sweep determinism across jobs: True")
        report("ablation_incremental", "\n".join(lines))
        payload = json.dumps(_results, indent=2, sort_keys=True,
                             default=str)
        (results_dir / "ablation_backend_jobs.json").write_text(
            payload + "\n")

    benchmark.pedantic(make, rounds=1, iterations=1)
