"""Fig. 7(a) — maximal resiliency vs number of measurements (14-bus).

Paper shape: more measurements ⇒ higher maximal resiliency, and the
system tolerates more IED failures than RTU failures (an RTU failure
takes all of its IEDs down with it).
"""

import pytest

from repro.analysis import max_ied_resiliency, max_rtu_resiliency
from repro.core import ObservabilityProblem, ScadaAnalyzer
from repro.grid import ieee14, sampled_measurement_plan
from repro.scada import GeneratorConfig, generate_scada

FRACTIONS = [0.4, 0.6, 0.8, 1.0]
_series = {}


def _analyzer(fraction, seed=0):
    plan = sampled_measurement_plan(ieee14(), fraction, seed=seed)
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(seed=seed, dual_home_fraction=0.3),
        plan=plan)
    problem = ObservabilityProblem.from_table(synthetic.table)
    return ScadaAnalyzer(synthetic.network, problem)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_max_resiliency_search(benchmark, fraction):
    analyzer = _analyzer(fraction)

    def search():
        ied = max_ied_resiliency(analyzer)
        rtu = max_rtu_resiliency(analyzer)
        _series[fraction] = (ied, rtu)
        return ied, rtu

    ied, rtu = benchmark.pedantic(search, rounds=1, iterations=1)
    assert ied >= -1 and rtu >= -1


def test_report_fig7a(benchmark, report):
    def make():
        lines = ["measurements (% of max) | max IED failures | "
                 "max RTU failures"]
        for fraction in FRACTIONS:
            if fraction not in _series:
                analyzer = _analyzer(fraction)
                _series[fraction] = (max_ied_resiliency(analyzer),
                                     max_rtu_resiliency(analyzer))
            ied, rtu = _series[fraction]
            lines.append(f"{int(fraction * 100):23d} | {ied:16d} | "
                         f"{rtu:16d}")
        ieds = [v[0] for v in _series.values()]
        lines.append("")
        lines.append(f"IED series nondecreasing: "
                     f"{all(b >= a for a, b in zip(ieds, ieds[1:]))}")
        lines.append(f"IED tolerance >= RTU tolerance at every point: "
                     f"{all(i >= r for i, r in _series.values())}")
        report("fig7a_max_resiliency", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
