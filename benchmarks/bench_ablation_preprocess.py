"""Ablation — CNF preprocessing (SatELite-style simplification).

Not a paper figure: quantifies the ``preprocess=True`` solver mode
added with the lint subsystem.  Before each check the buffered Tseitin
encoding is simplified (unit propagation, pure literals, subsumption,
self-subsuming resolution, bounded variable elimination with the named
model variables frozen) and the reduced formula is solved fresh.

Workloads are the Fig. 5(a) observability-scaling instances (14/30-bus
synthetic SCADA systems) and a Fig. 7(a)-style measurement-sampled
14-bus instance.  Verdicts with and without preprocessing must agree.
"""

import pytest

from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import ieee14, sampled_measurement_plan
from repro.grid.ieee_cases import case_by_buses
from repro.lint import preprocess_cnf
from repro.scada import GeneratorConfig, generate_scada

MODES = ["baseline", "preprocess"]
_stats = {}


def _fig5a_instance(bus_size):
    synthetic = generate_scada(
        case_by_buses(bus_size, seed=0),
        GeneratorConfig(measurement_fraction=0.7, hierarchy_level=1, seed=0))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def _fig7a_instance(fraction=0.6, seed=0):
    plan = sampled_measurement_plan(ieee14(), fraction, seed=seed)
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(seed=seed, dual_home_fraction=0.3),
        plan=plan)
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


WORKLOADS = {
    "fig5a-14bus": (_fig5a_instance, (14,), ResiliencySpec.observability(k=1)),
    "fig5a-30bus": (_fig5a_instance, (30,), ResiliencySpec.observability(k=1)),
    "fig7a-14bus": (_fig7a_instance, (), ResiliencySpec.observability(k=2)),
}


def _analyzer(workload, preprocess):
    build, build_args, _ = WORKLOADS[workload]
    network, problem = build(*build_args)
    return ScadaAnalyzer(network, problem, lint=False,
                         preprocess=preprocess)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", MODES)
def test_preprocess_verify_time(benchmark, workload, mode):
    analyzer = _analyzer(workload, preprocess=(mode == "preprocess"))
    spec = WORKLOADS[workload][2]

    def run():
        return analyzer.verify(spec, minimize=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    _stats[(workload, mode)] = result.status.value


def test_report_ablation_preprocess(benchmark, report):
    def make():
        lines = ["workload    | clauses | simplified | vars | simp vars | "
                 "verdict agreement"]
        for workload in sorted(WORKLOADS):
            spec = WORKLOADS[workload][2]
            analyzer = _analyzer(workload, preprocess=True)
            cnf, frozen = analyzer.export_cnf(spec)
            simplified = preprocess_cnf(cnf.copy(), frozen=frozen)
            n_orig = len(cnf.clauses)
            n_simp = len(simplified.cnf.clauses)
            v_orig = cnf.num_vars
            v_simp = v_orig - simplified.stats["eliminated_vars"]
            base = _stats.get((workload, "baseline"))
            prep = _stats.get((workload, "preprocess"))
            if base is None:
                base = _analyzer(workload, False).verify(
                    spec, minimize=False).status.value
            if prep is None:
                prep = analyzer.verify(spec, minimize=False).status.value
            assert base == prep, (workload, base, prep)
            # The simplifier must actually shrink the Fig. 5(a) encodings.
            if workload.startswith("fig5a"):
                assert n_simp < n_orig, (workload, n_orig, n_simp)
            lines.append(f"{workload:11} | {n_orig:7d} | {n_simp:10d} | "
                         f"{v_orig:4d} | {v_simp:9d} | "
                         f"{base} == {prep}")
        report("ablation_preprocess", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
