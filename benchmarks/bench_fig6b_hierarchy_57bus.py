"""Fig. 6(b) — execution time vs hierarchy level, 57-bus system."""

import pytest

from repro.analysis import sweep_hierarchy

LEVELS = [1, 2, 3]
_sweep = {}


@pytest.mark.parametrize("level", LEVELS)
def test_hierarchy_57bus(benchmark, level):
    def run():
        sweep = sweep_hierarchy(57, [level], seeds=(0,), runs=1)
        _sweep[level] = sweep
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sweep.points


def test_report_fig6b(benchmark, report):
    def make():
        lines = ["hierarchy | devices | sat time (s) | unsat time (s)"]
        for level in LEVELS:
            sweep = _sweep.get(level)
            if sweep is None:
                sweep = sweep_hierarchy(57, [level], seeds=(0,), runs=1)
            stats = sweep.aggregate("hierarchy")[level]
            lines.append(f"{level:9d} | {stats['devices']:7.0f} | "
                         f"{stats['sat_time']:12.3f} | "
                         f"{stats['unsat_time']:14.3f}")
        report("fig6b_hierarchy_57bus", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
