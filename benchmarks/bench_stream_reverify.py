"""Streaming re-verification — warm watcher vs cold full recompute.

The watcher's claim is that absorbing a live event is much cheaper
than re-running the batch pipeline from scratch.  Three mechanisms
carry it, and this bench isolates each:

* **engine LRU revisits** — a recovery that returns the network to a
  recently-seen shape lands on that shape's warm assumption-backend
  engine: no re-encode, just incremental solves (``warm_hit_event``);
* **affected-property pruning** — a crypto downgrade cannot change
  plain observability, so that floor cell is skipped outright;
* **shared contexts** — within one shape, every floor cell rides the
  same warm engine instead of a fresh solver per property.

Two seeded feeds run over the same floors.  The *mixed* feed is the
emulator's default scenario blend (outages dominate — most events
make a brand-new shape, the worst case for warmth).  The *security*
feed is crypto downgrades and IED compromises only — the paper's
attack scenarios, which revisit shapes often and prune hard.  For
every event both lanes run: the watcher (``warm``) and a from-scratch
engine over the fully materialized config verifying the entire floor
(``cold``), and the two verdict streams are asserted identical, so
every speedup is for the same answers.

Run directly (``python benchmarks/bench_stream_reverify.py``) to write
``BENCH_stream.json`` at the repo root; ``BENCH_SMOKE=1`` switches to
the 14-bus case with fewer events for CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core import ObservabilityProblem, ResiliencySpec
from repro.engine.engine import VerificationEngine
from repro.grid import case_by_buses
from repro.obs import Tracer, activate
from repro.scada import GeneratorConfig, generate_scada
from repro.scada.config_io import CaseConfig
from repro.stream import DeltaCompiler, ScenarioEmulator, Watcher

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
BUSES = 14 if SMOKE else 118
SEED = 7
EVENTS = 8 if SMOKE else 20
#: Live feeds hover around a steady disturbance level — recoveries
#: return the system to recently-seen shapes, which is exactly what
#: the watcher's fingerprint-keyed engine LRU exploits.
RECOVERY_BIAS = 0.6
ENGINE_CACHE = 8
OUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_stream.json"


def _config() -> CaseConfig:
    synthetic = generate_scada(
        case_by_buses(BUSES, seed=SEED),
        GeneratorConfig(measurement_fraction=0.7, secure_fraction=1.0,
                        dual_home_fraction=0.3, hierarchy_level=2,
                        seed=SEED))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return CaseConfig(network=synthetic.network, problem=problem,
                      spec=None)


def _floors() -> List[ResiliencySpec]:
    return [
        ResiliencySpec.observability(k=1),
        ResiliencySpec.secured_observability(k=1),
        ResiliencySpec.bad_data_detectability(r=1, k=1),
    ]


def _percentiles(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"n": 0}
    ordered = sorted(samples)
    return {
        "n": len(ordered),
        "p50_ms": round(statistics.median(ordered) * 1000, 2),
        "p95_ms": round(
            ordered[min(len(ordered) - 1,
                        int(0.95 * len(ordered)))] * 1000, 2),
        "min_ms": round(ordered[0] * 1000, 2),
        "max_ms": round(ordered[-1] * 1000, 2),
        "total_s": round(sum(ordered), 3),
    }


def _run_feed(config: CaseConfig, floors: List[ResiliencySpec],
              scenarios: Optional[Sequence[str]]) -> Dict[str, Any]:
    events = ScenarioEmulator(
        config.network, seed=SEED, scenarios=scenarios,
        recovery_bias=RECOVERY_BIAS).events(EVENTS)
    tracer = Tracer(meta={"bench": "stream_reverify", "buses": BUSES})
    with activate(tracer):
        attach_start = time.perf_counter()
        watcher = Watcher(config, floors, engine_cache=ENGINE_CACHE)
        attach_s = time.perf_counter() - attach_start

        compiler = DeltaCompiler(config)
        warm_all: List[float] = []
        warm_hit: List[float] = []
        warm_miss: List[float] = []
        cold: List[float] = []
        reverified = 0
        skipped = 0
        mismatches: List[str] = []
        for event in events:
            misses_before = tracer.registry.counters.get(
                "stream.engine.misses", 0)
            update = watcher.apply(event)
            misses_after = tracer.registry.counters.get(
                "stream.engine.misses", 0)
            warm_all.append(update.latency_s)
            if misses_after == misses_before:
                warm_hit.append(update.latency_s)
            else:
                warm_miss.append(update.latency_s)
            reverified += len(update.reverified)
            skipped += len(update.skipped)
            # Cold lane: full floor, fresh engine, same mutated state.
            cold_start = time.perf_counter()
            mutated = compiler.materialize(watcher.state)
            engine = VerificationEngine(mutated.network,
                                        mutated.problem,
                                        backend="fresh", lint=False)
            statuses = {spec: engine.verify(spec).status
                        for spec in floors}
            cold.append(time.perf_counter() - cold_start)
            for spec in floors:
                if watcher.verdicts[spec].status is not statuses[spec]:
                    mismatches.append(
                        f"event {event.seq} {spec.describe()}: "
                        f"warm={watcher.verdicts[spec].status.value} "
                        f"cold={statuses[spec].value}")
    counters = tracer.registry.counters
    cells = reverified + skipped
    return {
        "scenarios": list(scenarios) if scenarios else "all",
        "events": EVENTS,
        "event_mix": {
            kind: sum(1 for e in events if e.kind.value == kind)
            for kind in sorted({e.kind.value for e in events})
        },
        "attach_ms": round(attach_s * 1000, 2),
        "warm_event": _percentiles(warm_all),
        "warm_hit_event": _percentiles(warm_hit),
        "warm_miss_event": _percentiles(warm_miss),
        "cold_full_solve": _percentiles(cold),
        "speedup_p50": round(statistics.median(cold)
                             / statistics.median(warm_all), 2),
        "speedup_total": round(sum(cold) / sum(warm_all), 2),
        "events_per_sec_sustained": round(EVENTS / sum(warm_all), 2),
        "cells_reverified": reverified,
        "cells_skipped": skipped,
        "pruned_fraction": round(skipped / cells, 4) if cells else 0.0,
        "engine_cache": {
            "hits": counters.get("stream.engine.hits", 0),
            "misses": counters.get("stream.engine.misses", 0),
            "evictions": counters.get("stream.engine.evictions", 0),
        },
        "alarms": {
            kind: counters.get(f"stream.alarms.{kind}", 0)
            for kind in ("raised", "cleared", "unknown")
        },
        "verdicts_match": not mismatches,
        "mismatches": mismatches,
    }


def main() -> Dict[str, Any]:
    config = _config()
    floors = _floors()
    mixed = _run_feed(config, floors, scenarios=None)
    security = _run_feed(config, floors,
                         scenarios=("crypto-downgrade",
                                    "ied-compromise"))
    return {
        "bench": "stream_reverify",
        "smoke": SMOKE,
        "case": {"buses": BUSES, "seed": SEED,
                 "devices": len(config.network.devices)},
        "floors": [spec.describe() for spec in floors],
        "mixed_feed": mixed,
        "security_feed": security,
        "verdicts_match": (mixed["verdicts_match"]
                           and security["verdicts_match"]),
    }


if __name__ == "__main__":
    payload = main()
    OUT.write_text(json.dumps(payload, indent=2) + "\n",
                   encoding="utf-8")
    print(json.dumps(payload, indent=2))
    if not payload["verdicts_match"]:
        raise SystemExit("warm/cold verdict mismatch")
