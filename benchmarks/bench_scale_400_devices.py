"""§VII scale claim — "the execution time lies within 30 seconds for a
SCADA system with 400 physical devices (IEDs and RTUs)".

A full-measurement 118-bus synthetic SCADA reaches that device count;
the resiliency check must complete well inside the paper's envelope.
"""

import pytest

from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import case118
from repro.scada import GeneratorConfig, generate_scada


@pytest.fixture(scope="module")
def big_system():
    # The full 118-bus measurement set yields 304 IEDs under the
    # one-IED-per-two-flows policy; a deep (hierarchy 3) RTU tier of
    # roughly one RTU per three IEDs brings the field-device count to
    # the paper's reported ~400.
    synthetic = generate_scada(
        case118(),
        GeneratorConfig(measurement_fraction=1.0, hierarchy_level=3,
                        rtus_per_bus=0.85, seed=0))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic, ScadaAnalyzer(synthetic.network, problem)


def test_device_count_reaches_400(benchmark, big_system):
    synthetic, analyzer = big_system

    def count():
        return synthetic.num_devices

    devices = benchmark.pedantic(count, rounds=1, iterations=1)
    assert devices >= 400


def test_400_device_verification_under_30s(benchmark, big_system):
    synthetic, analyzer = big_system
    spec = ResiliencySpec.observability(k=2)
    result = benchmark.pedantic(
        lambda: analyzer.verify(spec, minimize=False),
        rounds=1, iterations=1)
    assert result.total_time < 30.0, result.total_time


def test_400_device_secured_verification(benchmark, big_system):
    synthetic, analyzer = big_system
    spec = ResiliencySpec.secured_observability(k=2)
    result = benchmark.pedantic(
        lambda: analyzer.verify(spec, minimize=False),
        rounds=1, iterations=1)
    assert result.total_time < 30.0, result.total_time
