"""Fig. 7(b) — threat-space size vs hierarchy level (14-bus).

Paper shape: deeper hierarchies create more RTU interdependence, so the
number of threat vectors grows with the hierarchy level, and grows
further when the resiliency specification widens.
"""

import pytest

from repro.analysis import threat_space
from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
from repro.grid import ieee14
from repro.scada import GeneratorConfig, generate_scada

LEVELS = [1, 2, 3]
SPECS = [("(1,1)", dict(k1=1, k2=1)),
         ("(2,1)", dict(k1=2, k2=1)),
         ("(2,2)", dict(k1=2, k2=2))]
_sizes = {}


def _analyzer(level, seed=0):
    synthetic = generate_scada(
        ieee14(),
        GeneratorConfig(measurement_fraction=0.7, hierarchy_level=level,
                        dual_home_fraction=0.2, seed=seed))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return ScadaAnalyzer(synthetic.network, problem)


@pytest.mark.parametrize("level", LEVELS)
def test_threat_space_enumeration(benchmark, level):
    analyzer = _analyzer(level)

    def enumerate_all():
        for label, budget in SPECS:
            spec = ResiliencySpec.observability(**budget)
            space = threat_space(analyzer, spec, limit=500)
            _sizes[level, label] = space.size
        return _sizes

    benchmark.pedantic(enumerate_all, rounds=1, iterations=1)
    assert all((level, label) in _sizes for label, _ in SPECS)


def test_report_fig7b(benchmark, report):
    def make():
        header = "hierarchy | " + " | ".join(
            f"{label:>6}" for label, _ in SPECS)
        lines = [header]
        for level in LEVELS:
            row = [f"{level:9d}"]
            for label, budget in SPECS:
                size = _sizes.get((level, label))
                if size is None:
                    spec = ResiliencySpec.observability(**budget)
                    size = threat_space(_analyzer(level), spec,
                                        limit=500).size
                    _sizes[level, label] = size
                row.append(f"{size:6d}")
            lines.append(" | ".join(row))
        # Wider specs must never shrink the threat space.
        for level in LEVELS:
            sizes = [_sizes[level, label] for label, _ in SPECS]
            assert sizes == sorted(sizes), (level, sizes)
        report("fig7b_threat_space", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
