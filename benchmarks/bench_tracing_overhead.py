"""Tracing-disabled overhead bound for the telemetry layer.

The contract of ``repro.obs`` is that instrumentation is near-free
when no tracer is installed: the solver hot loop pays one
``hooks is not None`` attribute check per conflict, and every span
helper short-circuits to a shared no-op.  This script measures the
paper's 5-bus case-study verification with tracing *off* and with
tracing *on* (an in-memory tracer, the more expensive path) and fails
if the disabled path is more than 5% slower than the enabled one —
i.e. if disabled-path work ever sneaks into the instrumentation.

Run directly (CI bench-smoke does)::

    python benchmarks/bench_tracing_overhead.py

Exit code 0 when the bound holds, 1 when it is violated.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.cases import case_analyzer
from repro.core import ResiliencySpec
from repro.obs.tracer import Tracer, activate

#: Disabled-path wall time may exceed the enabled-path median by at
#: most this factor (plus a small absolute epsilon for timer noise).
MARGIN = 1.05
EPSILON = 1e-3
REPEATS = 21


def _one_verify(traced: bool) -> float:
    # A fresh analyzer per run so encoding is part of the measured
    # work, exactly as a CLI `verify` pays it.
    analyzer = case_analyzer("fig3")
    spec = ResiliencySpec.observability(k1=1, k2=1)
    started = time.perf_counter()
    if traced:
        with activate(Tracer()):
            analyzer.verify(spec)
    else:
        analyzer.verify(spec)
    return time.perf_counter() - started


def main() -> int:
    # Warm both paths (imports, allocator, branch caches) ...
    _one_verify(False)
    _one_verify(True)
    # ... then interleave the measured runs so clock drift and CPU
    # frequency changes hit both series equally.
    off_times = []
    on_times = []
    for _ in range(REPEATS):
        off_times.append(_one_verify(False))
        on_times.append(_one_verify(True))
    off = statistics.median(off_times)
    on = statistics.median(on_times)
    ratio = off / on if on > 0 else float("inf")
    print(f"tracing off: {off * 1e3:.3f} ms median over {REPEATS} runs")
    print(f"tracing on : {on * 1e3:.3f} ms median over {REPEATS} runs")
    print(f"off/on ratio: {ratio:.3f} (bound {MARGIN:.2f})")
    if off > on * MARGIN + EPSILON:
        print("FAIL: the tracing-disabled path is more than "
              f"{(MARGIN - 1) * 100:.0f}% slower than the traced path; "
              "disabled-path instrumentation overhead has regressed",
              file=sys.stderr)
        return 1
    print("OK: disabled-path overhead within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
