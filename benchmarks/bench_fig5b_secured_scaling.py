"""Fig. 5(b) — k-resilient *secured* observability time vs bus size.

Paper shape: same growth as Fig. 5(a) with slightly higher times — the
secured model carries the extra secured-delivery constraints, so the
encoded model is larger.
"""

import pytest

from repro.analysis import measure_instance
from repro.core import Property

BUS_SIZES = [14, 30, 57, 118]
_points = {}


@pytest.mark.parametrize("bus_size", BUS_SIZES)
def test_secured_scaling(benchmark, bus_size):
    point = measure_instance(bus_size, hierarchy=1, seed=0,
                             prop=Property.SECURED_OBSERVABILITY,
                             secure_fraction=1.0, runs=1)
    _points[bus_size] = point

    from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
    from repro.grid.ieee_cases import case_by_buses
    from repro.scada import GeneratorConfig, generate_scada

    synthetic = generate_scada(
        case_by_buses(bus_size, seed=0),
        GeneratorConfig(measurement_fraction=0.7, hierarchy_level=1,
                        secure_fraction=1.0, seed=0))
    analyzer = ScadaAnalyzer(
        synthetic.network, ObservabilityProblem.from_table(synthetic.table))
    spec = ResiliencySpec.secured_observability(k=point.max_k + 1)
    result = benchmark.pedantic(
        lambda: analyzer.verify(spec, minimize=False),
        rounds=3, iterations=1)
    assert result is not None


def test_report_fig5b(benchmark, report):
    lines = ["bus_size | devices | sat time (s) | unsat time (s) | clauses"]
    plain_clauses = {}
    from repro.analysis import measure_instance as _mi
    for bus_size in BUS_SIZES:
        point = _points.get(bus_size)
        if point is None:
            point = _mi(bus_size, 1, 0, runs=1,
                        prop=Property.SECURED_OBSERVABILITY,
                        secure_fraction=1.0)
        plain = _mi(bus_size, 1, 0, runs=1, prop=Property.OBSERVABILITY)
        plain_clauses[bus_size] = plain.num_clauses
        lines.append(f"{bus_size:8d} | {point.num_devices:7d} | "
                     f"{point.sat_time:12.3f} | {point.unsat_time:14.3f} | "
                     f"{point.num_clauses:7d}")
    lines.append("")
    lines.append("model growth vs plain observability (paper: secured "
                 "model is larger):")
    for bus_size in BUS_SIZES:
        point = _points.get(bus_size)
        if point:
            ratio = point.num_clauses / max(plain_clauses[bus_size], 1)
            lines.append(f"  {bus_size}-bus: x{ratio:.2f} clauses")
    benchmark.pedantic(
        lambda: report("fig5b_secured_scaling", "\n".join(lines)),
        rounds=1, iterations=1)
