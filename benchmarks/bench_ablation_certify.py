"""Ablation — cost of certifying unsat answers with the RUP checker.

``verify(..., certify=True)`` re-validates a resilient verdict with an
independent proof checker; this bench quantifies the overhead on the
case study and on a 30-bus synthetic system.
"""

import pytest

from repro.cases import case_analyzer
from repro.core import (
    ObservabilityProblem,
    ResiliencySpec,
    ScadaAnalyzer,
)
from repro.grid import case30
from repro.scada import GeneratorConfig, generate_scada

_times = {}


@pytest.fixture(scope="module")
def systems():
    case = case_analyzer("fig3")
    synthetic = generate_scada(
        case30(),
        GeneratorConfig(measurement_fraction=0.8, dual_home_fraction=0.3,
                        seed=1))
    synthetic_analyzer = ScadaAnalyzer(
        synthetic.network, ObservabilityProblem.from_table(synthetic.table))
    return {"case5bus": (case, ResiliencySpec.observability(k1=1, k2=1)),
            "case30": (synthetic_analyzer,
                       ResiliencySpec.observability(k=0))}


@pytest.mark.parametrize("name", ["case5bus", "case30"])
@pytest.mark.parametrize("certify", [False, True],
                         ids=["plain", "certified"])
def test_certify_overhead(benchmark, systems, name, certify):
    analyzer, spec = systems[name]

    def run():
        return analyzer.verify(spec, certify=certify)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_resilient
    if certify:
        assert result.details["proof_checked"] is True
    _times[name, certify] = benchmark.stats.stats.mean


def test_report_certify(benchmark, report):
    def make():
        lines = ["system   | plain (s) | certified (s) | overhead"]
        for name in ("case5bus", "case30"):
            plain = _times.get((name, False))
            certified = _times.get((name, True))
            if plain and certified:
                lines.append(f"{name:8} | {plain:9.4f} | "
                             f"{certified:13.4f} | "
                             f"x{certified / plain:.2f}")
        report("ablation_certify", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
