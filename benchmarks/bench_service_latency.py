"""Service daemon latency — cold vs warm vs coalesced queries.

Measures the verification-as-a-service layer end to end, over real
sockets against an in-process daemon:

* **cold**: first query against a fresh session (parse + lint + engine
  construction + encode + solve);
* **warm**: repeat queries against the pooled session (the assumption
  backend re-encodes nothing — the solve is all that remains);
* **coalesced**: N identical concurrent POSTs that share one solve
  (per-client wall time ≈ the one solve, not N solves);
* **throughput**: sustained warm queries per second from concurrent
  clients.

Run directly (``python benchmarks/bench_service_latency.py``) to write
``BENCH_service.json`` at the repo root; ``BENCH_SMOKE=1`` switches to
the 14-bus case with fewer repetitions for CI.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import statistics
import threading
import time
from typing import Any, Callable, Dict, List

from repro.core import ObservabilityProblem
from repro.grid import case_by_buses
from repro.scada import GeneratorConfig, generate_scada
from repro.scada.config_io import CaseConfig, dump_config
from repro.service import ReproService, ServiceClient

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
BUSES = 14 if SMOKE else 118
SEED = 7
K = 1 if SMOKE else 3
WARM_REPEATS = 5 if SMOKE else 20
COALESCE_CLIENTS = 4 if SMOKE else 8
THROUGHPUT_QUERIES = 10 if SMOKE else 40
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _config_text() -> str:
    synthetic = generate_scada(
        case_by_buses(BUSES, seed=SEED),
        GeneratorConfig(measurement_fraction=0.7, secure_fraction=1.0,
                        dual_home_fraction=0.3, hierarchy_level=2,
                        seed=SEED))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return dump_config(CaseConfig(network=synthetic.network,
                                  problem=problem, spec=None))


class _Daemon:
    """The service on a background thread, as tests run it."""

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("port", 0)
        self.service = ReproService(**kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(30):
            raise RuntimeError("service failed to start")

    def client(self) -> ServiceClient:
        return ServiceClient(port=self.service.port)

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop)
        future.result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _timed(fn: Callable[[], Any]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _percentiles(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    return {
        "n": len(ordered),
        "p50_ms": round(statistics.median(ordered) * 1000, 2),
        "p95_ms": round(
            ordered[min(len(ordered) - 1,
                        int(0.95 * len(ordered)))] * 1000, 2),
        "min_ms": round(ordered[0] * 1000, 2),
        "max_ms": round(ordered[-1] * 1000, 2),
    }


def _bench_cold_and_warm(text: str) -> Dict[str, Any]:
    # A dedicated daemon so the cold number really is cold.
    daemon = _Daemon()
    try:
        client = daemon.client()
        spec = {"k": K}
        cold_s = _timed(
            lambda: client.verify(config=text, spec=spec, wait=True))
        warm = [
            _timed(lambda: client.verify(config=text, spec=spec,
                                         wait=True))
            for _ in range(WARM_REPEATS)
        ]
        counters = client.metrics()["counters"]
        return {
            "cold_ms": round(cold_s * 1000, 2),
            "warm": _percentiles(warm),
            "warm_over_cold": round(
                statistics.median(warm) / cold_s, 4),
            "cache_hits": counters.get("cache.hits", 0),
            "cache_misses": counters.get("cache.misses", 0),
            "solves": counters.get("service.solves", 0),
        }
    finally:
        daemon.stop()


def _bench_coalesced(text: str) -> Dict[str, Any]:
    from repro.service.jobs import JobOutcome
    from repro.service.protocol import JobKind

    # One worker slot, pinned by a gated no-op job: every client's POST
    # lands while the identical query is still pending, so coalescing
    # is deterministic and the clock starts when the gate opens.
    daemon = _Daemon(jobs=1)
    try:
        client = daemon.client()
        session = client.open_session(text)["session"]
        spec = {"k": K}

        async def inject() -> "asyncio.Event":
            gate = asyncio.Event()

            async def runner() -> JobOutcome:
                await gate.wait()
                return JobOutcome(payload={"exit_code": 0})

            daemon.service.jobs.submit(JobKind.VERIFY, runner,
                                       spec_text="bench-blocker")
            return gate

        gate = asyncio.run_coroutine_threadsafe(
            inject(), daemon.loop).result(timeout=10)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            blockers = [j for j in client.jobs()["jobs"]
                        if j["spec"] == "bench-blocker"]
            if blockers and blockers[0]["state"] == "running":
                break
            time.sleep(0.01)
        before = client.metrics()["counters"]
        finished: List[float] = []
        lock = threading.Lock()

        def post() -> None:
            own = daemon.client()
            own.verify(session=session, spec=spec, wait=True)
            with lock:
                finished.append(time.perf_counter())

        threads = [threading.Thread(target=post)
                   for _ in range(COALESCE_CLIENTS)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            mine = [j for j in client.jobs()["jobs"]
                    if j["spec"] != "bench-blocker"
                    and j["state"] in ("queued", "running")]
            if mine and mine[0]["coalesced"] == COALESCE_CLIENTS - 1:
                break
            time.sleep(0.01)
        released = time.perf_counter()
        daemon.loop.call_soon_threadsafe(gate.set)
        for thread in threads:
            thread.join(timeout=120)
        after = client.metrics()["counters"]
        latencies = [t - released for t in finished]
        return {
            "clients": COALESCE_CLIENTS,
            "per_client": _percentiles(latencies),
            "wall_ms": round((max(finished) - released) * 1000, 2),
            "solves": (after.get("service.solves", 0)
                       - before.get("service.solves", 0)),
            "coalesce_hits": (after.get("service.coalesce.hits", 0)
                              - before.get("service.coalesce.hits", 0)),
        }
    finally:
        daemon.stop()


def _bench_throughput(text: str) -> Dict[str, Any]:
    daemon = _Daemon()
    try:
        client = daemon.client()
        client.verify(config=text, spec={"k": K}, wait=True)  # warm up
        # Distinct budgets per query so nothing coalesces: this is a
        # throughput number, not a dedup number.
        budgets = [(i % (K + 1), i) for i in range(THROUGHPUT_QUERIES)]
        done: List[float] = []
        lock = threading.Lock()

        def worker(chunk: List[Any]) -> None:
            own = daemon.client()
            for k, r_seed in chunk:
                own.verify(config=text,
                           spec={"k": k, "r": 1 + r_seed % 2},
                           wait=True)
                with lock:
                    done.append(time.perf_counter())

        lanes = 4
        chunks = [budgets[i::lanes] for i in range(lanes)]
        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(chunk,))
                   for chunk in chunks if chunk]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        return {
            "queries": len(done),
            "wall_s": round(wall, 3),
            "queries_per_s": round(len(done) / wall, 2),
        }
    finally:
        daemon.stop()


def main() -> None:
    text = _config_text()
    print(f"service latency bench: {BUSES}-bus, k={K}"
          f"{' (smoke)' if SMOKE else ''}")
    cold_warm = _bench_cold_and_warm(text)
    print(f"  cold {cold_warm['cold_ms']}ms, "
          f"warm p50 {cold_warm['warm']['p50_ms']}ms "
          f"(x{cold_warm['warm_over_cold']} of cold)")
    coalesced = _bench_coalesced(text)
    print(f"  coalesced: {coalesced['clients']} clients, "
          f"{coalesced['solves']} solve(s), "
          f"p95 {coalesced['per_client']['p95_ms']}ms")
    throughput = _bench_throughput(text)
    print(f"  throughput: {throughput['queries_per_s']} warm queries/s")
    assert coalesced["solves"] == 1, \
        f"identical concurrent queries ran {coalesced['solves']} solves"
    assert coalesced["coalesce_hits"] >= COALESCE_CLIENTS - 1
    payload = {
        "case": {"buses": BUSES, "seed": SEED, "hierarchy": 2, "k": K,
                 "smoke": SMOKE},
        "cold_vs_warm": cold_warm,
        "coalesced": coalesced,
        "throughput": throughput,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n",
                   encoding="utf-8")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
