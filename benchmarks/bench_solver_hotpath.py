"""Solver hot-path benchmark — arena/inprocessing/portfolio on 118-bus.

Measures what the clause-arena solver rewrite buys the verification
stack on the largest evaluation case, across the full configuration
matrix {fresh, assumption, portfolio} x {inprocess on, off}:

* **max-resiliency axis**: the total-budget observability search per
  hierarchy level — wall time, inprocessing counters (clauses
  subsumed / strengthened / vivified, arena compactions), and the
  returned bounds, which must be identical across all six
  configurations (the overhaul is an optimization, never an answer
  change).
* **trajectory axis** (Fig. 5/6 shape): per-budget verify wall times
  along the k ladder up to three steps past the certificate.  The
  rungs past ``k*`` are the *hard* queries; the ``k*+1`` rung on the
  deepest (uncertified) hierarchy is where the probe's propagation cap
  trips and the diversified pool takes over.  Two win notions are
  reported: ``portfolio_hard_wins`` (a portfolio config was outright
  wall-fastest on a hard rung) and ``portfolio_fan_out_wins`` (a
  pooled worker/cube decided a hard rung — the race the portfolio is
  built around; on single-core hosts the pool is time-shared, so this
  is the honest signal there while wall wins need real parallelism).

Run directly (``python benchmarks/bench_solver_hotpath.py``) to write
``BENCH_solver.json`` at the repo root; ``BENCH_SMOKE=1`` switches to
the 14-bus case for CI's perf-smoke job.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Tuple

from repro.core import ObservabilityProblem, Property, ResiliencySpec
from repro.engine import VerificationEngine
from repro.engine.sweep import resolve_jobs
from repro.grid import case_by_buses
from repro.obs.tracer import Tracer, set_tracer
from repro.scada import GeneratorConfig, generate_scada

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
BUSES = 14 if SMOKE else 118
HIERARCHIES = (1, 2)
SEED = 7
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver.json"

#: Portfolio pool width.  Auto-sizing would collapse to inline mode on
#: single-core runners, hiding the race entirely, so the floor keeps a
#: real fan-out (time-shared if need be) on every machine.
PORTFOLIO_JOBS = int(os.environ.get("BENCH_PORTFOLIO_JOBS", "0")) \
    or max(4, resolve_jobs(None))

#: The benchmark matrix: every backend crossed with inprocessing on/off.
BACKENDS = ("fresh", "assumption", "portfolio")
CONFIGS: Tuple[Tuple[str, bool], ...] = tuple(
    (backend, inprocess)
    for backend in BACKENDS
    for inprocess in (True, False))

#: Counter prefixes harvested from the tracer per measurement.
_PREFIXES = ("solver.inprocess.", "solver.arena.", "portfolio.")


def _config_key(backend: str, inprocess: bool) -> str:
    return f"{backend}+{'inprocess' if inprocess else 'no-inprocess'}"


def _build(hierarchy: int):
    synthetic = generate_scada(
        case_by_buses(BUSES, seed=SEED),
        GeneratorConfig(measurement_fraction=0.7, secure_fraction=1.0,
                        dual_home_fraction=0.3, hierarchy_level=hierarchy,
                        seed=SEED))
    problem = ObservabilityProblem.from_table(synthetic.table)
    return synthetic.network, problem


def _engine(network, problem, backend: str,
            inprocess: bool) -> VerificationEngine:
    opts: Dict[str, object] = {} if inprocess else {"inprocess": False}
    jobs = PORTFOLIO_JOBS if backend == "portfolio" else 1
    return VerificationEngine(network, problem, backend=backend,
                              lint=False, jobs=jobs, solver_opts=opts)


def _traced(fn):
    """Run *fn* under a fresh tracer; return (result, wall_s, counters)."""
    sink = io.StringIO()
    tracer = Tracer(sink)
    previous = set_tracer(tracer)
    start = time.perf_counter()
    try:
        result = fn()
    finally:
        wall = time.perf_counter() - start
        tracer.close()
        set_tracer(previous)
    counters: Dict[str, float] = {}
    for line in sink.getvalue().splitlines():
        record = json.loads(line)
        if record.get("type") != "metrics":
            continue
        for key, value in record.get("counters", {}).items():
            if key.startswith(_PREFIXES):
                counters[key] = counters.get(key, 0.0) + value
    return result, wall, counters


def _bench_max_resiliency(network, problem) -> Dict[str, Any]:
    """Total-budget observability search across the full matrix."""
    out: Dict[str, Any] = {}
    bounds_seen = []
    for backend, inprocess in CONFIGS:
        engine = _engine(network, problem, backend, inprocess)
        bounds, wall, counters = _traced(
            lambda e=engine: e.max_total_resiliency_bounds(
                Property.OBSERVABILITY))
        bounds_seen.append((bounds.lower, bounds.upper))
        out[_config_key(backend, inprocess)] = {
            "wall_s": round(wall, 3),
            "bounds": [bounds.lower, bounds.upper],
            "counters": {k: int(v) for k, v in sorted(counters.items())},
        }
    out["agree"] = len(set(bounds_seen)) == 1
    if not out["agree"]:
        raise SystemExit(f"max-resiliency bounds diverge: {bounds_seen}")
    out["k_star"] = bounds_seen[0][0]
    return out


def _bench_trajectory(network, problem, k_star: int) -> Dict[str, Any]:
    """Per-budget verify wall times along the k ladder (Fig. 5/6 shape).

    The ladder runs from 0 to three steps past the certificate: the
    rungs beyond k* are the *hard* queries — past the certified
    maximum the minimal-witness search (and, deeper still, the
    minimization of large threat vectors) dominates, which is where
    the portfolio's probe budget runs out and the pool takes over.
    """
    depth = 1 if SMOKE else 3
    ks = sorted({0, max(0, k_star)}
                | {k_star + i for i in range(1, depth + 1)})
    rows: List[Dict[str, Any]] = []
    for k in ks:
        spec = ResiliencySpec.observability(k=k)
        row: Dict[str, Any] = {"k": k, "hard": k > k_star}
        verdicts = set()
        best = None
        for backend, inprocess in CONFIGS:
            engine = _engine(network, problem, backend, inprocess)
            result, wall, _ = _traced(lambda e=engine: e.verify(spec))
            key = _config_key(backend, inprocess)
            row[key] = {"wall_s": round(wall, 3),
                        "status": result.status.value}
            if backend == "portfolio":
                pf = result.details.get("portfolio", {})
                row[key]["mode"] = pf.get("mode", "fan-out")
                if "winner" in pf:
                    row[key]["winner"] = pf["winner"]
                    row[key]["win_kind"] = pf.get("win_kind")
            verdicts.add(result.status.value)
            if best is None or wall < best[1]:
                best = (key, wall)
        if len(verdicts) != 1:
            raise SystemExit(
                f"verdicts diverge at k={k}: "
                f"{ {c: row[c]['status'] for c in row if '+' in c} }")
        row["status"] = verdicts.pop()
        row["fastest"] = best[0]
        rows.append(row)
    return {"ladder": rows}


def _bench_hierarchy(hierarchy: int) -> Dict[str, Any]:
    network, problem = _build(hierarchy)
    maxima = _bench_max_resiliency(network, problem)
    trajectory = _bench_trajectory(network, problem, maxima["k_star"])
    return {
        "case": {
            "buses": BUSES,
            "hierarchy": hierarchy,
            "seed": SEED,
            "devices": len(network.devices),
            "measurements": problem.num_measurements,
            "states": problem.num_states,
        },
        "max_resiliency": maxima,
        "trajectory": trajectory,
    }


def _portfolio_hard_wins(payload: Dict[str, Any]) -> List[str]:
    """Hard-ladder rungs where a portfolio config was outright fastest."""
    wins = []
    for key, entry in payload.items():
        if not key.startswith("hierarchy_"):
            continue
        for row in entry["trajectory"]["ladder"]:
            if row["hard"] and row["fastest"].startswith("portfolio"):
                wins.append(f"{key}:k={row['k']}")
    return wins


def _portfolio_fan_out_wins(payload: Dict[str, Any]) -> List[str]:
    """Hard rungs the portfolio decided through a pooled worker/cube
    (as opposed to the probe or inline fallback)."""
    wins = []
    for key, entry in payload.items():
        if not key.startswith("hierarchy_"):
            continue
        for row in entry["trajectory"]["ladder"]:
            if not row["hard"]:
                continue
            for config, cell in row.items():
                if (isinstance(cell, dict)
                        and str(config).startswith("portfolio")
                        and cell.get("winner")):
                    wins.append(f"{key}:k={row['k']}:{config}"
                                f"->{cell['winner']}")
    return wins


def main() -> None:
    payload: Dict[str, Any] = {
        f"hierarchy_{h}": _bench_hierarchy(h) for h in HIERARCHIES}
    payload["config_matrix"] = [_config_key(b, i) for b, i in CONFIGS]
    payload["portfolio_jobs"] = PORTFOLIO_JOBS
    payload["portfolio_hard_wins"] = _portfolio_hard_wins(payload)
    payload["portfolio_fan_out_wins"] = _portfolio_fan_out_wins(payload)
    payload["smoke"] = SMOKE
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")
    for h in HIERARCHIES:
        entry = payload[f"hierarchy_{h}"]
        maxima = entry["max_resiliency"]
        walls = {c: maxima[c]["wall_s"]
                 for c in payload["config_matrix"]}
        print(f"hierarchy_{h}: k*={maxima['k_star']} "
              f"max-resiliency walls {walls}")
    print(f"portfolio hard-query wins: "
          f"{payload['portfolio_hard_wins'] or 'none'}")
    print(f"portfolio fan-out wins: "
          f"{payload['portfolio_fan_out_wins'] or 'none'}")


if __name__ == "__main__":
    main()
