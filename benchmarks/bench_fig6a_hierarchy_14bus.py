"""Fig. 6(a) — execution time vs hierarchy level, 14-bus system.

Paper shape: as the hierarchy deepens, sat (threat-finding) time tends
to fall — deeper hierarchies concentrate more IEDs behind important
RTUs, so threats are easier to find — while unsat time tends to rise
(the whole space must still be exhausted over a larger model).
"""

import pytest

from repro.analysis import sweep_hierarchy
from repro.core import Property

LEVELS = [1, 2, 3, 4]
_sweep = {}


@pytest.mark.parametrize("level", LEVELS)
def test_hierarchy_14bus(benchmark, level):
    def run():
        sweep = sweep_hierarchy(14, [level], seeds=(0, 1, 2), runs=1)
        _sweep[level] = sweep
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sweep.points


def test_report_fig6a(benchmark, report):
    def make():
        lines = ["hierarchy | devices | sat time (s) | unsat time (s)"]
        for level in LEVELS:
            sweep = _sweep.get(level)
            if sweep is None:
                sweep = sweep_hierarchy(14, [level], seeds=(0,), runs=1)
            stats = sweep.aggregate("hierarchy")[level]
            lines.append(f"{level:9d} | {stats['devices']:7.0f} | "
                         f"{stats['sat_time']:12.3f} | "
                         f"{stats['unsat_time']:14.3f}")
        report("fig6a_hierarchy_14bus", "\n".join(lines))

    benchmark.pedantic(make, rounds=1, iterations=1)
