"""Fig. 5(a) — k-resilient observability verification time vs bus size.

Paper shape: execution time grows between linearly and quadratically in
the number of buses, and unsat (resilient) runs take longer than sat
runs.  We time the certified-resilient budget k* (unsat) and k*+1 (sat)
for synthetic SCADA systems over 14/30/57/118-bus grids.
"""

import math

import pytest

from repro.analysis import measure_instance
from repro.core import Property

BUS_SIZES = [14, 30, 57, 118]
_points = {}


@pytest.mark.parametrize("bus_size", BUS_SIZES)
def test_observability_scaling(benchmark, bus_size):
    point = measure_instance(bus_size, hierarchy=1, seed=0,
                             prop=Property.OBSERVABILITY, runs=1)
    _points[bus_size] = point
    spec_k = point.max_k + 1  # the sat (threat-finding) check

    from repro.core import ObservabilityProblem, ResiliencySpec, ScadaAnalyzer
    from repro.grid.ieee_cases import case_by_buses
    from repro.scada import GeneratorConfig, generate_scada

    synthetic = generate_scada(
        case_by_buses(bus_size, seed=0),
        GeneratorConfig(measurement_fraction=0.7, hierarchy_level=1, seed=0))
    analyzer = ScadaAnalyzer(
        synthetic.network, ObservabilityProblem.from_table(synthetic.table))
    result = benchmark.pedantic(
        lambda: analyzer.verify(ResiliencySpec.observability(k=spec_k),
                                minimize=False),
        rounds=3, iterations=1)
    assert result is not None


def test_report_fig5a(benchmark, report):
    lines = ["bus_size | devices | sat time (s) | unsat time (s) | clauses"]
    for bus_size in BUS_SIZES:
        point = _points.get(bus_size)
        if point is None:
            point = measure_instance(bus_size, hierarchy=1, seed=0, runs=1)
        lines.append(f"{bus_size:8d} | {point.num_devices:7d} | "
                     f"{point.sat_time:12.3f} | {point.unsat_time:14.3f} | "
                     f"{point.num_clauses:7d}")
    # Growth-order estimate between the extreme points (paper: between
    # linear and quadratic in the bus count).
    small, big = _points.get(14), _points.get(118)
    if small and big and small.sat_time > 0 and big.sat_time > 0:
        alpha = (math.log(big.sat_time / small.sat_time)
                 / math.log(118 / 14))
        lines.append(f"growth order alpha (sat series): {alpha:.2f}")
    benchmark.pedantic(
        lambda: report("fig5a_observability_scaling", "\n".join(lines)),
        rounds=1, iterations=1)
