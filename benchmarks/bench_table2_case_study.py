"""Table II / §IV — the 5-bus case study, Scenarios 1 and 2.

Regenerates every verdict the paper reports for the case study and
benchmarks the individual verification calls.
"""

import pytest

from repro.cases import case_analyzer
from repro.core import ResiliencySpec, Status


@pytest.fixture(scope="module")
def fig3():
    return case_analyzer("fig3")


@pytest.fixture(scope="module")
def fig4():
    return case_analyzer("fig4")


def test_scenario1_11_observability(benchmark, fig3):
    spec = ResiliencySpec.observability(k1=1, k2=1)
    result = benchmark(lambda: fig3.verify(spec))
    assert result.status is Status.RESILIENT


def test_scenario1_21_observability(benchmark, fig3):
    spec = ResiliencySpec.observability(k1=2, k2=1)
    result = benchmark(lambda: fig3.verify(spec))
    assert result.status is Status.THREAT_FOUND


def test_scenario1_21_threat_enumeration(benchmark, fig3):
    spec = ResiliencySpec.observability(k1=2, k2=1)
    vectors = benchmark(lambda: fig3.enumerate_threat_vectors(spec))
    assert len(vectors) == 9


def test_scenario2_11_secured(benchmark, fig3):
    spec = ResiliencySpec.secured_observability(k1=1, k2=1)
    result = benchmark(lambda: fig3.verify(spec))
    assert result.status is Status.THREAT_FOUND


def test_scenario2_fig4_single_rtu(benchmark, fig4):
    spec = ResiliencySpec.secured_observability(k1=0, k2=1)
    result = benchmark(lambda: fig4.verify(spec))
    assert result.status is Status.THREAT_FOUND
    assert result.threat.failed_rtus == frozenset({12})


def test_report_case_study(benchmark, report, fig3, fig4):
    """Emit the full Table-II style verdict listing."""
    lines = []
    for name, analyzer in (("fig3", fig3), ("fig4", fig4)):
        lines.append(f"-- topology {name} --")
        for spec in (
            ResiliencySpec.observability(k1=1, k2=1),
            ResiliencySpec.observability(k1=2, k2=1),
            ResiliencySpec.observability(k1=3, k2=0),
            ResiliencySpec.observability(k1=4, k2=0),
            ResiliencySpec.secured_observability(k1=1, k2=0),
            ResiliencySpec.secured_observability(k1=0, k2=1),
            ResiliencySpec.secured_observability(k1=1, k2=1),
        ):
            lines.append("  " + analyzer.verify(spec).summary())
    benchmark.pedantic(
        lambda: report("table2_case_study", "\n".join(lines)),
        rounds=1, iterations=1)
