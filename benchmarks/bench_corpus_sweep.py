"""Corpus sweeps — cold vs resumed, at and beyond the paper's scale.

The corpus layer's claim is twofold:

* **Scale.**  The paper's §VII envelope is "within 30 seconds for a
  SCADA system with 400 physical devices"; the corpus generator grows
  grids whose SCADA systems pass 1500 field devices (1000 buses), and
  every verification cell still completes inside that envelope — this
  graduates the old 400-device scale bench.
* **Resume.**  A second run over the same corpus re-solves *zero*
  already-stored cells (100% store hit rate) and reports verdicts
  identical to the cold run's, so an interrupted sweep loses at most
  the grid in flight.

Run directly (``python benchmarks/bench_corpus_sweep.py``) to write
``BENCH_corpus.json`` at the repo root; ``BENCH_SMOKE=1`` shrinks the
fleet for CI.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, List

from repro.corpus import generate_corpus, load_grids, run_corpus
from repro.corpus.runner import STORE_DIR
from repro.corpus.store import ResultStore
from repro.scada import GeneratorConfig

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
SIZES = [60, 100] if SMOKE else [200, 400, 700, 1000]
SEEDS = [0] if SMOKE else [0, 1]
KS = (0, 1) if SMOKE else (0, 1, 2)
JOBS = 2
OUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_corpus.json"

#: SCADA policy for every corpus grid: half the measurements sampled,
#: a two-level RTU tier of one RTU per four buses — at 1000 buses this
#: yields ~1500 field devices, well past the paper's 400.
SCADA = GeneratorConfig(measurement_fraction=0.5, rtus_per_bus=0.25,
                        hierarchy_level=2, secure_fraction=0.9, seed=0)


def _report_row(report) -> Dict[str, Any]:
    return {
        "cells": report.cells, "skipped": report.skipped,
        "screened": report.screened, "solved": report.solved,
        "unknown": report.unknown, "resilient": report.resilient,
        "threats": report.threats, "failures": len(report.failures),
        "wall_s": round(report.wall_time, 3),
    }


def main() -> None:
    root = os.path.join(tempfile.mkdtemp(prefix="bench_corpus_"),
                        "corpus")
    started = time.perf_counter()
    entries = generate_corpus(root, sizes=SIZES, seeds=SEEDS,
                              scada=SCADA)
    generate_s = time.perf_counter() - started
    largest = max(entries, key=lambda e: e["num_devices"])

    cold = run_corpus(root, ks=KS, jobs=JOBS)
    assert not cold.failures, cold.failures

    resumed = run_corpus(root, ks=KS, jobs=JOBS)
    assert not resumed.failures, resumed.failures
    re_solved = resumed.screened + resumed.solved + resumed.unknown
    assert re_solved == 0, f"resumed run re-ran {re_solved} cell(s)"
    assert resumed.skipped == cold.cells
    assert resumed.verdicts == cold.verdicts, \
        "resumed verdicts diverged from cold verdicts"

    # The graduated §VII scale claim: on every grid at or beyond the
    # paper's 400 devices, each solver-backed cell stayed inside the
    # 30-second envelope (screened cells cost zero solver queries).
    store = ResultStore(os.path.join(root, STORE_DIR))
    devices_by_buses = {e["num_buses"]: e["num_devices"]
                        for e in entries}
    at_scale: List[float] = []
    for record in store:
        buses = int(record.meta.get("num_buses", 0))
        if devices_by_buses.get(buses, 0) >= 400:
            at_scale.append(record.result.total_time)
    max_cell_s = max(at_scale) if at_scale else 0.0
    assert max_cell_s < 30.0, max_cell_s

    # Interrupted-run simulation: a fresh corpus swept for a subset of
    # the budgets, then the full sweep — only the new cells run.
    root2 = os.path.join(tempfile.mkdtemp(prefix="bench_corpus_"),
                         "corpus")
    generate_corpus(root2, sizes=SIZES[:2], seeds=SEEDS, scada=SCADA)
    partial = run_corpus(root2, ks=KS[:1], jobs=JOBS)
    completed = run_corpus(root2, ks=KS, jobs=JOBS)
    assert completed.skipped == partial.cells

    payload = {
        "bench": "corpus_sweep",
        "smoke": SMOKE,
        "fleet": {
            "sizes": SIZES, "seeds": SEEDS, "ks": list(KS),
            "grids": len(entries), "jobs": JOBS,
            "generate_s": round(generate_s, 3),
            "largest_grid": {
                "buses": largest["num_buses"],
                "devices": largest["num_devices"],
                "measurements": largest["num_measurements"],
            },
        },
        "cold": _report_row(cold),
        "resumed": _report_row(resumed),
        "resume_claim": {
            "re_solved_cells": re_solved,
            "store_hit_rate": resumed.skipped / resumed.cells,
            "verdicts_identical": resumed.verdicts == cold.verdicts,
            "speedup": round(cold.wall_time
                             / max(resumed.wall_time, 1e-9), 1),
        },
        "scale_claim": {
            "devices": largest["num_devices"],
            "cells_at_scale": len(at_scale),
            "max_cell_s": round(max_cell_s, 3),
            "within_30s_envelope": max_cell_s < 30.0,
        },
        "interrupted": {
            "partial": _report_row(partial),
            "completed": _report_row(completed),
            "resumed_cells": completed.skipped,
        },
        "verdicts": {digest: status for digest, status
                     in sorted(cold.verdicts.items())},
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"cold {cold.wall_time:.2f}s → resumed "
          f"{resumed.wall_time:.2f}s over {cold.cells} cell(s); "
          f"largest grid {largest['num_buses']} buses / "
          f"{largest['num_devices']} devices; "
          f"max at-scale cell {max_cell_s:.2f}s")
    print(f"wrote {OUT}")


# -- pytest entry points (smoke-scale asserts only) ---------------------


def test_resume_reruns_nothing(tmp_path):
    root = str(tmp_path / "corpus")
    generate_corpus(root, sizes=[40, 60], seeds=[0],
                    scada=GeneratorConfig(measurement_fraction=0.4,
                                          rtus_per_bus=0.1, seed=3))
    cold = run_corpus(root, ks=(0, 1))
    resumed = run_corpus(root, ks=(0, 1))
    assert resumed.skipped == cold.cells
    assert resumed.screened + resumed.solved + resumed.unknown == 0
    assert resumed.verdicts == cold.verdicts
    assert len(load_grids(root)) == 2


if __name__ == "__main__":
    main()
