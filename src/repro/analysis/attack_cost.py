"""Cheapest-attack analysis: minimum-cost threat vectors.

The paper's contingency model treats all device failures alike; real
adversaries do not — taking down a hardened control-center RTU costs
more than DoS-ing a field IED.  This module assigns every field device
an integer *attack cost* and finds the **minimum total cost** at which a
threat vector exists, plus the vector realizing it.

Encoding: a budget ``Σ cost_i · down_i ≤ C`` is a cardinality constraint
over a multiset in which each device's down-literal appears ``cost_i``
times; binary search over ``C`` (with the property negation fixed)
yields the optimum with O(log ΣC) solver calls — a small-weights
MaxSAT-style linear-search specialization that fits the substrate.

The weighted budget rides on a :class:`~repro.smt.BudgetHandle`: one
persistent counter over the multiset whose per-``C`` selector literals
are passed to ``check`` as assumptions, so the whole binary search
shares a single solver and every learned clause — no push/pop, no
re-encoding per probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.encoder import ModelEncoder
from ..core.results import ThreatVector
from ..core.specs import Property, ResiliencySpec
from ..engine import VerificationEngine
from ..obs.tracer import current_tracer, probe_for
from ..obs.tracer import span as obs_span
from ..sat.limits import Limits, ResourceLimitReached
from ..smt.solver import Result, Solver
from ..smt.terms import BoolVal, Not, Term

__all__ = ["AttackCostResult", "cheapest_threat", "uniform_costs"]

Verifier = Union[ScadaAnalyzer, VerificationEngine]


@dataclass
class AttackCostResult:
    """The cheapest threat vector and its cost."""

    prop: Property
    cost: Optional[int]            # None when no threat exists at all
    threat: Optional[ThreatVector]
    costs: Dict[int, int]
    solver_calls: int = 0

    @property
    def attack_exists(self) -> bool:
        return self.cost is not None

    def summary(self) -> str:
        if not self.attack_exists:
            return (f"{self.prop.value}: no failure set of any cost "
                    f"violates the property")
        assert self.threat is not None
        return (f"{self.prop.value}: cheapest attack costs {self.cost} "
                f"— [{self.threat.describe()}]")


def uniform_costs(analyzer: Verifier, ied_cost: int = 1,
                  rtu_cost: int = 3) -> Dict[int, int]:
    """A cost map with distinct IED and RTU prices."""
    costs = {ied: ied_cost for ied in analyzer.network.ied_ids}
    costs.update({rtu: rtu_cost for rtu in analyzer.network.rtu_ids})
    return costs


def _vector_cost(threat: ThreatVector, costs: Mapping[int, int]) -> int:
    return sum(costs[d] for d in threat.failed_devices)


def cheapest_threat(analyzer: Verifier,
                    prop: Property = Property.OBSERVABILITY,
                    costs: Optional[Mapping[int, int]] = None,
                    r: int = 1,
                    max_conflicts: Optional[int] = None,
                    limits: Optional[Limits] = None
                    ) -> AttackCostResult:
    """Find the minimum-cost failure set violating *prop*.

    ``costs`` maps every field device to a positive integer; omitted
    devices default to cost 1.  Raises on non-positive costs.
    Accepts a :class:`ScadaAnalyzer` or a :class:`VerificationEngine`
    (whose shared reference evaluator validates the optimum).

    *limits* bounds every probe; an expired budget raises
    :exc:`~repro.sat.ResourceLimitReached` (the optimum cannot be
    soundly reported from a half-finished binary search).
    """
    engine = VerificationEngine.wrap(analyzer)
    network = engine.network
    cost_map = {device: 1 for device in network.field_device_ids}
    if costs:
        cost_map.update(costs)
    for device, cost in cost_map.items():
        if cost < 1:
            raise ValueError(f"device {device} has non-positive cost")
        if device not in network.devices:
            raise ValueError(f"unknown device {device} in cost map")

    encoder = ModelEncoder(network, engine.problem)
    solver = Solver(card_encoding=engine.card_encoding)
    solver.set_hooks(probe_for(current_tracer()))
    solver.add(*encoder.availability_axioms())
    solver.add(*encoder.delivery_definitions(secured=False))
    if prop.uses_security:
        solver.add(*encoder.delivery_definitions(secured=True))
    solver.add(encoder.property_negation(prop, r))

    weighted: List[Term] = []
    for device, cost in sorted(cost_map.items()):
        weighted.extend([Not(encoder.node(device))] * cost)
    total = len(weighted)
    # One extendable counter over the cost multiset serves every probe;
    # each budget C is just its selector literal assumed for one check.
    handle = solver.budget_handle(weighted, "attack-cost")

    calls = 0

    def threat_within(budget: int) -> Optional[set]:
        nonlocal calls
        calls += 1
        selector = handle.at_most(budget)
        assumptions: List[Term] = [] if (isinstance(selector, BoolVal)
                                         and selector.value) else [selector]
        outcome = solver.check(*assumptions, max_conflicts=max_conflicts,
                               limits=limits)
        if outcome is Result.UNKNOWN:
            raise ResourceLimitReached(
                f"solver budget exhausted in cheapest-threat search "
                f"(after {calls} probe(s))",
                reason=solver.last_limit_reason)
        if outcome is Result.UNSAT:
            return None
        model = solver.model()
        return {
            device
            for device, var in encoder.field_node_vars().items()
            if not model.value(var)
        }

    with obs_span("analysis.attack_cost", prop=prop.value) as sp:
        # Is there any threat at all?
        best = threat_within(total)
        if best is None:
            sp.attrs["probes"] = calls
            return AttackCostResult(prop=prop, cost=None, threat=None,
                                    costs=cost_map, solver_calls=calls)

        spec = ResiliencySpec.for_property(prop, r=r, k=total)
        lo, hi = 0, sum(cost_map[d] for d in best)
        while lo < hi:
            mid = (lo + hi) // 2
            found = threat_within(mid)
            if found is None:
                lo = mid + 1
            else:
                hi = min(mid, sum(cost_map[d] for d in found))
                best = found

        minimal = engine.reference.minimize_threat(spec, best)
        threat = ThreatVector(
            failed_ieds=frozenset(minimal & set(network.ied_ids)),
            failed_rtus=frozenset(minimal & set(network.rtu_ids)),
            minimal=True,
        )
        final_cost = sum(cost_map[d] for d in minimal)
        sp.attrs["probes"] = calls
        sp.attrs["cost"] = final_cost
        return AttackCostResult(prop=prop, cost=final_cost, threat=threat,
                                costs=cost_map, solver_calls=calls)
