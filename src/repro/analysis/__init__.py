"""Evaluation drivers: scalability, maximal resiliency, threat space,
attack-cost analysis."""

from .attack_cost import AttackCostResult, cheapest_threat, uniform_costs
from .monte_carlo import AvailabilityEstimate, estimate_availability
from .max_resiliency import (
    max_ied_resiliency,
    max_rtu_resiliency,
    max_total_resiliency,
    max_total_resiliency_bounds,
)
from .scaling import (
    ScalingPoint,
    ScalingSweep,
    measure_instance,
    sweep_bus_sizes,
    sweep_hierarchy,
)
from .threat_space import ThreatSpace, threat_space

__all__ = [
    "AttackCostResult",
    "AvailabilityEstimate",
    "ScalingPoint",
    "ScalingSweep",
    "ThreatSpace",
    "cheapest_threat",
    "estimate_availability",
    "max_ied_resiliency",
    "max_rtu_resiliency",
    "max_total_resiliency",
    "max_total_resiliency_bounds",
    "measure_instance",
    "sweep_bus_sizes",
    "sweep_hierarchy",
    "uniform_costs",
    "threat_space",
]
