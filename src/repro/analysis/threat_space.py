"""Threat-space analysis (Fig. 7(b)).

The threat space of a resiliency specification is the set of threat
vectors violating it.  The paper reports its size as a function of the
SCADA hierarchy level and the specification; we count *minimal* threat
vectors via blocking-clause enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.results import ThreatVector
from ..core.specs import ResiliencySpec
from ..engine import VerificationEngine
from ..obs.tracer import count as obs_count
from ..sat.limits import Limits, ResourceLimitReached

__all__ = ["ThreatSpace", "threat_space"]


@dataclass
class ThreatSpace:
    """The enumerated threat space of one specification.

    ``truncated`` means the caller's ``limit`` cut the enumeration
    short; ``incomplete`` means a solver resource budget expired
    mid-enumeration (``limit_reason`` names which one) and ``vectors``
    holds only what was found before it.  Either way ``size`` is a
    lower bound on the true threat-space size, never an overcount.
    ``screened`` means the structural pass proved the space empty and
    the enumeration never ran; the (empty) result is exact.
    """

    spec: ResiliencySpec
    vectors: List[ThreatVector]
    truncated: bool = False
    incomplete: bool = False
    limit_reason: Optional[str] = None
    screened: bool = False

    @property
    def size(self) -> int:
        return len(self.vectors)

    @property
    def exact(self) -> bool:
        """True when every minimal vector was enumerated."""
        return not (self.truncated or self.incomplete)

    def by_size(self) -> dict:
        """Histogram: number of failed devices → vector count."""
        histogram: dict = {}
        for vector in self.vectors:
            histogram[vector.size] = histogram.get(vector.size, 0) + 1
        return dict(sorted(histogram.items()))

    def __repr__(self) -> str:
        marker = "+" if not self.exact else ""
        return (f"ThreatSpace({self.spec.describe()}: "
                f"{self.size}{marker} vectors)")


def threat_space(analyzer: Union[ScadaAnalyzer, VerificationEngine],
                 spec: ResiliencySpec,
                 limit: Optional[int] = None,
                 minimal: bool = True,
                 backend: Optional[str] = None,
                 limits: Optional[Limits] = None,
                 screen: bool = True) -> ThreatSpace:
    """Enumerate the (minimal) threat space of *spec*.

    Accepts a :class:`ScadaAnalyzer` or a :class:`VerificationEngine`;
    with an engine, enumeration uses the active backend unless
    *backend* overrides it (e.g. ``"assumption"`` to sweep many specs
    against one solver: budgets ride on assumption selectors and only
    the blocking clauses live in a per-spec scope).

    *limits* bounds every individual solve.  An expired budget does not
    discard the work done: the vectors found so far come back in a
    :class:`ThreatSpace` flagged ``incomplete``.

    With *screen* (the default), the structural pass first brackets the
    minimal attack cardinality; when its certified lower bound already
    exceeds the spec's failure budget the space is provably empty and
    no solver ever runs (the result is flagged ``screened``).  Link
    budgets are outside the structural model, so specs with ``link_k``
    are never screened.
    """
    engine = VerificationEngine.wrap(analyzer)
    if backend is not None:
        engine = engine.with_backend(backend)
    if screen and spec.link_k is None:
        bounds = engine.structural().attack_bounds(spec.property, r=spec.r)
        if bounds.certified and spec.budget.max_failures < bounds.lower:
            obs_count("graphs.screen.enumerations_pruned")
            return ThreatSpace(spec=spec, vectors=[], screened=True)
    try:
        vectors = engine.enumerate_threat_vectors(
            spec, limit=limit, minimal=minimal, limits=limits)
    except ResourceLimitReached as exc:
        partial = [v for v in (exc.partial or [])
                   if isinstance(v, ThreatVector)]
        return ThreatSpace(
            spec=spec, vectors=partial, incomplete=True,
            limit_reason=exc.reason.value if exc.reason else None)
    truncated = limit is not None and len(vectors) >= limit
    return ThreatSpace(spec=spec, vectors=vectors, truncated=truncated)
