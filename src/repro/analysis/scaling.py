"""Scalability sweep drivers (Fig. 5 and Fig. 6).

The paper measures verification time against problem size (bus count)
and hierarchy level, separating ``sat`` (threat found) from ``unsat``
(resilient) runs: for a given instance the budget ``k*`` at which the
system is maximally resilient yields the slowest *unsat*, and ``k*+1``
yields a *sat* — timing both reproduces the paper's two curves on
principled points rather than arbitrary budgets.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.analyzer import ScadaAnalyzer
from ..core.problem import ObservabilityProblem
from ..core.results import Status
from ..core.specs import Property, ResiliencySpec
from ..grid.ieee_cases import case_by_buses
from ..scada.generator import GeneratorConfig, generate_scada
from .max_resiliency import max_total_resiliency

__all__ = ["ScalingPoint", "ScalingSweep", "measure_instance",
           "sweep_bus_sizes", "sweep_hierarchy"]


@dataclass
class ScalingPoint:
    """Timing of one synthetic instance."""

    bus_size: int
    hierarchy: int
    seed: int
    num_devices: int
    max_k: int
    sat_times: List[float] = field(default_factory=list)
    unsat_times: List[float] = field(default_factory=list)
    num_vars: int = 0
    num_clauses: int = 0

    @property
    def sat_time(self) -> float:
        return statistics.mean(self.sat_times) if self.sat_times else 0.0

    @property
    def unsat_time(self) -> float:
        return statistics.mean(self.unsat_times) if self.unsat_times else 0.0


@dataclass
class ScalingSweep:
    """A collection of scaling points with aggregation helpers."""

    prop: Property
    points: List[ScalingPoint] = field(default_factory=list)

    def aggregate(self, key: str) -> Dict[int, Dict[str, float]]:
        """Mean sat/unsat time grouped by ``bus_size`` or ``hierarchy``."""
        groups: Dict[int, List[ScalingPoint]] = {}
        for point in self.points:
            groups.setdefault(getattr(point, key), []).append(point)
        out: Dict[int, Dict[str, float]] = {}
        for value, pts in sorted(groups.items()):
            out[value] = {
                "sat_time": statistics.mean(p.sat_time for p in pts),
                "unsat_time": statistics.mean(p.unsat_time for p in pts),
                "devices": statistics.mean(p.num_devices for p in pts),
                "vars": statistics.mean(p.num_vars for p in pts),
                "clauses": statistics.mean(p.num_clauses for p in pts),
            }
        return out

    def format_table(self, key: str) -> str:
        rows = [f"{key:>10} | devices | sat time (s) | unsat time (s)"]
        rows.append("-" * len(rows[0]))
        for value, stats in self.aggregate(key).items():
            rows.append(
                f"{value:>10} | {stats['devices']:7.0f} | "
                f"{stats['sat_time']:12.3f} | {stats['unsat_time']:14.3f}")
        return "\n".join(rows)


def _spec_for(prop: Property, k: int) -> ResiliencySpec:
    if prop is Property.OBSERVABILITY:
        return ResiliencySpec.observability(k=k)
    if prop is Property.SECURED_OBSERVABILITY:
        return ResiliencySpec.secured_observability(k=k)
    if prop is Property.COMMAND_DELIVERABILITY:
        return ResiliencySpec.command_deliverability(k=k)
    return ResiliencySpec.bad_data_detectability(r=1, k=k)


def measure_instance(bus_size: int, hierarchy: int, seed: int,
                     prop: Property = Property.OBSERVABILITY,
                     runs: int = 3,
                     measurement_fraction: float = 0.7,
                     secure_fraction: float = 0.8,
                     max_conflicts: Optional[int] = None) -> ScalingPoint:
    """Generate one synthetic SCADA instance and time sat/unsat checks.

    For secured-observability sweeps pass ``secure_fraction=1.0`` so the
    maximal resiliency is non-degenerate (a system with insecure links
    fails secured observability with zero failures, which collapses the
    unsat series).
    """
    config = GeneratorConfig(
        measurement_fraction=measurement_fraction,
        hierarchy_level=hierarchy,
        secure_fraction=secure_fraction,
        seed=seed,
    )
    synthetic = generate_scada(case_by_buses(bus_size, seed=seed), config)
    problem = ObservabilityProblem.from_table(synthetic.table)
    analyzer = ScadaAnalyzer(synthetic.network, problem)

    max_k = max_total_resiliency(analyzer, prop,
                                 max_conflicts=max_conflicts)
    point = ScalingPoint(
        bus_size=bus_size, hierarchy=hierarchy, seed=seed,
        num_devices=synthetic.num_devices, max_k=max_k,
    )
    unsat_k = max(max_k, 0)
    sat_k = max_k + 1
    for _ in range(runs):
        unsat_result = analyzer.verify(_spec_for(prop, unsat_k),
                                       minimize=False,
                                       max_conflicts=max_conflicts)
        sat_result = analyzer.verify(_spec_for(prop, sat_k),
                                     minimize=False,
                                     max_conflicts=max_conflicts)
        if max_k >= 0 and unsat_result.status is Status.RESILIENT:
            point.unsat_times.append(unsat_result.total_time)
        if sat_result.status is Status.THREAT_FOUND:
            point.sat_times.append(sat_result.total_time)
        point.num_vars = sat_result.num_vars
        point.num_clauses = sat_result.num_clauses
    return point


def sweep_bus_sizes(bus_sizes: Sequence[int],
                    prop: Property = Property.OBSERVABILITY,
                    seeds: Sequence[int] = (0, 1, 2),
                    hierarchy: int = 1,
                    runs: int = 3,
                    secure_fraction: float = 0.8,
                    max_conflicts: Optional[int] = None) -> ScalingSweep:
    """Fig. 5: verification time vs problem size."""
    sweep = ScalingSweep(prop=prop)
    for bus_size in bus_sizes:
        for seed in seeds:
            sweep.points.append(measure_instance(
                bus_size, hierarchy, seed, prop=prop, runs=runs,
                secure_fraction=secure_fraction,
                max_conflicts=max_conflicts))
    return sweep


def sweep_hierarchy(bus_size: int,
                    hierarchy_levels: Sequence[int],
                    prop: Property = Property.OBSERVABILITY,
                    seeds: Sequence[int] = (0, 1, 2),
                    runs: int = 3,
                    secure_fraction: float = 0.8,
                    max_conflicts: Optional[int] = None) -> ScalingSweep:
    """Fig. 6: verification time vs hierarchy level."""
    sweep = ScalingSweep(prop=prop)
    for level in hierarchy_levels:
        for seed in seeds:
            sweep.points.append(measure_instance(
                bus_size, level, seed, prop=prop, runs=runs,
                secure_fraction=secure_fraction,
                max_conflicts=max_conflicts))
    return sweep
