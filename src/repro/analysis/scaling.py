"""Scalability sweep drivers (Fig. 5 and Fig. 6).

The paper measures verification time against problem size (bus count)
and hierarchy level, separating ``sat`` (threat found) from ``unsat``
(resilient) runs: for a given instance the budget ``k*`` at which the
system is maximally resilient yields the slowest *unsat*, and ``k*+1``
yields a *sat* — timing both reproduces the paper's two curves on
principled points rather than arbitrary budgets.

Every instance is measured through the
:class:`~repro.engine.VerificationEngine` (pass ``backend=`` to compare
fresh / incremental / preprocessed), and whole sweeps fan out across a
process pool via :class:`~repro.engine.SweepExecutor` (``jobs=``) with
deterministic, submission-ordered results.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.problem import ObservabilityProblem
from ..core.results import Status
from ..core.specs import Property, ResiliencySpec
from ..engine import SweepExecutor, SweepTaskError, VerificationEngine
from ..grid.ieee_cases import case_by_buses
from ..obs.tracer import span as obs_span
from ..sat.limits import Limits, ResourceLimitReached
from ..scada.generator import GeneratorConfig, generate_scada

__all__ = ["ScalingPoint", "ScalingSweep", "measure_instance",
           "sweep_bus_sizes", "sweep_hierarchy"]


@dataclass
class ScalingPoint:
    """Timing of one synthetic instance.

    Encoding sizes are recorded separately for the sat (``k*+1``) and
    unsat (``k*``) runs — the two encodings differ by one cardinality
    bound, and conflating them made scaling tables misleading.
    ``sat_stats``/``unsat_stats`` carry the last run's per-query solver
    statistics (conflicts, decisions, propagations, restarts).
    """

    bus_size: int
    hierarchy: int
    seed: int
    num_devices: int
    max_k: int
    backend: str = "fresh"
    sat_times: List[float] = field(default_factory=list)
    unsat_times: List[float] = field(default_factory=list)
    sat_num_vars: int = 0
    sat_num_clauses: int = 0
    unsat_num_vars: int = 0
    unsat_num_clauses: int = 0
    sat_stats: Dict[str, float] = field(default_factory=dict)
    unsat_stats: Dict[str, float] = field(default_factory=dict)
    #: Timed runs whose solver budget expired (UNKNOWN verdicts); such
    #: runs contribute to neither time series.
    unknown_runs: int = 0
    #: False when the max-resiliency search itself hit a budget and
    #: ``max_k`` is only the proven lower bound of the bracket.
    max_k_exact: bool = True

    @property
    def sat_time(self) -> float:
        return statistics.mean(self.sat_times) if self.sat_times else 0.0

    @property
    def unsat_time(self) -> float:
        return statistics.mean(self.unsat_times) if self.unsat_times else 0.0

    @property
    def num_vars(self) -> int:
        """Encoding size of the sat run (historical accessor)."""
        return self.sat_num_vars

    @property
    def num_clauses(self) -> int:
        """Encoding size of the sat run (historical accessor)."""
        return self.sat_num_clauses


@dataclass
class ScalingSweep:
    """A collection of scaling points with aggregation helpers."""

    prop: Property
    points: List[ScalingPoint] = field(default_factory=list)
    #: Tasks lost to crashes/hangs/exhausted retries; the sweep's other
    #: points are still valid (see ``SweepExecutor.map(on_error=...)``).
    failures: List[SweepTaskError] = field(default_factory=list)

    def aggregate(self, key: str) -> Dict[int, Dict[str, float]]:
        """Mean sat/unsat time grouped by ``bus_size`` or ``hierarchy``."""
        groups: Dict[int, List[ScalingPoint]] = {}
        for point in self.points:
            groups.setdefault(getattr(point, key), []).append(point)
        out: Dict[int, Dict[str, float]] = {}
        for value, pts in sorted(groups.items()):
            out[value] = {
                "sat_time": statistics.mean(p.sat_time for p in pts),
                "unsat_time": statistics.mean(p.unsat_time for p in pts),
                "devices": statistics.mean(p.num_devices for p in pts),
                "vars": statistics.mean(p.sat_num_vars for p in pts),
                "clauses": statistics.mean(p.sat_num_clauses for p in pts),
                "unsat_vars": statistics.mean(
                    p.unsat_num_vars for p in pts),
                "unsat_clauses": statistics.mean(
                    p.unsat_num_clauses for p in pts),
            }
        return out

    def format_table(self, key: str) -> str:
        rows = [f"{key:>10} | devices | sat time (s) | unsat time (s)"]
        rows.append("-" * len(rows[0]))
        for value, stats in self.aggregate(key).items():
            rows.append(
                f"{value:>10} | {stats['devices']:7.0f} | "
                f"{stats['sat_time']:12.3f} | {stats['unsat_time']:14.3f}")
        return "\n".join(rows)


def measure_instance(bus_size: int, hierarchy: int, seed: int,
                     prop: Property = Property.OBSERVABILITY,
                     runs: int = 3,
                     measurement_fraction: float = 0.7,
                     secure_fraction: float = 0.8,
                     max_conflicts: Optional[int] = None,
                     backend: str = "fresh",
                     limits: Optional[Limits] = None) -> ScalingPoint:
    """Generate one synthetic SCADA instance and time sat/unsat checks.

    For secured-observability sweeps pass ``secure_fraction=1.0`` so the
    maximal resiliency is non-degenerate (a system with insecure links
    fails secured observability with zero failures, which collapses the
    unsat series).

    ``limits`` bounds every individual solve.  If the max-resiliency
    search cannot be pinned down exactly within the budget, the point
    is measured at the search's proven lower bound and flagged with
    ``max_k_exact=False``; timed runs whose budget expires count in
    ``unknown_runs`` instead of a time series.
    """
    with obs_span("analysis.instance", bus_size=bus_size,
                  hierarchy=hierarchy, seed=seed, backend=backend):
        return _measure_instance(
            bus_size, hierarchy, seed, prop, runs, measurement_fraction,
            secure_fraction, max_conflicts, backend, limits)


def _measure_instance(bus_size: int, hierarchy: int, seed: int,
                      prop: Property, runs: int,
                      measurement_fraction: float, secure_fraction: float,
                      max_conflicts: Optional[int], backend: str,
                      limits: Optional[Limits]) -> ScalingPoint:
    config = GeneratorConfig(
        measurement_fraction=measurement_fraction,
        hierarchy_level=hierarchy,
        secure_fraction=secure_fraction,
        seed=seed,
    )
    synthetic = generate_scada(case_by_buses(bus_size, seed=seed), config)
    problem = ObservabilityProblem.from_table(synthetic.table)
    engine = VerificationEngine(synthetic.network, problem,
                                backend=backend)

    max_k_exact = True
    try:
        max_k = engine.max_total_resiliency(
            prop, max_conflicts=max_conflicts, limits=limits)
    except ResourceLimitReached as exc:
        if exc.bounds is None:
            raise
        max_k = exc.bounds.lower
        max_k_exact = False
    point = ScalingPoint(
        bus_size=bus_size, hierarchy=hierarchy, seed=seed,
        num_devices=synthetic.num_devices, max_k=max_k, backend=backend,
        max_k_exact=max_k_exact,
    )
    unsat_spec = ResiliencySpec.for_property(prop, k=max(max_k, 0))
    sat_spec = ResiliencySpec.for_property(prop, k=max_k + 1)
    for _ in range(runs):
        unsat_result = engine.verify(unsat_spec, minimize=False,
                                     max_conflicts=max_conflicts,
                                     limits=limits)
        sat_result = engine.verify(sat_spec, minimize=False,
                                   max_conflicts=max_conflicts,
                                   limits=limits)
        if unsat_result.is_unknown or sat_result.is_unknown:
            point.unknown_runs += (int(unsat_result.is_unknown)
                                   + int(sat_result.is_unknown))
        if max_k >= 0 and unsat_result.status is Status.RESILIENT:
            point.unsat_times.append(unsat_result.total_time)
            point.unsat_num_vars = unsat_result.num_vars
            point.unsat_num_clauses = unsat_result.num_clauses
            point.unsat_stats = dict(unsat_result.stats)
        if sat_result.status is Status.THREAT_FOUND:
            point.sat_times.append(sat_result.total_time)
        point.sat_num_vars = sat_result.num_vars
        point.sat_num_clauses = sat_result.num_clauses
        point.sat_stats = dict(sat_result.stats)
    return point


@dataclass(frozen=True)
class _MeasureTask:
    """Picklable description of one sweep instance."""

    bus_size: int
    hierarchy: int
    seed: int
    prop: Property
    runs: int
    secure_fraction: float
    max_conflicts: Optional[int]
    backend: str
    limits: Optional[Limits] = None


def _measure_task(task: _MeasureTask) -> ScalingPoint:
    return measure_instance(
        task.bus_size, task.hierarchy, task.seed, prop=task.prop,
        runs=task.runs, secure_fraction=task.secure_fraction,
        max_conflicts=task.max_conflicts, backend=task.backend,
        limits=task.limits)


def _run_sweep(tasks: List[_MeasureTask], prop: Property, jobs: int,
               task_timeout: Optional[float],
               retries: int) -> ScalingSweep:
    """Fan out measurement tasks, keeping survivors of any failures."""
    executor = SweepExecutor(jobs)
    outcomes = executor.map(_measure_task, tasks, timeout=task_timeout,
                            retries=retries, on_error="return")
    points = [p for p in outcomes if isinstance(p, ScalingPoint)]
    return ScalingSweep(prop=prop, points=points,
                        failures=list(executor.last_failures))


def sweep_bus_sizes(bus_sizes: Sequence[int],
                    prop: Property = Property.OBSERVABILITY,
                    seeds: Sequence[int] = (0, 1, 2),
                    hierarchy: int = 1,
                    runs: int = 3,
                    secure_fraction: float = 0.8,
                    max_conflicts: Optional[int] = None,
                    backend: str = "fresh",
                    jobs: int = 1,
                    limits: Optional[Limits] = None,
                    task_timeout: Optional[float] = None,
                    retries: int = 0) -> ScalingSweep:
    """Fig. 5: verification time vs problem size.

    ``limits`` bounds each solve inside an instance; ``task_timeout``
    bounds each whole instance's wall clock (pooled runs) and
    ``retries`` re-runs a crashed/hung instance in a fresh worker.  A
    lost instance lands in the sweep's ``failures`` instead of taking
    the other points with it.
    """
    tasks = [
        _MeasureTask(bus_size, hierarchy, seed, prop, runs,
                     secure_fraction, max_conflicts, backend, limits)
        for bus_size in bus_sizes
        for seed in seeds
    ]
    return _run_sweep(tasks, prop, jobs, task_timeout, retries)


def sweep_hierarchy(bus_size: int,
                    hierarchy_levels: Sequence[int],
                    prop: Property = Property.OBSERVABILITY,
                    seeds: Sequence[int] = (0, 1, 2),
                    runs: int = 3,
                    secure_fraction: float = 0.8,
                    max_conflicts: Optional[int] = None,
                    backend: str = "fresh",
                    jobs: int = 1,
                    limits: Optional[Limits] = None,
                    task_timeout: Optional[float] = None,
                    retries: int = 0) -> ScalingSweep:
    """Fig. 6: verification time vs hierarchy level.

    Fault-tolerance parameters as in :func:`sweep_bus_sizes`.
    """
    tasks = [
        _MeasureTask(bus_size, level, seed, prop, runs,
                     secure_fraction, max_conflicts, backend, limits)
        for level in hierarchy_levels
        for seed in seeds
    ]
    return _run_sweep(tasks, prop, jobs, task_timeout, retries)
