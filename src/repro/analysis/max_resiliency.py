"""Maximal-resiliency search (Fig. 7(a)).

The paper reports the *maximum possible resiliency* of a SCADA system:
the largest failure budget under which the property still holds.
Resiliency is monotone — enlarging the budget can only admit more
threat vectors — so binary search over the budget is sound.
"""

from __future__ import annotations

from typing import Optional

from ..core.analyzer import ScadaAnalyzer
from ..core.results import Status
from ..core.specs import Property, ResiliencySpec

__all__ = [
    "max_total_resiliency", "max_ied_resiliency", "max_rtu_resiliency",
]


def _holds(analyzer: ScadaAnalyzer, spec: ResiliencySpec,
           max_conflicts: Optional[int]) -> bool:
    result = analyzer.verify(spec, minimize=False,
                             max_conflicts=max_conflicts)
    if result.status is Status.UNKNOWN:
        raise RuntimeError("solver budget exhausted during "
                           "max-resiliency search")
    return result.is_resilient


def _make_spec(prop: Property, r: int, **budget) -> ResiliencySpec:
    if prop is Property.OBSERVABILITY:
        return ResiliencySpec.observability(**budget)
    if prop is Property.SECURED_OBSERVABILITY:
        return ResiliencySpec.secured_observability(**budget)
    if prop is Property.COMMAND_DELIVERABILITY:
        return ResiliencySpec.command_deliverability(**budget)
    return ResiliencySpec.bad_data_detectability(r=r, **budget)


def _binary_search_max(check, upper: int) -> int:
    """Largest k in [-1, upper] with check(k) true; check is monotone.

    Uses galloping (1, 2, 4, ...) to find a violated budget first —
    real maximal resiliencies are small, and checks get much more
    expensive as the cardinality bound grows — then binary search
    inside the bracket.  Returns -1 when even k = 0 fails.
    """
    if not check(0):
        return -1
    lo = 0
    step = 1
    hi = None
    while hi is None:
        probe = lo + step
        if probe >= upper:
            probe = upper
        if check(probe):
            lo = probe
            if probe == upper:
                return upper
            step *= 2
        else:
            hi = probe - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if check(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def max_total_resiliency(analyzer: ScadaAnalyzer,
                         prop: Property = Property.OBSERVABILITY,
                         r: int = 1,
                         max_conflicts: Optional[int] = None) -> int:
    """Largest total k such that the k-resilient property holds."""
    upper = len(analyzer.network.field_device_ids)

    def check(k: int) -> bool:
        return _holds(analyzer, _make_spec(prop, r, k=k), max_conflicts)

    return _binary_search_max(check, upper)


def max_ied_resiliency(analyzer: ScadaAnalyzer,
                       prop: Property = Property.OBSERVABILITY,
                       k2: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None) -> int:
    """Largest k1 with the (k1, k2)-resilient property holding."""
    upper = len(analyzer.network.ied_ids)

    def check(k1: int) -> bool:
        return _holds(analyzer, _make_spec(prop, r, k1=k1, k2=k2),
                      max_conflicts)

    return _binary_search_max(check, upper)


def max_rtu_resiliency(analyzer: ScadaAnalyzer,
                       prop: Property = Property.OBSERVABILITY,
                       k1: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None) -> int:
    """Largest k2 with the (k1, k2)-resilient property holding."""
    upper = len(analyzer.network.rtu_ids)

    def check(k2: int) -> bool:
        return _holds(analyzer, _make_spec(prop, r, k1=k1, k2=k2),
                      max_conflicts)

    return _binary_search_max(check, upper)
