"""Maximal-resiliency search (Fig. 7(a)).

The paper reports the *maximum possible resiliency* of a SCADA system:
the largest failure budget under which the property still holds.
Resiliency is monotone — enlarging the budget can only admit more
threat vectors — so galloping + binary search over the budget is sound
(the shared :func:`~repro.core.search.galloping_max`).

These functions accept either a
:class:`~repro.core.analyzer.ScadaAnalyzer` (the historical API) or a
:class:`~repro.engine.VerificationEngine`; either way every query runs
through the engine.  A search is exactly the workload the
``assumption`` backend is built for — dozens of queries differing only
in the budget bound, answered by one solver whose learned clauses
persist — so ``backend="assumption"`` is the default here; pass
``backend=None`` to keep the caller's active backend.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.search import SearchBounds
from ..core.specs import Property
from ..engine import VerificationEngine
from ..sat.limits import Limits

__all__ = [
    "max_total_resiliency", "max_ied_resiliency", "max_rtu_resiliency",
    "max_total_resiliency_bounds",
]

Verifier = Union[ScadaAnalyzer, VerificationEngine]


def _engine(analyzer: Verifier, backend: Optional[str]) -> VerificationEngine:
    engine = VerificationEngine.wrap(analyzer)
    if backend is not None:
        engine = engine.with_backend(backend)
    return engine


def max_total_resiliency(analyzer: Verifier,
                         prop: Property = Property.OBSERVABILITY,
                         r: int = 1,
                         max_conflicts: Optional[int] = None,
                         backend: Optional[str] = "assumption",
                         limits: Optional[Limits] = None,
                         screen: bool = True) -> int:
    """Largest total k such that the k-resilient property holds.

    With *limits*, an UNKNOWN probe is neither bound: the search raises
    :exc:`~repro.sat.ResourceLimitReached` carrying the sound bracket
    (use :func:`max_total_resiliency_bounds` to get the bracket without
    the exception).
    """
    return _engine(analyzer, backend).max_total_resiliency(
        prop=prop, r=r, max_conflicts=max_conflicts, limits=limits,
        screen=screen)


def max_total_resiliency_bounds(
        analyzer: Verifier,
        prop: Property = Property.OBSERVABILITY,
        r: int = 1,
        max_conflicts: Optional[int] = None,
        backend: Optional[str] = "assumption",
        limits: Optional[Limits] = None,
        screen: bool = True) -> SearchBounds:
    """Sound ``[lower, upper]`` bracket on the maximal total budget.

    With *screen* (the default) the structural pass seeds the bracket;
    ``screen=False`` forces a solver-only search.
    """
    return _engine(analyzer, backend).max_total_resiliency_bounds(
        prop=prop, r=r, max_conflicts=max_conflicts, limits=limits,
        screen=screen)


def max_ied_resiliency(analyzer: Verifier,
                       prop: Property = Property.OBSERVABILITY,
                       k2: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None,
                       backend: Optional[str] = "assumption",
                       limits: Optional[Limits] = None,
                       screen: bool = True) -> int:
    """Largest k1 with the (k1, k2)-resilient property holding."""
    return _engine(analyzer, backend).max_ied_resiliency(
        prop=prop, k2=k2, r=r, max_conflicts=max_conflicts, limits=limits,
        screen=screen)


def max_rtu_resiliency(analyzer: Verifier,
                       prop: Property = Property.OBSERVABILITY,
                       k1: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None,
                       backend: Optional[str] = "assumption",
                       limits: Optional[Limits] = None,
                       screen: bool = True) -> int:
    """Largest k2 with the (k1, k2)-resilient property holding."""
    return _engine(analyzer, backend).max_rtu_resiliency(
        prop=prop, k1=k1, r=r, max_conflicts=max_conflicts, limits=limits,
        screen=screen)
