"""Maximal-resiliency search (Fig. 7(a)).

The paper reports the *maximum possible resiliency* of a SCADA system:
the largest failure budget under which the property still holds.
Resiliency is monotone — enlarging the budget can only admit more
threat vectors — so galloping + binary search over the budget is sound
(the shared :func:`~repro.core.search.galloping_max`).

These functions accept either a
:class:`~repro.core.analyzer.ScadaAnalyzer` (the historical API) or a
:class:`~repro.engine.VerificationEngine`; either way every query runs
through the engine, so ``backend="incremental"`` reuses one encoding
across the whole search.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.specs import Property
from ..engine import VerificationEngine

__all__ = [
    "max_total_resiliency", "max_ied_resiliency", "max_rtu_resiliency",
]

Verifier = Union[ScadaAnalyzer, VerificationEngine]


def max_total_resiliency(analyzer: Verifier,
                         prop: Property = Property.OBSERVABILITY,
                         r: int = 1,
                         max_conflicts: Optional[int] = None) -> int:
    """Largest total k such that the k-resilient property holds."""
    return VerificationEngine.wrap(analyzer).max_total_resiliency(
        prop=prop, r=r, max_conflicts=max_conflicts)


def max_ied_resiliency(analyzer: Verifier,
                       prop: Property = Property.OBSERVABILITY,
                       k2: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None) -> int:
    """Largest k1 with the (k1, k2)-resilient property holding."""
    return VerificationEngine.wrap(analyzer).max_ied_resiliency(
        prop=prop, k2=k2, r=r, max_conflicts=max_conflicts)


def max_rtu_resiliency(analyzer: Verifier,
                       prop: Property = Property.OBSERVABILITY,
                       k1: int = 0, r: int = 1,
                       max_conflicts: Optional[int] = None) -> int:
    """Largest k2 with the (k1, k2)-resilient property holding."""
    return VerificationEngine.wrap(analyzer).max_rtu_resiliency(
        prop=prop, k1=k1, r=r, max_conflicts=max_conflicts)
