"""Monte-Carlo availability analysis.

Formal verification answers "can ≤ k failures break the property?";
operators also ask "how *likely* is a property outage given per-device
failure probabilities?".  This module estimates that probability by
sampling failure scenarios against the reference evaluator, and — when
a resiliency certificate is available — uses it as a variance-free
shortcut: any sampled scenario with at most ``k*`` failures is known
good without evaluation.

The estimator doubles as a probabilistic cross-check of the analyzer:
with a valid ``k*`` certificate, no sampled scenario of ≤ ``k*``
failures may violate the property (asserted when ``certificate`` is
passed), which the tests exercise on thousands of samples.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.specs import Property
from ..engine import VerificationEngine

__all__ = ["AvailabilityEstimate", "estimate_availability"]

Verifier = Union[ScadaAnalyzer, VerificationEngine]


@dataclass
class AvailabilityEstimate:
    """Result of a Monte-Carlo availability run.

    ``samples`` is the number of scenarios actually evaluated, which is
    fewer than requested when the run's ``max_time`` expired
    (``time_limited`` records that).  The estimate stays valid — each
    sample is independent — just wider.
    """

    prop: Property
    samples: int
    violations: int
    skipped_by_certificate: int
    certificate_k: Optional[int]
    requested_samples: int = 0
    time_limited: bool = False

    @property
    def availability(self) -> float:
        """Estimated P(property holds)."""
        if self.samples == 0:
            return float("nan")
        return 1.0 - self.violations / self.samples

    @property
    def confidence_95(self) -> float:
        """±half-width of the 95% normal-approximation interval."""
        if self.samples == 0:
            return float("nan")
        p = self.violations / self.samples
        return 1.96 * math.sqrt(max(p * (1 - p), 1e-12) / self.samples)

    def summary(self) -> str:
        cut = (f", stopped at the wall-clock limit "
               f"({self.samples}/{self.requested_samples} sampled)"
               if self.time_limited else "")
        return (f"{self.prop.value}: availability "
                f"{self.availability:.4f} ± {self.confidence_95:.4f} "
                f"({self.violations}/{self.samples} violating scenarios, "
                f"{self.skipped_by_certificate} certified-safe skips{cut})")


def estimate_availability(
    analyzer: Verifier,
    failure_probability: float = 0.02,
    per_device: Optional[Mapping[int, float]] = None,
    prop: Property = Property.OBSERVABILITY,
    samples: int = 2000,
    seed: int = 0,
    certificate: Optional[int] = None,
    max_time: Optional[float] = None,
) -> AvailabilityEstimate:
    """Estimate P(property holds) under independent device failures.

    ``per_device`` overrides the uniform ``failure_probability`` for
    specific devices.  ``certificate`` is a *verified* maximal
    resiliency ``k*`` for this property: scenarios with ≤ k* failures
    are counted safe without evaluation, and a violating one raises
    (the certificate or the evaluator would be wrong).  Accepts a
    :class:`ScadaAnalyzer` or a :class:`VerificationEngine` — only the
    network and the shared reference evaluator are used.

    ``max_time`` bounds the run's wall-clock seconds: sampling stops at
    the deadline and the estimate reports how many scenarios it
    actually drew (the result is unbiased at any sample count, so
    stopping early widens the interval but never skews it).
    """
    if max_time is not None and max_time <= 0:
        raise ValueError("max_time must be positive")
    if not 0 <= failure_probability <= 1:
        raise ValueError("failure_probability must be in [0, 1]")
    probabilities: Dict[int, float] = {
        device: failure_probability
        for device in analyzer.network.field_device_ids
    }
    if per_device:
        for device, p in per_device.items():
            if device not in probabilities:
                raise ValueError(f"unknown field device {device}")
            if not 0 <= p <= 1:
                raise ValueError(f"probability for {device} out of range")
            probabilities[device] = p

    secured = prop is Property.SECURED_OBSERVABILITY
    if prop is Property.BAD_DATA_DETECTABILITY:
        raise ValueError("use observability properties for availability")

    rng = random.Random(seed)
    deadline = (time.monotonic() + max_time
                if max_time is not None else None)
    violations = 0
    skipped = 0
    drawn = 0
    for _ in range(samples):
        if deadline is not None and time.monotonic() >= deadline:
            break
        drawn += 1
        failed = {device for device, p in probabilities.items()
                  if rng.random() < p}
        if certificate is not None and len(failed) <= certificate:
            skipped += 1
            if not analyzer.reference.observable(failed, secured=secured):
                raise AssertionError(
                    f"certificate k*={certificate} contradicted by "
                    f"failure set {sorted(failed)}")
            continue
        if not analyzer.reference.observable(failed, secured=secured):
            violations += 1
    return AvailabilityEstimate(
        prop=prop,
        samples=drawn,
        violations=violations,
        skipped_by_certificate=skipped,
        certificate_k=certificate,
        requested_samples=samples,
        time_limited=drawn < samples,
    )
