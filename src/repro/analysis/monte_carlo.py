"""Monte-Carlo availability analysis.

Formal verification answers "can ≤ k failures break the property?";
operators also ask "how *likely* is a property outage given per-device
failure probabilities?".  This module estimates that probability by
sampling failure scenarios against the reference evaluator, and — when
a resiliency certificate is available — uses it as a variance-free
shortcut: any sampled scenario with at most ``k*`` failures is known
good without evaluation.

The estimator doubles as a probabilistic cross-check of the analyzer:
with a valid ``k*`` certificate, no sampled scenario of ≤ ``k*``
failures may violate the property (asserted when ``cross_check=True``
is passed alongside the certificate — by default certified scenarios
are skipped without evaluation, preserving the shortcut's savings),
which the tests exercise on thousands of samples.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from ..core.analyzer import ScadaAnalyzer
from ..core.specs import Property
from ..engine import VerificationEngine
from ..obs.tracer import span as obs_span

__all__ = ["AvailabilityEstimate", "estimate_availability"]

Verifier = Union[ScadaAnalyzer, VerificationEngine]


@dataclass
class AvailabilityEstimate:
    """Result of a Monte-Carlo availability run.

    ``samples`` is the number of scenarios actually evaluated, which is
    fewer than requested when the run's ``max_time`` expired
    (``time_limited`` records that).  The estimate stays valid — each
    sample is independent — just wider.
    """

    prop: Property
    samples: int
    violations: int
    skipped_by_certificate: int
    certificate_k: Optional[int]
    requested_samples: int = 0
    time_limited: bool = False

    @property
    def availability(self) -> float:
        """Estimated P(property holds)."""
        if self.samples == 0:
            return float("nan")
        return 1.0 - self.violations / self.samples

    @property
    def confidence_95(self) -> float:
        """±half-width of the 95% Wilson score interval.

        Wilson rather than the Wald normal approximation: Wald
        degenerates to ±0 at ``violations == 0`` (the common case for a
        resilient network, where it wrongly claims certainty) and
        overstates confidence badly at small sample counts.  Wilson
        stays calibrated at the boundaries — at p̂ = 0 the half-width
        is ``z²/(2(n+z²))``, not zero.
        """
        if self.samples == 0:
            return float("nan")
        z = 1.96
        n = self.samples
        p = self.violations / n
        denom = 1.0 + z * z / n
        return (z / denom) * math.sqrt(
            p * (1.0 - p) / n + z * z / (4.0 * n * n))

    def summary(self) -> str:
        cut = (f", stopped at the wall-clock limit "
               f"({self.samples}/{self.requested_samples} sampled)"
               if self.time_limited else "")
        return (f"{self.prop.value}: availability "
                f"{self.availability:.4f} ± {self.confidence_95:.4f} "
                f"({self.violations}/{self.samples} violating scenarios, "
                f"{self.skipped_by_certificate} certified-safe skips{cut})")


def estimate_availability(
    analyzer: Verifier,
    failure_probability: float = 0.02,
    per_device: Optional[Mapping[int, float]] = None,
    prop: Property = Property.OBSERVABILITY,
    samples: int = 2000,
    seed: int = 0,
    certificate: Optional[int] = None,
    max_time: Optional[float] = None,
    cross_check: bool = False,
) -> AvailabilityEstimate:
    """Estimate P(property holds) under independent device failures.

    ``per_device`` overrides the uniform ``failure_probability`` for
    specific devices.  ``certificate`` is a *verified* maximal
    resiliency ``k*`` for this property: scenarios with ≤ k* failures
    are counted safe **without evaluation** — that skip is the whole
    point of the shortcut.  With ``cross_check=True`` each certified
    scenario is evaluated anyway and a violating one raises (the
    certificate or the evaluator would be wrong); the tests use this to
    probabilistically cross-check the analyzer on thousands of samples.
    Accepts a :class:`ScadaAnalyzer` or a :class:`VerificationEngine` —
    only the network and the shared reference evaluator are used.

    ``max_time`` bounds the run's wall-clock seconds: sampling stops at
    the deadline and the estimate reports how many scenarios it
    actually drew (the result is unbiased at any sample count, so
    stopping early widens the interval but never skews it).
    """
    if max_time is not None and max_time <= 0:
        raise ValueError("max_time must be positive")
    if not 0 <= failure_probability <= 1:
        raise ValueError("failure_probability must be in [0, 1]")
    probabilities: Dict[int, float] = {
        device: failure_probability
        for device in analyzer.network.field_device_ids
    }
    if per_device:
        for device, p in per_device.items():
            if device not in probabilities:
                raise ValueError(f"unknown field device {device}")
            if not 0 <= p <= 1:
                raise ValueError(f"probability for {device} out of range")
            probabilities[device] = p

    secured = prop is Property.SECURED_OBSERVABILITY
    if prop is Property.BAD_DATA_DETECTABILITY:
        raise ValueError("use observability properties for availability")

    rng = random.Random(seed)
    deadline = (time.monotonic() + max_time
                if max_time is not None else None)
    violations = 0
    skipped = 0
    drawn = 0
    with obs_span("analysis.monte_carlo", prop=prop.value,
                  requested=samples) as sp:
        for _ in range(samples):
            if deadline is not None and time.monotonic() >= deadline:
                break
            drawn += 1
            failed = {device for device, p in probabilities.items()
                      if rng.random() < p}
            if certificate is not None and len(failed) <= certificate:
                skipped += 1
                if cross_check and not analyzer.reference.observable(
                        failed, secured=secured):
                    raise AssertionError(
                        f"certificate k*={certificate} contradicted by "
                        f"failure set {sorted(failed)}")
                continue
            if not analyzer.reference.observable(failed, secured=secured):
                violations += 1
        sp.attrs["samples"] = drawn
        sp.attrs["violations"] = violations
        sp.attrs["skipped"] = skipped
    return AvailabilityEstimate(
        prop=prop,
        samples=drawn,
        violations=violations,
        skipped_by_certificate=skipped,
        certificate_k=certificate,
        requested_samples=samples,
        time_limited=drawn < samples,
    )
