"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``verify <config>``
    Verify a configuration file's resiliency requirement (or one given
    on the command line); print the verdict and any threat vector.

``lint <config>``
    Statically analyze a configuration (or a DIMACS file) without
    invoking the solver; exit 0 when clean, 1 on error-level findings,
    2 when the input cannot be parsed.

``enumerate <config>``
    Enumerate all minimal threat vectors of a specification.

``case5bus``
    Re-run the paper's §IV case study and print both scenarios.

``generate``
    Generate a synthetic SCADA system (§V-A policy) and write it as a
    configuration file.

``harden <config>``
    Search for a minimal configuration repair restoring a failed
    specification.

``corpus generate|run|status <dir>``
    Grow a corpus of seeded synthetic grids (hundreds to thousands of
    buses), sweep grids × properties × budgets into a versioned
    on-disk result store, and resume interrupted sweeps without
    re-solving stored cells.

``audit <config>``
    Cross-validate the polynomial-time structural analysis (security
    indices, min-cut silencing costs) against the SAT engine on the
    same configuration; exit 0 when the two agree everywhere.

``stats <trace>...``
    Aggregate JSONL telemetry traces (written via ``--trace FILE`` on
    the solver-backed commands) into a text or ``--json`` summary:
    time per phase, cache hit rates, solver work per query, and sweep
    worker utilization.

Exit codes
----------

Solver-backed commands follow one convention: **0** — the requirement
holds (or the search/report completed); **1** — a threat vector exists
(or no repair was found); **2** — the input fails lint or cannot be
parsed; **3** — a resource budget (``--timeout`` / ``--max-conflicts``)
expired before a verdict: the answer is UNKNOWN, which certifies
nothing, and is deliberately distinct from both 0 and 1 so scripts
cannot mistake a timeout for a verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from .analysis import threat_space
from .core import (
    ConfigurationLintError,
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
)
from .core.hardening import harden
from .engine import BACKEND_NAMES, SweepExecutor, VerificationEngine
from .grid.ieee_cases import case_by_buses
from .obs.tracer import Tracer, set_tracer
from .sat.limits import Limits, ResourceLimitReached
from .scada import (
    CaseConfig,
    GeneratorConfig,
    dump_config,
    generate_scada,
    load_config,
)
from .scada.config_io import ConfigError

__all__ = ["main"]

#: Exit code for UNKNOWN verdicts (resource budget expired) — distinct
#: from 0 (holds), 1 (threat found), and 2 (lint/parse failure).
EXIT_UNKNOWN = 3


def _spec_from_args(args, fallback: Optional[ResiliencySpec]
                    ) -> ResiliencySpec:
    if args.k is None and args.k1 is None and args.k2 is None:
        if fallback is not None:
            return fallback
        raise SystemExit("no requirement in the file; pass --k or "
                         "--k1/--k2")
    prop = Property(args.property)
    if args.k is not None:
        budget = {"k": args.k}
    else:
        budget = {"k1": args.k1 or 0, "k2": args.k2 or 0}
    budget["link_k"] = getattr(args, "link_k", None)
    if prop is Property.OBSERVABILITY:
        return ResiliencySpec.observability(**budget)
    if prop is Property.SECURED_OBSERVABILITY:
        return ResiliencySpec.secured_observability(**budget)
    if prop is Property.COMMAND_DELIVERABILITY:
        return ResiliencySpec.command_deliverability(**budget)
    return ResiliencySpec.bad_data_detectability(r=args.r, **budget)


def _add_limit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per solver call; an "
                             "expired budget yields UNKNOWN (exit "
                             f"{EXIT_UNKNOWN}), never a spurious verdict")
    parser.add_argument("--max-conflicts", type=int, default=None,
                        dest="max_conflicts", metavar="N",
                        help="conflict budget per solver call (a "
                             "deterministic alternative to --timeout)")


def _limits_from_args(args) -> Optional[Limits]:
    """The ``Limits`` requested on the command line, or ``None``."""
    timeout = getattr(args, "timeout", None)
    max_conflicts = getattr(args, "max_conflicts", None)
    if timeout is None and max_conflicts is None:
        return None
    return Limits(max_time=timeout, max_conflicts=max_conflicts)


def _add_engine_args(parser: argparse.ArgumentParser,
                     jobs: bool = True) -> None:
    parser.add_argument("--backend", default="fresh",
                        choices=BACKEND_NAMES,
                        help="verification backend (fresh solver per "
                             "query, incremental push/pop, "
                             "assumption-selected budgets on one "
                             "persistent solver, preprocessed CNF, or "
                             "a parallel portfolio racing diversified "
                             "solvers and cube splits per hard query)")
    parser.add_argument("--inprocess", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="inter-restart learned-clause inprocessing "
                             "(subsumption, self-subsuming resolution, "
                             "bounded vivification); --no-inprocess "
                             "disables it for A/B timing")
    _add_limit_args(parser)
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL telemetry trace (spans, "
                             "solver events, metrics); aggregate with "
                             "'repro stats FILE'")
    if jobs:
        parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for independent "
                                 "searches, or the portfolio backend's "
                                 "pool width (0 = all cores)")


def _solver_opts_from_args(args) -> Dict[str, object]:
    """Solver options requested on the command line."""
    opts: Dict[str, object] = {}
    if not getattr(args, "inprocess", True):
        opts["inprocess"] = False
    return opts


def _engine_jobs(args) -> int:
    """The engine's pool width: ``--jobs`` when given, else auto-size
    the portfolio (its pool is useless at the default width of 1)."""
    jobs = getattr(args, "jobs", None)
    if jobs in (None, 1) and getattr(args, "backend", "") == "portfolio":
        return 0
    return jobs if jobs is not None else 1


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--property", default="observability",
                        choices=[p.value for p in Property],
                        help="resiliency property to verify")
    parser.add_argument("--k", type=int, default=None,
                        help="total failure budget")
    parser.add_argument("--k1", type=int, default=None,
                        help="IED failure budget")
    parser.add_argument("--k2", type=int, default=None,
                        help="RTU failure budget")
    parser.add_argument("-r", type=int, default=1,
                        help="corrupted-measurement budget (bad data)")
    parser.add_argument("--link-k", type=int, default=None, dest="link_k",
                        help="additionally admit this many link failures")


def _cmd_verify(args) -> int:
    # Lenient load: structural defects reach the lint gate below, which
    # reports all of them at once instead of dying on the first.
    config = load_config(args.config, strict=False)
    spec = _spec_from_args(args, config.spec)
    backend = "preprocessed" if args.preprocess else args.backend
    try:
        engine = VerificationEngine(config.network, config.problem,
                                    backend=backend,
                                    lint=not args.no_lint,
                                    jobs=_engine_jobs(args),
                                    solver_opts=_solver_opts_from_args(args))
    except ConfigurationLintError as exc:
        print(exc.report.to_text(), file=sys.stderr)
        print("verification refused: the configuration fails lint "
              "(use --no-lint to override)", file=sys.stderr)
        return 2
    if args.dump_smt2:
        with open(args.dump_smt2, "w", encoding="utf-8") as handle:
            handle.write(engine.export_smtlib(spec))
        print(f"wrote SMT-LIB model to {args.dump_smt2}")
    result = engine.verify(spec, certify=args.certify,
                           limits=_limits_from_args(args))
    if args.certify and result.is_resilient:
        checked = result.details.get("proof_checked")
        print(f"  unsat proof independently checked: {checked}")
    print(result.summary())
    if result.status is Status.THREAT_FOUND and result.threat:
        threat = result.threat
        print("  failed devices :", threat.describe(config.network.label))
        if threat.undelivered_measurements:
            lost = sorted(threat.undelivered_measurements)
            print("  lost measurements:", " ".join(map(str, lost)))
        if threat.uncovered_states:
            states = sorted(threat.uncovered_states)
            print("  uncovered states :", " ".join(map(str, states)))
    print(f"  model: {result.num_vars} vars, {result.num_clauses} clauses "
          f"({result.backend} backend)")
    if result.is_unknown:
        return EXIT_UNKNOWN
    return 0 if result.is_resilient else 1


def _cmd_lint(args) -> int:
    from .lint import Diagnostic, LintReport, Severity, analyze_cnf, lint_case
    from .scada.config_io import ConfigError

    def emit(report: LintReport, code: int) -> int:
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.to_text())
        return code

    if args.config.endswith((".cnf", ".dimacs")):
        from .sat.dimacs import DimacsError, parse_dimacs

        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                cnf = parse_dimacs(handle.read())
        except (OSError, DimacsError, ValueError) as exc:
            report = LintReport(subject=args.config)
            report.append(Diagnostic("CONFIG001", Severity.ERROR, str(exc)))
            return emit(report, 2)
        report = analyze_cnf(cnf, subject=args.config)
        return emit(report, report.exit_code())

    builtins = {"fig3", "fig4", "case5bus"}
    if args.config in builtins:
        from .cases import case_problem, fig3_network, fig4_network

        network = (fig4_network() if args.config == "fig4"
                   else fig3_network())
        problem = case_problem()
        file_spec = None
    else:
        try:
            config = load_config(args.config, strict=False)
        except (OSError, ConfigError, ValueError) as exc:
            report = LintReport(subject=args.config)
            report.append(Diagnostic("CONFIG001", Severity.ERROR, str(exc)))
            return emit(report, 2)
        network, problem, file_spec = (config.network, config.problem,
                                       config.spec)

    if args.k is not None or args.k1 is not None or args.k2 is not None:
        spec = _spec_from_args(args, file_spec)
    else:
        spec = file_spec

    report = lint_case(network, problem, spec)
    if args.encoding and not report.has_errors:
        reference = spec or ResiliencySpec.observability(k=1)
        analyzer = ScadaAnalyzer(network, problem, lint=False)
        cnf, frozen = analyzer.export_cnf(reference)
        report.extend(analyze_cnf(cnf, frozen=frozen).diagnostics)
    return emit(report, report.exit_code())


def _cmd_enumerate(args) -> int:
    config = load_config(args.config)
    spec = _spec_from_args(args, config.spec)
    engine = VerificationEngine(config.network, config.problem,
                                backend=args.backend,
                                jobs=_engine_jobs(args),
                                solver_opts=_solver_opts_from_args(args))
    space = threat_space(engine, spec, limit=args.limit,
                         limits=_limits_from_args(args),
                         screen=not args.no_screen)
    if space.screened:
        print(f"{spec.describe()}: 0 minimal threat vector(s) "
              f"(structurally screened: the certified min-cut lower "
              f"bound exceeds the failure budget)")
        return 0
    marker = "+" if space.incomplete else ""
    print(f"{spec.describe()}: {space.size}{marker} minimal threat "
          f"vector(s)")
    for vector in space.vectors:
        print("  -", vector.describe(config.network.label))
    if space.incomplete:
        reason = space.limit_reason or "resource"
        print(f"  (incomplete: the {reason} budget expired "
              f"mid-enumeration)")
        return EXIT_UNKNOWN
    return 0 if space.size == 0 else 1


def _cmd_case5bus(args) -> int:
    from .cases import case_analyzer

    for topology in ("fig3", "fig4"):
        analyzer = case_analyzer(topology)
        print(f"== topology {topology} ==")
        for spec in (
            ResiliencySpec.observability(k1=1, k2=1),
            ResiliencySpec.observability(k1=2, k2=1),
            ResiliencySpec.secured_observability(k1=1, k2=0),
            ResiliencySpec.secured_observability(k1=0, k2=1),
            ResiliencySpec.secured_observability(k1=1, k2=1),
        ):
            result = analyzer.verify(spec)
            print(" ", result.summary())
    return 0


def _cmd_generate(args) -> int:
    bus_system = case_by_buses(args.buses, seed=args.seed)
    config = GeneratorConfig(
        measurement_fraction=args.fraction,
        hierarchy_level=args.hierarchy,
        secure_fraction=args.secure_fraction,
        seed=args.seed,
    )
    synthetic = generate_scada(bus_system, config)
    problem = ObservabilityProblem.from_table(synthetic.table)
    case = CaseConfig(network=synthetic.network, problem=problem, spec=None)
    text = dump_config(case, rows=synthetic.table.rows)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}: {len(synthetic.network.ied_ids)} IEDs, "
              f"{len(synthetic.network.rtu_ids)} RTUs, "
              f"{synthetic.plan.num_measurements} measurements")
    else:
        sys.stdout.write(text)
    return 0


def _max_search_task(
    task: Tuple[str, str, str, str, Optional[Limits], bool, Dict],
):
    """Worker: one maximal-resiliency search on a config loaded by path."""
    config_path, prop_value, kind, backend, limits, screen, opts = task
    config = load_config(config_path)
    # The parent process already linted the configuration.
    engine = VerificationEngine(config.network, config.problem,
                                backend=backend, lint=False,
                                solver_opts=opts)
    prop = Property(prop_value)
    if kind == "total":
        return engine.max_total_resiliency_bounds(prop, limits=limits,
                                                  screen=screen)
    if kind == "ied":
        return engine.max_ied_resiliency_bounds(prop, limits=limits,
                                                screen=screen)
    return engine.max_rtu_resiliency_bounds(prop, limits=limits,
                                            screen=screen)


def _cmd_max_resiliency(args) -> int:
    config = load_config(args.config)
    prop = Property(args.property)
    limits = _limits_from_args(args)
    screen = not args.no_screen
    if args.jobs not in (None, 1) and args.backend != "portfolio":
        tasks = [(args.config, prop.value, kind, args.backend, limits,
                  screen, _solver_opts_from_args(args))
                 for kind in ("total", "ied", "rtu")]
        total, ied, rtu = SweepExecutor(args.jobs).map(
            _max_search_task, tasks)
    else:
        # The portfolio backend fans out per query itself, so the
        # three searches run sequentially against one engine and
        # --jobs sizes the portfolio pool instead of a CLI sweep.
        engine = VerificationEngine(config.network, config.problem,
                                    backend=args.backend,
                                    jobs=_engine_jobs(args),
                                    solver_opts=_solver_opts_from_args(args))
        total = engine.max_total_resiliency_bounds(prop, limits=limits,
                                                   screen=screen)
        ied = engine.max_ied_resiliency_bounds(prop, limits=limits,
                                               screen=screen)
        rtu = engine.max_rtu_resiliency_bounds(prop, limits=limits,
                                               screen=screen)
    print(f"maximal resiliency ({prop.value}):")
    print(f"  any field devices: {total.describe()}")
    print(f"  IEDs only        : {ied.describe()}")
    print(f"  RTUs only        : {rtu.describe()}")
    if not (total.exact and ied.exact and rtu.exact):
        print("  (a solver budget expired before the searches finished; "
              "brackets are sound, not exact)")
        return EXIT_UNKNOWN
    return 0


def _cmd_report(args) -> int:
    from .report import audit_report

    config = load_config(args.config)
    text = audit_report(config.network, config.problem,
                        threat_limit=args.limit,
                        include_hardening=not args.no_hardening,
                        backend=args.backend,
                        jobs=_engine_jobs(args),
                        limits=_limits_from_args(args),
                        solver_opts=_solver_opts_from_args(args))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_stats(args) -> int:
    from .obs.stats import aggregate

    try:
        stats = aggregate(args.traces)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(stats.to_json(), indent=2))
    else:
        sys.stdout.write(stats.to_text())
    # Malformed traces still aggregate (the summary lists the schema
    # problems), but scripts get a distinct exit code to notice them.
    return 2 if stats.problems else 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import ReproService

    service = ReproService(
        host=args.host, port=args.port, jobs=args.jobs,
        max_sessions=args.sessions, backend=args.backend,
        queue_limit=args.queue_limit, trace_dir=args.trace_dir)

    async def run() -> None:
        await service.start()
        print(f"repro service listening on "
              f"http://{service.host}:{service.port} "
              f"({service.bridge.workers} worker(s), up to "
              f"{args.sessions} warm session(s), "
              f"{args.backend} backend)")
        sys.stdout.flush()
        try:
            await service.serve_forever()
        finally:
            await service.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro service: shut down")
    return 0


def _client_spec(args) -> Optional[dict]:
    if args.k is None and args.k1 is None and args.k2 is None:
        return None
    spec = {"property": args.property, "k": args.k, "k1": args.k1,
            "k2": args.k2, "r": args.r, "link_k": args.link_k}
    return {name: value for name, value in spec.items()
            if value is not None}


def _client_limits(args) -> Optional[dict]:
    limits = {"max_time": args.timeout,
              "max_conflicts": args.max_conflicts}
    cleaned = {name: value for name, value in limits.items()
               if value is not None}
    return cleaned or None


def _cmd_client(args) -> int:
    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(host=args.host, port=args.port,
                           tenant=args.tenant)

    def require(value: Optional[str], what: str) -> str:
        if not value:
            raise SystemExit(f"action {args.action!r} needs {what}")
        return value

    config_text: Optional[str] = None
    if args.config:
        with open(args.config, "r", encoding="utf-8") as handle:
            config_text = handle.read()
    wait = not args.no_wait
    try:
        if args.action in ("health", "metrics", "sessions", "jobs"):
            payload = getattr(client, args.action)()
        elif args.action == "open":
            payload = client.open_session(
                require(config_text, "a config file"),
                backend=args.backend)
        elif args.action == "invalidate":
            payload = client.invalidate(
                require(args.session, "--session"))
        elif args.action == "job":
            payload = client.job(require(args.job, "--job"))
        elif args.action == "wait":
            payload = client.wait(require(args.job, "--job"))
        elif args.action == "cancel":
            payload = client.cancel(require(args.job, "--job"))
        elif args.action == "trace":
            text = client.trace(require(args.job, "--job"))
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(f"wrote {args.out}")
            else:
                sys.stdout.write(text)
            return 0
        elif args.action == "verify":
            payload = client.verify(
                config=config_text, session=args.session,
                spec=_client_spec(args), limits=_client_limits(args),
                wait=wait, backend=args.backend)
        elif args.action == "enumerate":
            payload = client.enumerate_vectors(
                config=config_text, session=args.session,
                spec=_client_spec(args), limits=_client_limits(args),
                limit=args.limit, wait=wait, backend=args.backend)
        else:  # max-resiliency
            payload = client.max_resiliency(
                config=config_text, session=args.session,
                prop=args.property, limits=_client_limits(args),
                cold=args.cold, wait=wait, backend=args.backend)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach the service at "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(payload, indent=2))
    # Completed solves surface the shared exit-code convention so a
    # scripted `repro client verify` behaves like `repro verify`.
    result = payload.get("result") if isinstance(payload, dict) else None
    if wait and isinstance(result, dict):
        return int(result.get("exit_code", 0))
    return 0


def _cmd_emulate(args) -> int:
    from .stream import ScenarioEmulator, StreamError, write_events

    config = load_config(args.config, strict=False)
    scenarios = (args.scenarios.split(",") if args.scenarios else None)
    try:
        emulator = ScenarioEmulator(
            config.network, seed=args.seed, scenarios=scenarios,
            mean_interval=args.mean_interval)
        events = emulator.events(args.events)
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            write_events(events, handle)
        print(f"wrote {args.out}: {len(events)} event(s) over "
              f"{events[-1].time:.1f}s simulated" if events
              else f"wrote {args.out}: 0 events")
    else:
        write_events(events, sys.stdout)
    return 0


def _watch_floors(args, config) -> List[ResiliencySpec]:
    if args.all_properties:
        k = args.k if args.k is not None else 1
        return [
            ResiliencySpec.observability(k=k),
            ResiliencySpec.secured_observability(k=k),
            ResiliencySpec.bad_data_detectability(r=args.r, k=k),
            ResiliencySpec.command_deliverability(k=k),
        ]
    return [_spec_from_args(args, config.spec)]


def _cmd_watch(args) -> int:
    from .stream import (
        ScenarioEmulator,
        StreamError,
        Watcher,
        batch_verdicts,
        read_events,
    )

    config = load_config(args.config, strict=False)
    floors = _watch_floors(args, config)
    try:
        if args.events_file:
            with open(args.events_file, "r", encoding="utf-8") as handle:
                events = read_events(handle)
        else:
            emulator = ScenarioEmulator(config.network, seed=args.seed)
            events = emulator.events(args.emulate)
        watcher = Watcher(config, floors, backend=args.backend,
                          limits=_limits_from_args(args),
                          engine_cache=args.engine_cache)
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.json:
        for spec in floors:
            status = watcher.verdicts[spec].status.value
            print(f"baseline {spec.describe()}: {status}")
    mismatches = 0
    for event in events:
        try:
            update = watcher.apply(event)
        except StreamError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(update.to_json()))
        else:
            print(update.delta.describe() if not update.delta.changed
                  else update.event.describe())
            for spec, result in update.reverified:
                print(f"  {spec.describe()}: {result.status.value} "
                      f"({result.total_time * 1000.0:.1f} ms)")
            for alarm in update.alarms:
                print(f"  {alarm.describe()}")
        if args.selfcheck:
            truth = batch_verdicts(config, watcher.state, floors,
                                   limits=_limits_from_args(args))
            for spec in floors:
                live = watcher.verdicts[spec].status
                if live is not truth[spec]:
                    mismatches += 1
                    print(f"SELFCHECK MISMATCH after event "
                          f"#{event.seq}: {spec.describe()} watcher="
                          f"{live.value} batch={truth[spec].value}",
                          file=sys.stderr)
    snapshot = watcher.snapshot()
    if args.json:
        print(json.dumps({"final": snapshot}))
    else:
        print(f"watched {snapshot['events']} event(s): "
              f"{len(watcher.alarms)} alarm record(s), "
              f"{len(snapshot['below_floor'])} floor cell(s) violated")
        for spec in snapshot["below_floor"]:
            print(f"  below floor: {spec}")
    if args.selfcheck and mismatches:
        print(f"error: {mismatches} selfcheck mismatch(es) — the "
              f"affected-property pruning is unsound for this stream",
              file=sys.stderr)
        return 2
    if any(result.is_unknown for result in watcher.verdicts.values()):
        return EXIT_UNKNOWN
    return 1 if snapshot["below_floor"] else 0


def _cmd_harden(args) -> int:
    config = load_config(args.config)
    spec = _spec_from_args(args, config.spec)
    result = harden(config.network, config.problem, spec,
                    max_repairs=args.max_repairs,
                    limits=_limits_from_args(args))
    print(result.summary())
    return 0 if result.succeeded else 1


def _cmd_audit(args) -> int:
    from .graphs import cross_check
    from .scada.config_io import ConfigError

    builtins = {"fig3", "fig4", "case5bus"}
    if args.config in builtins:
        from .cases import case_problem, fig3_network, fig4_network

        network = (fig4_network() if args.config == "fig4"
                   else fig3_network())
        problem = case_problem()
    else:
        try:
            config = load_config(args.config, strict=False)
        except (OSError, ConfigError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        network, problem = config.network, config.problem

    if args.property == "all":
        properties = None
    else:
        properties = [Property(args.property)]
    report = cross_check(network, problem, properties=properties,
                         r=args.r, limits=_limits_from_args(args))
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return report.exit_code()


def _cmd_corpus_generate(args) -> int:
    from .corpus import generate_corpus

    scada = GeneratorConfig(
        measurement_fraction=args.measurement_fraction,
        hierarchy_level=args.hierarchy,
        secure_fraction=args.secure_fraction,
        rtus_per_bus=args.rtus_per_bus,
        seed=args.scada_seed)
    entries = generate_corpus(
        args.root, sizes=args.sizes, seeds=args.seeds,
        avg_degree=args.avg_degree, preferential=args.preferential,
        meshing=args.meshing, scada=scada)
    for entry in entries:
        print(f"  {entry['num_buses']:>6d} buses  "
              f"{entry['num_devices']:>6d} devices  "
              f"{entry['network_fingerprint']}")
    print(f"{len(entries)} grid recipe(s) written to {args.root}")
    return 0


def _cmd_corpus_run(args) -> int:
    from .corpus import StoreVersionError, run_corpus

    properties = [Property(name) for name in args.properties]
    try:
        report = run_corpus(
            args.root, properties=properties, ks=args.ks, r=args.r,
            limits=_limits_from_args(args), jobs=args.jobs,
            timeout=args.task_timeout, retries=args.retries,
            backend=args.backend, resume=args.resume)
    except StoreVersionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for failure in report.failures:
            print(f"  ! {failure}", file=sys.stderr)
    # The verify convention, over the whole sweep: a lost task is a
    # failed run (2); an UNKNOWN cell anywhere — fresh or resumed —
    # means the sweep proved less than asked (3); any threat is 1.
    if report.failures:
        return 2
    verdicts = set(report.verdicts.values())
    if Status.UNKNOWN.value in verdicts:
        return EXIT_UNKNOWN
    if Status.THREAT_FOUND.value in verdicts:
        return 1
    return 0


def _cmd_corpus_status(args) -> int:
    from .corpus import StoreVersionError, corpus_status

    try:
        status = corpus_status(args.root)
    except StoreVersionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    buses = ", ".join(map(str, status["buses"]))
    print(f"corpus {status['root']}: {status['grids']} grid(s) "
          f"({buses} buses), {status['records']} stored cell(s)")
    for name, tally in status["by_status"].items():
        print(f"  {name}: {tally}")
    if status["quarantined_shards"]:
        print(f"  quarantined shards: {status['quarantined_shards']}")
    for cell in status["unknown_cells"]:
        print(f"  ? {cell['spec']} — bounds {cell['bounds']} "
              f"({cell['limit_reason']} limit)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCADA resiliency verification (DSN'16 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="verify a configuration")
    p_verify.add_argument("config")
    p_verify.add_argument("--dump-smt2", default=None, dest="dump_smt2",
                          help="also write the model as SMT-LIB 2")
    p_verify.add_argument("--certify", action="store_true",
                          help="re-check unsat verdicts with the RUP "
                               "proof checker")
    p_verify.add_argument("--no-lint", action="store_true", dest="no_lint",
                          help="skip the configuration linter and verify "
                               "even with error-level diagnostics")
    p_verify.add_argument("--preprocess", action="store_true",
                          help="simplify the CNF encoding before solving "
                               "(alias for --backend preprocessed)")
    _add_engine_args(p_verify)
    _add_spec_args(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_lint = sub.add_parser(
        "lint", help="statically analyze a configuration")
    p_lint.add_argument("config",
                        help="a configuration file, a builtin case "
                             "(fig3/fig4/case5bus), or a DIMACS file "
                             "(*.cnf, *.dimacs)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="diagnostic output format")
    p_lint.add_argument("--encoding", action="store_true",
                        help="also analyze the Tseitin CNF encoding")
    _add_spec_args(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_enum = sub.add_parser("enumerate",
                            help="enumerate minimal threat vectors")
    p_enum.add_argument("config")
    p_enum.add_argument("--limit", type=int, default=None)
    p_enum.add_argument("--no-screen", action="store_true",
                        dest="no_screen",
                        help="skip the polynomial-time structural "
                             "screen and always run the solver")
    _add_engine_args(p_enum, jobs=False)
    _add_spec_args(p_enum)
    p_enum.set_defaults(func=_cmd_enumerate)

    p_case = sub.add_parser("case5bus", help="run the paper's case study")
    p_case.set_defaults(func=_cmd_case5bus)

    p_gen = sub.add_parser("generate",
                           help="generate a synthetic SCADA system")
    p_gen.add_argument("--buses", type=int, default=14,
                       choices=(14, 30, 57, 118))
    p_gen.add_argument("--hierarchy", type=int, default=1)
    p_gen.add_argument("--fraction", type=float, default=0.7)
    p_gen.add_argument("--secure-fraction", type=float, default=0.8)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    p_max = sub.add_parser("max-resiliency",
                           help="search the maximal tolerable budgets")
    p_max.add_argument("config")
    p_max.add_argument("--property", default="observability",
                       choices=[p.value for p in Property])
    p_max.add_argument("--no-screen", action="store_true",
                       dest="no_screen",
                       help="skip the structural screen (no min-cut "
                            "bracket seeding of the searches)")
    _add_engine_args(p_max)
    p_max.set_defaults(func=_cmd_max_resiliency)

    p_report = sub.add_parser("report",
                              help="produce a Markdown audit report")
    p_report.add_argument("config")
    p_report.add_argument("--out", default=None)
    p_report.add_argument("--limit", type=int, default=100)
    p_report.add_argument("--no-hardening", action="store_true")
    _add_engine_args(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_emulate = sub.add_parser(
        "emulate",
        help="emit a seeded stream of live attack/failure events")
    p_emulate.add_argument("config")
    p_emulate.add_argument("--events", type=int, default=20,
                           help="number of events to emit")
    p_emulate.add_argument("--seed", type=int, default=0)
    p_emulate.add_argument("--scenarios", default=None,
                           help="comma-separated scenario families "
                                "(default: all five)")
    p_emulate.add_argument("--mean-interval", type=float, default=1.0,
                           dest="mean_interval",
                           help="mean seconds between events "
                                "(exponential inter-arrival)")
    p_emulate.add_argument("--out", default=None,
                           help="write the JSONL event stream here "
                                "(default: stdout)")
    p_emulate.set_defaults(func=_cmd_emulate)

    p_watch = sub.add_parser(
        "watch",
        help="stream events through a live watcher and alarm on "
             "floor violations")
    p_watch.add_argument("config")
    p_watch.add_argument("--events-file", default=None,
                         dest="events_file", metavar="FILE",
                         help="replay a JSONL event stream (from "
                              "'repro emulate' or an external feed)")
    p_watch.add_argument("--emulate", type=int, default=20, metavar="N",
                         help="without --events-file: emulate N events "
                              "in-process")
    p_watch.add_argument("--seed", type=int, default=0,
                         help="emulator seed (with --emulate)")
    p_watch.add_argument("--all-properties", action="store_true",
                         dest="all_properties",
                         help="monitor all four properties at the "
                              "given budget instead of one spec")
    p_watch.add_argument("--backend", default="assumption",
                         choices=BACKEND_NAMES,
                         help="backend for the warm watcher engines")
    p_watch.add_argument("--engine-cache", type=int, default=4,
                         dest="engine_cache",
                         help="warm engines kept across network "
                              "shapes (LRU)")
    p_watch.add_argument("--selfcheck", action="store_true",
                         help="after every event, recompute all floor "
                              "cells from scratch and fail (exit 2) on "
                              "any divergence from the watcher")
    p_watch.add_argument("--json", action="store_true",
                         help="one JSON object per event instead of "
                              "text")
    p_watch.add_argument("--trace", default=None, metavar="FILE",
                         help="write a JSONL telemetry trace (stream.* "
                              "counters, re-verify spans)")
    _add_limit_args(p_watch)
    _add_spec_args(p_watch)
    p_watch.set_defaults(func=_cmd_watch)

    p_harden = sub.add_parser("harden",
                              help="search for configuration repairs")
    p_harden.add_argument("config")
    p_harden.add_argument("--max-repairs", type=int, default=2)
    _add_limit_args(p_harden)
    _add_spec_args(p_harden)
    p_harden.set_defaults(func=_cmd_harden)

    p_audit = sub.add_parser(
        "audit",
        help="cross-validate the structural analysis against the "
             "SAT engine")
    p_audit.add_argument("config",
                         help="a configuration file or a builtin case "
                              "(fig3/fig4/case5bus)")
    p_audit.add_argument("--property", default="all",
                         choices=["all"] + [p.value for p in Property],
                         help="restrict the resiliency cross-check to "
                              "one property")
    p_audit.add_argument("-r", type=int, default=1,
                         help="corrupted-measurement budget for the "
                              "bad-data cross-check")
    p_audit.add_argument("--format", default="text",
                         choices=("text", "json"),
                         help="report output format")
    _add_limit_args(p_audit)
    p_audit.add_argument("--trace", default=None, metavar="FILE",
                         help="write a JSONL telemetry trace")
    p_audit.set_defaults(func=_cmd_audit)

    p_serve = sub.add_parser(
        "serve",
        help="run the verification service daemon (HTTP, warm "
             "sessions, request coalescing)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 = ephemeral, printed at "
                              "startup)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="solver worker threads (default/0 = "
                              "cores minus one, reserving a core for "
                              "the event loop)")
    p_serve.add_argument("--sessions", type=int, default=8,
                         help="warm sessions kept (LRU-evicted beyond "
                              "this)")
    p_serve.add_argument("--backend", default="assumption",
                         choices=BACKEND_NAMES,
                         help="engine backend for new sessions")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         dest="queue_limit",
                         help="pending-job cap across all tenants")
    p_serve.add_argument("--trace-dir", default=None, dest="trace_dir",
                         help="also mirror every job's JSONL trace "
                              "into this directory")
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client", help="talk to a running verification service")
    p_client.add_argument("action",
                          choices=("health", "metrics", "sessions",
                                   "jobs", "open", "invalidate",
                                   "verify", "enumerate",
                                   "max-resiliency", "job", "wait",
                                   "cancel", "trace"))
    p_client.add_argument("config", nargs="?", default=None,
                          help="configuration file (verify/enumerate/"
                               "max-resiliency/open)")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8321)
    p_client.add_argument("--tenant", default=None,
                          help="tenant name sent as X-Tenant")
    p_client.add_argument("--session", default=None,
                          help="reuse a warm session by id instead of "
                               "sending config text")
    p_client.add_argument("--job", default=None,
                          help="job id (job/wait/cancel/trace)")
    p_client.add_argument("--limit", type=int, default=None,
                          help="vector cap for enumerate")
    p_client.add_argument("--no-wait", action="store_true",
                          dest="no_wait",
                          help="submit and return the job id instead "
                               "of waiting for the verdict")
    p_client.add_argument("--cold", action="store_true",
                          help="max-resiliency on the process-pool "
                               "cold lane (needs config text)")
    p_client.add_argument("--out", default=None,
                          help="write the downloaded trace here")
    p_client.add_argument("--backend", default=None,
                          choices=BACKEND_NAMES,
                          help="backend for a newly created session")
    _add_limit_args(p_client)
    _add_spec_args(p_client)
    p_client.set_defaults(func=_cmd_client)

    p_stats = sub.add_parser("stats",
                             help="aggregate JSONL telemetry traces")
    p_stats.add_argument("traces", nargs="+", metavar="TRACE",
                         help="trace files written via --trace")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the machine-readable summary")
    p_stats.set_defaults(func=_cmd_stats)

    p_corpus = sub.add_parser(
        "corpus",
        help="corpus-scale synthetic grids and resumable sweeps")
    corpus_sub = p_corpus.add_subparsers(dest="corpus_command",
                                         required=True)

    p_cgen = corpus_sub.add_parser(
        "generate",
        help="grow seeded synthetic grids and write their recipes")
    p_cgen.add_argument("root", help="corpus directory")
    p_cgen.add_argument("--sizes", type=int, nargs="+", required=True,
                        metavar="BUSES", help="bus counts to grow")
    p_cgen.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="one grid per size × seed")
    p_cgen.add_argument("--avg-degree", type=float, default=3.0,
                        dest="avg_degree",
                        help="target mean bus degree (real grids ≈ 3)")
    p_cgen.add_argument("--preferential", type=float, default=0.8,
                        help="hub-attachment probability in [0, 1]")
    p_cgen.add_argument("--meshing", type=float, default=0.3,
                        help="local-reinforcement probability in [0, 1]")
    p_cgen.add_argument("--measurement-fraction", type=float,
                        default=0.7, dest="measurement_fraction")
    p_cgen.add_argument("--hierarchy", type=int, default=1,
                        help="mean RTU hierarchy depth")
    p_cgen.add_argument("--rtus-per-bus", type=float, default=1 / 3,
                        dest="rtus_per_bus")
    p_cgen.add_argument("--secure-fraction", type=float, default=0.8,
                        dest="secure_fraction")
    p_cgen.add_argument("--scada-seed", type=int, default=0,
                        dest="scada_seed")
    p_cgen.set_defaults(func=_cmd_corpus_generate)

    p_crun = corpus_sub.add_parser(
        "run",
        help="sweep grids × properties × budgets, resumably: cells "
             "already in the store are never re-solved")
    p_crun.add_argument("root", help="corpus directory")
    p_crun.add_argument("--properties", nargs="+",
                        default=["observability"],
                        choices=[p.value for p in Property],
                        help="properties to sweep")
    p_crun.add_argument("--ks", type=int, nargs="+", default=[0, 1, 2],
                        metavar="K", help="total failure budgets")
    p_crun.add_argument("-r", type=int, default=1,
                        help="corrupted-measurement budget (bad data)")
    p_crun.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = all cores)")
    p_crun.add_argument("--task-timeout", type=float, default=None,
                        dest="task_timeout", metavar="SECONDS",
                        help="wall-clock budget per grid task "
                             "(pooled runs)")
    p_crun.add_argument("--retries", type=int, default=0,
                        help="extra solo attempts per failed grid task")
    p_crun.add_argument("--backend", default="fresh",
                        choices=BACKEND_NAMES)
    p_crun.add_argument("--no-resume", dest="resume",
                        action="store_false",
                        help="recompute every cell (overwrites in "
                             "place) instead of skipping stored ones")
    p_crun.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    p_crun.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL telemetry trace; aggregate "
                             "with 'repro stats FILE'")
    _add_limit_args(p_crun)
    p_crun.set_defaults(func=_cmd_corpus_run)

    p_cstat = corpus_sub.add_parser(
        "status", help="summarize a corpus store without running")
    p_cstat.add_argument("root", help="corpus directory")
    p_cstat.add_argument("--json", action="store_true")
    p_cstat.set_defaults(func=_cmd_corpus_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    sink = None
    tracer = None
    previous = None
    if trace_path:
        sink = open(trace_path, "w", encoding="utf-8")
        tracer = Tracer(sink, meta={"command": args.command,
                                    "argv": list(argv or sys.argv[1:])})
        previous = set_tracer(tracer)
    try:
        return args.func(args)
    except ResourceLimitReached as exc:
        # A budgeted search that cannot report a sound partial result
        # surfaces here; UNKNOWN gets its own exit code so scripts never
        # mistake an expired budget for a verdict.
        print(f"UNKNOWN: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; the usual
        # CLI convention is to exit quietly.  Must precede the OSError
        # clause below — BrokenPipeError is a subclass of it.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (OSError, ConfigError) as exc:
        # Missing or unparseable input: the same exit code the lint
        # command uses, and a one-line message instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            # Flush the final metrics record even when the command
            # failed — a partial trace is still analyzable.
            tracer.close()
            set_tracer(previous)
            assert sink is not None
            sink.close()


if __name__ == "__main__":
    sys.exit(main())
