"""Device-disjoint delivery redundancy via max-flow / min-cut.

The SCADA013 rule needs, per state, the size of the smallest set of
field devices whose failure cuts every assured delivery path of every
IED covering the state.  By Menger's theorem that equals the maximum
number of *device-disjoint* delivery routes — exactly the node-split
reduction provided by the shared kernel in :mod:`repro.graphs.flow`
(:func:`~repro.graphs.flow.unit_vertex_cut`), which this module now
delegates to.  The historical public API is preserved: the lint rules
keep calling :func:`disjoint_delivery_flow` and reading
:class:`DisjointFlowResult`.

Soundness: the graph is the union of real assured paths, so every unit
of flow is witnessed by actual deliverable routes, and every vertex cut
corresponds to a concrete set of device failures that disconnects all
of them — no false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

from ..graphs.flow import INF as _INF
from ..graphs.flow import unit_vertex_cut

__all__ = ["DisjointFlowResult", "disjoint_delivery_flow"]


@dataclass(frozen=True)
class DisjointFlowResult:
    """Outcome of the device-disjoint delivery computation."""

    #: Maximum number of device-disjoint delivery routes (the flow value,
    #: capped at ``bound + 1`` when a bound is given).
    flow: int
    #: Field devices forming a minimum vertex cut (empty when the flow
    #: exceeded the requested bound and the search stopped early).
    cut_devices: Tuple[int, ...]

    def survives(self, max_failures: int) -> bool:
        """True when redundancy strictly exceeds *max_failures*."""
        return self.flow > max_failures


def disjoint_delivery_flow(source_ieds: Iterable[int],
                           paths: Iterable[Sequence[int]],
                           field_devices: Set[int],
                           sink: int,
                           bound: int = _INF) -> DisjointFlowResult:
    """Max device-disjoint delivery routes from *source_ieds* to *sink*.

    *paths* are assured delivery paths (device-id sequences ending at the
    sink); *field_devices* are the devices whose failures count.  The
    search stops as soon as the flow exceeds *bound* (the failure
    budget), since the rule only needs to know which side of the budget
    the redundancy falls on.
    """
    result = unit_vertex_cut(
        source_ieds, paths, field_devices, sink,
        bound=None if bound >= _INF else bound)
    return DisjointFlowResult(flow=result.flow,
                              cut_devices=result.cut_vertices)
