"""Device-disjoint delivery redundancy via max-flow / min-cut.

The SCADA013 rule needs, per state, the size of the smallest set of
field devices whose failure cuts every assured delivery path of every
IED covering the state.  By Menger's theorem that equals the maximum
number of *device-disjoint* delivery routes, computed here as max-flow
on a node-split digraph:

* every field device (IED/RTU) on some assured path becomes ``v_in →
  v_out`` with capacity 1 (failing the device removes one unit);
* routers and the MTU are not part of the failure model, so their split
  arc gets unbounded capacity;
* a super-source feeds the *out*-side of every IED that covers the
  state (the IED's own split arc still costs a unit, because an IED
  failure silences its measurements);
* path edges (logical hops of assured paths) get unbounded capacity;
* the sink is the MTU's *in*-node.

Soundness: the graph is the union of real assured paths, so every unit
of flow is witnessed by actual deliverable routes, and every vertex cut
corresponds to a concrete set of device failures that disconnects all
of them — no false positives.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["DisjointFlowResult", "disjoint_delivery_flow"]

#: Effectively-infinite arc capacity (device counts are small).
_INF = 1 << 30


@dataclass(frozen=True)
class DisjointFlowResult:
    """Outcome of the device-disjoint delivery computation."""

    #: Maximum number of device-disjoint delivery routes (the flow value,
    #: capped at ``bound + 1`` when a bound is given).
    flow: int
    #: Field devices forming a minimum vertex cut (empty when the flow
    #: exceeded the requested bound and the search stopped early).
    cut_devices: Tuple[int, ...]

    def survives(self, max_failures: int) -> bool:
        """True when redundancy strictly exceeds *max_failures*."""
        return self.flow > max_failures


def disjoint_delivery_flow(source_ieds: Iterable[int],
                           paths: Iterable[Sequence[int]],
                           field_devices: Set[int],
                           sink: int,
                           bound: int = _INF) -> DisjointFlowResult:
    """Max device-disjoint delivery routes from *source_ieds* to *sink*.

    *paths* are assured delivery paths (device-id sequences ending at the
    sink); *field_devices* are the devices whose failures count.  The
    search stops as soon as the flow exceeds *bound* (the failure
    budget), since the rule only needs to know which side of the budget
    the redundancy falls on.
    """
    sources = sorted(set(source_ieds))
    path_list = [tuple(p) for p in paths]
    if not sources or not path_list:
        return DisjointFlowResult(flow=0, cut_devices=())

    # Node-split encoding: device v → nodes 2v ("in") and 2v+1 ("out").
    # Node 0 is the super-source; the sink is the MTU's in-node.
    def node_in(v: int) -> int:
        return 2 * v

    def node_out(v: int) -> int:
        return 2 * v + 1

    graph: Dict[int, Dict[int, int]] = {}

    def add_arc(u: int, w: int, capacity: int) -> None:
        graph.setdefault(u, {})
        graph.setdefault(w, {})
        graph[u][w] = graph[u].get(w, 0) + capacity
        graph[w].setdefault(u, 0)

    split_cap: Dict[int, int] = {}
    for path in path_list:
        for device in path:
            if device not in split_cap:
                split_cap[device] = 1 if device in field_devices else _INF
                add_arc(node_in(device), node_out(device),
                        split_cap[device])
        for a, b in zip(path, path[1:]):
            add_arc(node_out(a), node_in(b), _INF)

    super_source = 0
    for ied in sources:
        if ied in split_cap:
            add_arc(super_source, node_in(ied), _INF)
    sink_node = node_in(sink)
    if sink_node not in graph or super_source not in graph:
        return DisjointFlowResult(flow=0, cut_devices=())

    # Edmonds–Karp with early exit once the budget is exceeded.
    flow = 0
    while flow <= bound:
        parent = _augmenting_path(graph, super_source, sink_node)
        if parent is None:
            break
        # Unit bottlenecks dominate (device arcs carry capacity 1), but
        # compute the true bottleneck for generality.
        bottleneck = _INF
        w = sink_node
        while w != super_source:
            u = parent[w]
            bottleneck = min(bottleneck, graph[u][w])
            w = u
        w = sink_node
        while w != super_source:
            u = parent[w]
            graph[u][w] -= bottleneck
            graph[w][u] += bottleneck
            w = u
        flow += bottleneck

    if flow > bound:
        return DisjointFlowResult(flow=flow, cut_devices=())

    # Min cut: devices whose split arc crosses the reachable frontier of
    # the residual graph.
    reachable = _residual_reachable(graph, super_source)
    cut = sorted(device for device, cap in split_cap.items()
                 if cap == 1
                 and node_in(device) in reachable
                 and node_out(device) not in reachable)
    return DisjointFlowResult(flow=flow, cut_devices=tuple(cut))


def _augmenting_path(graph: Dict[int, Dict[int, int]], source: int,
                     sink: int) -> "Dict[int, int] | None":
    """BFS for a shortest augmenting path; parent map or None."""
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w, capacity in graph[u].items():
            if capacity > 0 and w not in parent:
                parent[w] = u
                if w == sink:
                    return parent
                queue.append(w)
    return None


def _residual_reachable(graph: Dict[int, Dict[int, int]],
                        source: int) -> Set[int]:
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w, capacity in graph[u].items():
            if capacity > 0 and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen
