"""Layer 2b — a correctness-preserving CNF simplifier.

Classic SAT preprocessing (Eén & Biere's SatELite recipe): unit
propagation, pure-literal elimination, backward subsumption,
self-subsuming resolution, and bounded variable elimination — with one
twist required by this codebase's incremental solving: a *frozen* set
of variables (named model variables, scope selectors, assumption
candidates) that the simplifier must keep intact.

Soundness contract:

* variable numbering is unchanged (no renaming), so callers keep using
  their literals;
* frozen variables are never eliminated (no pure-literal or BVE on
  them), and a frozen unit derived by propagation stays in the database
  as an explicit unit clause so later assumptions of the opposite
  polarity still conflict and produce cores;
* every *added* clause (strengthened clause, resolvent, derived unit)
  is RUP with respect to the original formula plus earlier additions,
  recorded on :attr:`PreprocessResult.proof_additions` so an unsat run
  of the simplified formula can be certified end-to-end by
  :func:`repro.sat.proof.check_unsat_proof` — the checker ignores
  deletions, and RUP is monotone, so clauses the sub-solver learns from
  the simplified database check out against the original one;
* :meth:`PreprocessResult.extend_model` replays a MiniSat-style
  reconstruction stack to turn any model of the simplified formula into
  a model of the original formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..sat.cnf import CNF

__all__ = ["PreprocessResult", "preprocess_cnf"]

#: Skip BVE on variables with more occurrences than this per polarity
#: (the SatELite heuristic: elimination cost explodes past small counts).
_BVE_OCC_LIMIT = 10


@dataclass
class PreprocessResult:
    """The outcome of :func:`preprocess_cnf`."""

    #: The simplified formula (same variable numbering as the input).
    cnf: CNF
    #: True when preprocessing alone refuted the formula.
    unsat: bool
    #: Clauses added during simplification, each RUP w.r.t. the original
    #: formula plus the additions before it (ends with ``[]`` if
    #: preprocessing refuted the formula).
    proof_additions: List[List[int]]
    #: Variables the simplifier was told to keep intact.
    frozen: Set[int]
    #: Counters: units, pures, subsumed, strengthened, bve_eliminated,
    #: rounds, plus original/simplified clause and variable totals.
    stats: Dict[str, int]
    #: MiniSat-style reconstruction entries, in application order.
    _stack: List[Tuple[str, int, Optional[List[List[int]]]]] = \
        field(default_factory=list)

    def extend_model(self, model: Sequence[Optional[bool]]
                     ) -> List[Optional[bool]]:
        """Extend a model of the simplified formula to the original one.

        *model* is indexed by variable (entry 0 unused); missing tail
        entries are padded.  Returns a new list.
        """
        out: List[Optional[bool]] = list(model)
        while len(out) <= self.cnf.num_vars:
            out.append(False)
        for kind, var, saved in reversed(self._stack):
            if kind in ("unit", "pure"):
                # ``var`` is really the literal here.
                out[abs(var)] = var > 0
                continue
            assert saved is not None
            for clause in saved:
                if any(lit != var and lit != -var
                       and out[abs(lit)] == (lit > 0) for lit in clause):
                    continue
                polarity = next(lit > 0 for lit in clause
                                if abs(lit) == var)
                out[var] = polarity
                break
        return out


class _Database:
    """Clause database with occurrence lists; indices never move."""

    def __init__(self, cnf: CNF, frozen: Set[int]) -> None:
        self.clauses: List[Optional[List[int]]] = []
        self.occur: Dict[int, Set[int]] = {}
        self.frozen = frozen
        self.assigned: Dict[int, bool] = {}
        self.unit_queue: List[int] = []
        self.conflict = False
        self.additions: List[List[int]] = []
        self.stack: List[Tuple[str, int, Optional[List[List[int]]]]] = []
        self.stats = {"units": 0, "pures": 0, "subsumed": 0,
                      "strengthened": 0, "bve_eliminated": 0, "rounds": 0}
        for clause in cnf.clauses:
            self.add(list(clause))

    # -- primitive operations -------------------------------------------

    def add(self, clause: List[int]) -> int:
        index = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause:
            self.occur.setdefault(lit, set()).add(index)
        if len(clause) == 1:
            self.unit_queue.append(clause[0])
        elif not clause:
            self.conflict = True
        return index

    def remove(self, index: int) -> None:
        clause = self.clauses[index]
        if clause is None:
            return
        for lit in clause:
            self.occur[lit].discard(index)
        self.clauses[index] = None

    def strengthen(self, index: int, lit: int) -> None:
        """Remove *lit* from clause *index*, logging the RUP addition."""
        clause = self.clauses[index]
        assert clause is not None and lit in clause
        clause.remove(lit)
        self.occur[lit].discard(index)
        self.additions.append(list(clause))
        self.stats["strengthened"] += 1
        if len(clause) == 1:
            self.unit_queue.append(clause[0])
        elif not clause:
            self.conflict = True

    def live(self) -> List[int]:
        return [i for i, c in enumerate(self.clauses) if c is not None]

    # -- unit propagation -----------------------------------------------

    def propagate(self) -> bool:
        changed = False
        while self.unit_queue and not self.conflict:
            lit = self.unit_queue.pop()
            var = abs(lit)
            if var in self.assigned:
                if self.assigned[var] != (lit > 0):
                    self.conflict = True
                continue
            self.assigned[var] = lit > 0
            changed = True
            self.stats["units"] += 1
            for index in list(self.occur.get(lit, ())):
                self.remove(index)
            for index in list(self.occur.get(-lit, ())):
                self.strengthen(index, -lit)
            if var in self.frozen:
                # Keep the fact in the database so a later assumption of
                # the opposite polarity still conflicts (and shows up in
                # cores).  The derived unit is itself a RUP addition.
                self.add([lit])
                self.additions.append([lit])
            else:
                self.stack.append(("unit", lit, None))
        return changed

    # -- pure literals ---------------------------------------------------

    def eliminate_pures(self) -> bool:
        changed = False
        again = True
        while again and not self.conflict:
            again = False
            candidates = {abs(lit) for lit, occ in self.occur.items()
                          if occ}
            for var in sorted(candidates):
                if var in self.frozen or var in self.assigned:
                    continue
                pos = self.occur.get(var, set())
                neg = self.occur.get(-var, set())
                if pos and not neg:
                    lit = var
                elif neg and not pos:
                    lit = -var
                else:
                    continue
                for index in list(self.occur.get(lit, ())):
                    self.remove(index)
                self.stack.append(("pure", lit, None))
                self.stats["pures"] += 1
                changed = again = True
        return changed

    # -- subsumption and self-subsuming resolution -----------------------

    def subsume(self) -> bool:
        changed = False
        for index in self.live():
            clause = self.clauses[index]
            if clause is None or not clause:
                continue
            lits = set(clause)
            # Backward subsumption: scan the shortest occurrence list.
            anchor = min(clause, key=lambda l: len(self.occur.get(l, ())))
            for other in list(self.occur.get(anchor, ())):
                if other == index:
                    continue
                target = self.clauses[other]
                if target is None or len(target) < len(clause):
                    continue
                if lits.issubset(target):
                    self.remove(other)
                    self.stats["subsumed"] += 1
                    changed = True
            # Self-subsuming resolution: C = lits, D ∋ -l with
            # C \ {l} ⊆ D  ⇒  D may drop -l.
            for lit in clause:
                rest = lits - {lit}
                for other in list(self.occur.get(-lit, ())):
                    target = self.clauses[other]
                    if target is None or len(target) < len(clause):
                        continue
                    if rest.issubset(target):
                        self.strengthen(other, -lit)
                        changed = True
                if self.conflict:
                    return changed
        return changed

    # -- bounded variable elimination ------------------------------------

    def eliminate_variables(self) -> bool:
        changed = False
        candidates = sorted({abs(lit) for lit, occ in self.occur.items()
                             if occ})
        for var in candidates:
            if self.conflict:
                break
            if var in self.frozen or var in self.assigned:
                continue
            pos = [i for i in self.occur.get(var, ()) if
                   self.clauses[i] is not None]
            neg = [i for i in self.occur.get(-var, ()) if
                   self.clauses[i] is not None]
            if not pos or not neg:
                continue  # the pure pass handles one-sided variables
            if len(pos) > _BVE_OCC_LIMIT or len(neg) > _BVE_OCC_LIMIT:
                continue
            resolvents: List[List[int]] = []
            seen: Set[Tuple[int, ...]] = set()
            feasible = True
            for pi in pos:
                for ni in neg:
                    resolvent = self._resolve(self.clauses[pi],
                                              self.clauses[ni], var)
                    if resolvent is None:
                        continue
                    key = tuple(resolvent)
                    if key in seen:
                        continue
                    seen.add(key)
                    resolvents.append(resolvent)
                    if len(resolvents) > len(pos) + len(neg):
                        feasible = False
                        break
                if not feasible:
                    break
            if not feasible:
                continue
            saved = [list(self.clauses[i])  # type: ignore[arg-type]
                     for i in pos + neg]
            for resolvent in resolvents:
                self.additions.append(list(resolvent))
            for index in pos + neg:
                self.remove(index)
            for resolvent in resolvents:
                self.add(resolvent)
            self.stack.append(("bve", var, saved))
            self.stats["bve_eliminated"] += 1
            changed = True
        return changed

    @staticmethod
    def _resolve(left: Optional[List[int]], right: Optional[List[int]],
                 var: int) -> Optional[List[int]]:
        assert left is not None and right is not None
        merged = {lit for lit in left if lit != var}
        for lit in right:
            if lit == -var:
                continue
            if -lit in merged:
                return None  # tautological resolvent
            merged.add(lit)
        return sorted(merged, key=abs)


def preprocess_cnf(cnf: CNF, frozen: Iterable[int] = (),
                   rounds: int = 5) -> PreprocessResult:
    """Simplify *cnf*, never touching *frozen* variables.

    Returns a :class:`PreprocessResult` whose ``cnf`` is a new formula
    with the same variable numbering.  The input is not modified.
    """
    frozen_set = {abs(v) for v in frozen}
    db = _Database(cnf, frozen_set)

    db.propagate()
    while db.stats["rounds"] < rounds and not db.conflict:
        db.stats["rounds"] += 1
        changed = db.eliminate_pures()
        changed |= db.subsume()
        changed |= db.propagate()
        changed |= db.eliminate_variables()
        changed |= db.propagate()
        if not changed:
            break

    additions = db.additions
    simplified = CNF(num_vars=cnf.num_vars)
    if db.conflict:
        additions = additions + [[]]
        # A refuted formula needs no clauses; keep the conflict visible.
        simplified.clauses = []
    else:
        for index in db.live():
            clause = db.clauses[index]
            assert clause is not None
            simplified.clauses.append(sorted(clause, key=abs))

    stats = dict(db.stats)
    stats.update(
        original_vars=cnf.num_vars,
        original_clauses=len(cnf.clauses),
        simplified_clauses=len(simplified.clauses),
        eliminated_vars=(stats["bve_eliminated"] + stats["pures"]
                         + stats["units"]),
    )
    return PreprocessResult(
        cnf=simplified,
        unsat=db.conflict,
        proof_additions=additions,
        frozen=frozen_set,
        stats=stats,
        _stack=db.stack,
    )
