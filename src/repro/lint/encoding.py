"""Layer 2a — static analysis of Tseitin-emitted CNF.

:func:`analyze_cnf` reports structural oddities of an encoding without
changing it: variables no clause mentions (CNF001), tautologies the
:class:`~repro.sat.cnf.CNF` container dropped at construction (CNF002),
duplicate clauses (CNF003), and pure literals (CNF004).  Variables in
*frozen* (named model variables, selectors, assumption candidates) are
exempt from the pure-literal report, since an assumption may force
either polarity later.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..sat.cnf import CNF
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = ["analyze_cnf"]

#: Cap on enumerated locations per rule, to keep reports readable on
#: large encodings.
_MAX_LISTED = 10


def _summarize(values: Iterable[int]) -> Tuple[List[int], int]:
    ordered = sorted(values)
    return ordered[:_MAX_LISTED], len(ordered)


def analyze_cnf(cnf: CNF, frozen: Iterable[int] = (),
                subject: str = "cnf") -> LintReport:
    """Run every encoding rule over *cnf* and return the report."""
    report = LintReport(subject=subject)
    frozen_set: Set[int] = set(frozen)

    occurrences: Dict[int, int] = {}
    seen: Dict[Tuple[int, ...], int] = {}
    duplicates: Set[Tuple[int, ...]] = set()
    for clause in cnf.clauses:
        key = tuple(clause)
        if key in seen:
            duplicates.add(key)
        else:
            seen[key] = 1
        for lit in clause:
            occurrences[lit] = occurrences.get(lit, 0) + 1

    mentioned = {abs(lit) for lit in occurrences}
    unconstrained = set(range(1, cnf.num_vars + 1)) - mentioned
    if unconstrained:
        shown, total = _summarize(unconstrained)
        report.append(Diagnostic(
            "CNF001", Severity.INFO,
            f"{total} of {cnf.num_vars} variables appear in no clause "
            f"(e.g. {', '.join(map(str, shown))}); they are dead weight "
            f"in the search",
            hint="hash-consing gaps or unasserted definitions usually "
                 "cause this"))

    if cnf.tautologies_dropped:
        report.append(Diagnostic(
            "CNF002", Severity.WARNING,
            f"{cnf.tautologies_dropped} tautological clauses were "
            f"dropped at construction; the encoder emitted constraints "
            f"that say nothing",
            hint="check gate definitions that mention a literal and its "
                 "negation"))

    if duplicates:
        shown_clauses = [list(c) for c in sorted(duplicates)][:_MAX_LISTED]
        report.append(Diagnostic(
            "CNF003", Severity.WARNING,
            f"{len(duplicates)} clauses occur more than once "
            f"(e.g. {shown_clauses[0]}); duplicates waste propagation "
            f"work",
            hint="emit each constraint once, or preprocess the formula"))

    pure = sorted(
        v for v in mentioned - frozen_set
        if (v in occurrences) != (-v in occurrences))
    if pure:
        shown, total = _summarize(pure)
        report.append(Diagnostic(
            "CNF004", Severity.INFO,
            f"{total} non-frozen variables occur in a single polarity "
            f"(e.g. {', '.join(map(str, shown))}); the preprocessor can "
            f"satisfy their clauses outright",
            hint="run with preprocess=True to eliminate them"))

    return report
