"""Layer 1 — static rules over SCADA configurations.

:func:`lint_case` inspects a :class:`~repro.scada.network.ScadaNetwork`
(ideally built with ``strict=False`` so structural defects survive to
be reported), an :class:`~repro.core.problem.ObservabilityProblem`, and
optionally a :class:`~repro.core.specs.ResiliencySpec`, and returns a
:class:`~repro.lint.diagnostics.LintReport`.

Every rule pre-checks a constraint of the paper's formal model in
polynomial time, without invoking the solver; the formal justification
of each code lives in ``docs/FORMAL_MODEL.md``.  Error-level findings
are defects under which SAT verdicts are meaningless (dangling
references) or foregone (a statically unobservable state); warnings are
likely misconfigurations that keep the model well defined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.problem import ObservabilityProblem
from ..core.specs import Property, ResiliencySpec
from ..scada.network import ScadaNetwork
from .diagnostics import Diagnostic, LintReport, Severity
from .flow import disjoint_delivery_flow

__all__ = ["lint_case"]


def lint_case(network: ScadaNetwork,
              problem: Optional[ObservabilityProblem] = None,
              spec: Optional[ResiliencySpec] = None) -> LintReport:
    """Run every applicable configuration rule.

    Spec-dependent rules (SCADA013/SCADA014, and SCADA009's severity
    upgrade) only fire when *spec* is given.
    """
    report = LintReport(subject=network.name)
    _check_structure(network, report)
    _check_security_tables(network, report)
    delivering = _check_delivery(network, report, spec)
    if problem is not None:
        _check_coverage(network, problem, report)
        if spec is not None:
            _check_redundancy(network, problem, spec, report, delivering)
            _check_security_indices(network, problem, spec, report)
    return report


# ----------------------------------------------------------------------
# Structural rules: SCADA001-006, SCADA017, SCADA018
# ----------------------------------------------------------------------

def _check_structure(network: ScadaNetwork, report: LintReport) -> None:
    for device in network.duplicate_devices:
        report.append(Diagnostic(
            "SCADA004", Severity.ERROR,
            f"device {device.device_id} ({device.dtype.value}) is defined "
            f"again and shadowed by the first definition",
            location=f"device {device.device_id}",
            hint="remove the duplicate definition or renumber the device"))

    if not network.has_mtu:
        report.append(Diagnostic(
            "SCADA005", Severity.ERROR,
            "the device inventory has no MTU, so no measurement can be "
            "delivered",
            hint="declare exactly one 'mtu = <id>' device"))

    topology = network.topology
    for link in topology.dangling_links:
        unknown = [end for end in (link.a, link.b)
                   if end not in network.devices]
        report.append(Diagnostic(
            "SCADA017", Severity.ERROR,
            f"link {link.index} ({link.a}, {link.b}) references unknown "
            f"device{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(str, unknown))}",
            location=f"link {link.index}",
            hint="declare the device or remove the link"))
    for link in topology.parallel_links:
        report.append(Diagnostic(
            "SCADA018", Severity.WARNING,
            f"link {link.index} duplicates the ({link.node_pair[0]}, "
            f"{link.node_pair[1]}) connection; the model treats links as "
            f"a simple graph, so the extra link is ignored",
            location=f"link {link.index}"))
    for link in topology.duplicate_link_indices:
        report.append(Diagnostic(
            "SCADA018", Severity.WARNING,
            f"link index {link.index} is reused; the later definition "
            f"({link.a}, {link.b}) is ignored",
            location=f"link {link.index}"))

    seen_measurements: Dict[int, int] = {}
    for ied_id in sorted(network.measurement_map):
        msrs = network.measurement_map[ied_id]
        device = network.devices.get(ied_id)
        if device is None:
            report.append(Diagnostic(
                "SCADA001", Severity.ERROR,
                f"measurements {sorted(msrs)} are mapped to device "
                f"{ied_id}, which does not exist",
                location=f"device {ied_id}",
                hint="declare the IED or fix the measurement map"))
            continue
        if not device.is_ied:
            report.append(Diagnostic(
                "SCADA002", Severity.ERROR,
                f"device {ied_id} is a {device.dtype.value} but carries "
                f"measurements {sorted(msrs)}; only IEDs take measurements",
                location=f"device {ied_id}"))
            continue
        for z in msrs:
            if z in seen_measurements:
                report.append(Diagnostic(
                    "SCADA003", Severity.ERROR,
                    f"measurement {z} is assigned to IED {ied_id} but "
                    f"already belongs to IED {seen_measurements[z]}",
                    location=f"measurement {z}",
                    hint="a measurement has exactly one source IED"))
            else:
                seen_measurements[z] = ied_id


def _check_security_tables(network: ScadaNetwork,
                           report: LintReport) -> None:
    for (a, b), profiles in sorted(network.pair_security.items()):
        unknown = [end for end in (a, b) if end not in network.devices]
        if unknown:
            report.append(Diagnostic(
                "SCADA006", Severity.ERROR,
                f"security profile for pair ({a}, {b}) references unknown "
                f"device{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(map(str, unknown))}",
                location=f"pair ({a}, {b})"))
        broken = sorted({p.algorithm for p in profiles
                         if p.algorithm in network.policy.broken})
        if broken:
            report.append(Diagnostic(
                "SCADA015", Severity.WARNING,
                f"pair ({a}, {b}) is configured with broken "
                f"algorithm{'s' if len(broken) > 1 else ''} "
                f"{', '.join(broken)}; these never count toward "
                f"authentication or integrity",
                location=f"pair ({a}, {b})",
                hint="replace with a profile from the policy tables"))


# ----------------------------------------------------------------------
# Delivery rules: SCADA007, SCADA008, SCADA009
# ----------------------------------------------------------------------

def _check_delivery(network: ScadaNetwork, report: LintReport,
                    spec: Optional[ResiliencySpec]) -> Set[int]:
    """Check every field device's path to the MTU.

    Returns the set of IEDs with at least one assured path — the
    sources the redundancy rule may count.
    """
    delivering: Set[int] = set()
    if not network.has_mtu:
        return delivering
    mtu = network.mtu_id
    secured_matters = spec is not None and spec.property.uses_security
    for device_id in network.field_device_ids:
        if not network.topology.reachable(device_id, mtu):
            report.append(Diagnostic(
                "SCADA007", Severity.ERROR,
                f"{network.label(device_id)} has no topological route to "
                f"the MTU; its data can never be delivered",
                location=f"device {device_id}",
                hint="add a link toward the RTU hierarchy"))
            continue
        if device_id not in network.ied_ids:
            continue
        try:
            assured = network.assured_paths(device_id)
            secured = network.secured_paths(device_id)
        except RuntimeError:
            # Path enumeration blew the max_paths cap; delivery exists.
            delivering.add(device_id)
            continue
        if not assured:
            report.append(Diagnostic(
                "SCADA008", Severity.ERROR,
                f"{network.label(device_id)} is connected but protocol or "
                f"crypto pairing fails on every forwarding path, so "
                f"assured delivery is impossible",
                location=f"device {device_id}",
                hint="give each hop a shared protocol and a shared "
                     "crypto profile"))
            continue
        delivering.add(device_id)
        if not secured and network.measurements_of(device_id):
            report.append(Diagnostic(
                "SCADA009",
                Severity.ERROR if secured_matters else Severity.WARNING,
                f"{network.label(device_id)} has assured but no secured "
                f"path: no route is both authenticated and integrity "
                f"protected on every hop, so its measurements never count "
                f"toward secured observability",
                location=f"device {device_id}",
                hint="upgrade the hop profiles per the crypto policy "
                     "tables"))
    return delivering


# ----------------------------------------------------------------------
# Coverage rules: SCADA010, SCADA011, SCADA012, SCADA016
# ----------------------------------------------------------------------

def _check_coverage(network: ScadaNetwork, problem: ObservabilityProblem,
                    report: LintReport) -> None:
    mapped = set(network.assigned_measurements())
    known = set(problem.state_sets)
    # Only measurements on real IEDs can ever be delivered; a map entry
    # pointing at a missing device already draws SCADA001.
    valid_mapped = set()
    for ied_id, msrs in network.measurement_map.items():
        device = network.devices.get(ied_id)
        if device is not None and device.is_ied:
            valid_mapped.update(msrs)

    for z in sorted(mapped - known):
        report.append(Diagnostic(
            "SCADA011", Severity.WARNING,
            f"measurement {z} is mapped to IED "
            f"{network.ied_of_measurement(z)} but the observability "
            f"problem does not define it; its deliveries are ignored",
            location=f"measurement {z}"))
    for z in sorted(known - mapped):
        report.append(Diagnostic(
            "SCADA012", Severity.WARNING,
            f"measurement {z} exists in the observability problem but no "
            f"IED takes it; it can never be delivered",
            location=f"measurement {z}",
            hint="map it to an IED or drop it from the Jacobian"))

    usable = valid_mapped & known if mapped else known
    for state in problem.states():
        covering = [z for z in problem.measurements_covering(state)
                    if z in usable]
        if not covering:
            report.append(Diagnostic(
                "SCADA010", Severity.ERROR,
                f"state {state} is covered by no mapped measurement; the "
                f"system is unobservable before any device fails",
                location=f"state {state}",
                hint="add a measurement whose Jacobian row touches the "
                     "state"))

    if problem.num_components < problem.num_states:
        report.append(Diagnostic(
            "SCADA016", Severity.ERROR,
            f"only {problem.num_components} unique measurement groups "
            f"exist for {problem.num_states} states; observability needs "
            f"at least one unique measurement per state",
            hint="add measurements of distinct electrical components"))


# ----------------------------------------------------------------------
# Redundancy rules: SCADA013, SCADA014
# ----------------------------------------------------------------------

def _check_redundancy(network: ScadaNetwork,
                      problem: ObservabilityProblem,
                      spec: ResiliencySpec,
                      report: LintReport,
                      delivering: Set[int]) -> None:
    if not network.has_mtu:
        return
    budget = spec.budget
    use_secured = spec.property.uses_security
    field = set(network.field_device_ids)
    ied_set = set(network.ied_ids)
    mapped = set(network.assigned_measurements())

    # Per-state covering IEDs (only delivering ones can contribute).
    for state in problem.states():
        covering_ieds = sorted({
            network.ied_of_measurement(z)
            for z in problem.measurements_covering(state) if z in mapped})
        sources = [i for i in covering_ieds if i in delivering]
        if not sources:
            continue  # SCADA010/008 already explain the situation.

        if spec.property is Property.BAD_DATA_DETECTABILITY:
            try:
                secured_covering = [
                    z for z in problem.measurements_covering(state)
                    if z in mapped
                    and network.secured_paths(network.ied_of_measurement(z))]
            except RuntimeError:
                continue  # path enumeration blew the cap; stay silent
            if len(secured_covering) < spec.r + 1:
                report.append(Diagnostic(
                    "SCADA014", Severity.ERROR,
                    f"state {state} is covered by only "
                    f"{len(secured_covering)} securely deliverable "
                    f"measurements, below the r+1 = {spec.r + 1} that "
                    f"bad-data detectability requires before any failure",
                    location=f"state {state}"))
                continue

        paths: List[List[int]] = []
        try:
            for ied in sources:
                paths.extend(network.secured_paths(ied) if use_secured
                             else network.assured_paths(ied))
        except RuntimeError:
            continue  # path enumeration blew the cap; stay silent
        if not paths:
            continue
        result = disjoint_delivery_flow(
            sources, paths, field, network.mtu_id,
            bound=budget.max_failures)
        if result.survives(budget.max_failures):
            continue
        cut = result.cut_devices
        cut_text = ", ".join(network.label(d) for d in cut)
        if not budget.is_split:
            report.append(Diagnostic(
                "SCADA013", Severity.ERROR,
                f"state {state} has only {result.flow} device-disjoint "
                f"delivery routes; failing {{{cut_text}}} "
                f"({len(cut)} ≤ k = {budget.k} devices) silences it",
                location=f"state {state}",
                hint="add redundant IEDs, dual-homed links, or RTU "
                     "cross-links"))
        else:
            cut_ieds = sum(1 for d in cut if d in ied_set)
            cut_rtus = len(cut) - cut_ieds
            assert budget.k1 is not None and budget.k2 is not None
            within = cut_ieds <= budget.k1 and cut_rtus <= budget.k2
            report.append(Diagnostic(
                "SCADA013",
                Severity.ERROR if within else Severity.WARNING,
                f"state {state} has only {result.flow} device-disjoint "
                f"delivery routes against budget (k1, k2) = "
                f"({budget.k1}, {budget.k2}); a minimum cut is "
                f"{{{cut_text}}} ({cut_ieds} IEDs, {cut_rtus} RTUs)"
                + ("" if within else
                   ", which does not itself respect the split budget"),
                location=f"state {state}",
                hint="add redundant IEDs, dual-homed links, or RTU "
                     "cross-links"))


# ----------------------------------------------------------------------
# Security-index rules: SCADA019, SCADA020
# ----------------------------------------------------------------------

def _check_security_indices(network: ScadaNetwork,
                            problem: ObservabilityProblem,
                            spec: ResiliencySpec,
                            report: LintReport) -> None:
    """Warn on unique measurement groups whose component-level security
    index (min failures silencing every redundant measurement of the
    component — see :mod:`repro.graphs.security_index`) is within the
    spec's failure budget: a budget-compliant attack erases the whole
    component from the unique-measurement tally."""
    if not network.has_mtu:
        return
    # Imported lazily: repro.graphs pulls in the engine package, which
    # imports this package's public API during its own lint gate.
    from ..graphs.security_index import StructuralAnalysis

    budget = spec.budget.max_failures
    try:
        analysis = StructuralAnalysis(network, problem)
        modes = [(False, "SCADA019")]
        if spec.property.uses_security:
            modes.append((True, "SCADA020"))
        for secured, code in modes:
            for group in problem.unique_groups:
                result = analysis.group_cut(group, secured=secured)
                if result.size == 0 or not result.cuttable \
                        or result.size > budget:
                    continue
                members = ",".join(map(str, group))
                cut_text = ", ".join(network.label(d)
                                     for d in result.devices)
                mode = "secured" if secured else "assured"
                report.append(Diagnostic(
                    code, Severity.WARNING,
                    f"unique measurement group {{{members}}} has "
                    f"{mode} security index {result.size}: failing "
                    f"{{{cut_text}}} silences every redundant "
                    f"measurement of the component within the failure "
                    f"budget ({result.size} <= {budget})",
                    location=f"group {group[0]}",
                    hint="add a redundant IED for the component on a "
                         "device-disjoint route"))
    except RuntimeError:
        return  # path enumeration blew the cap; stay silent
