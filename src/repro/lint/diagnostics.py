"""The structured-diagnostic core shared by both lint layers.

A :class:`Diagnostic` is one finding: a stable rule code (``SCADA001``,
``CNF003``, ...), a severity, a human location string, a message, and an
optional fix hint.  :class:`LintReport` aggregates findings and renders
them as text or JSON with deterministic ordering and the CLI exit-code
convention (errors ⇒ non-zero).

Rule codes are registered in :data:`RULES`; ``docs/FORMAL_MODEL.md``
lists the formal justification of each (which paper constraint the rule
pre-checks).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Severity", "Diagnostic", "LintReport", "RULES"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings invalidate verification verdicts (the analyzer
    refuses to certify such a configuration); ``WARNING`` findings are
    likely misconfigurations that keep the model well defined; ``INFO``
    findings are observations (dead encoding variables, simplification
    opportunities).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: rule code → one-line title.  The single registry both layers draw
#: from; docs/FORMAL_MODEL.md carries the formal justification.
RULES: Dict[str, str] = {
    # Layer 1 — configuration rules.
    "SCADA001": "measurement mapped to an unknown device",
    "SCADA002": "measurements carried by a non-IED device",
    "SCADA003": "measurement assigned to multiple IEDs",
    "SCADA004": "duplicate (shadowed) device definition",
    "SCADA005": "no MTU in the device inventory",
    "SCADA006": "security profile references an unknown device",
    "SCADA007": "field device unreachable from the MTU",
    "SCADA008": "IED has no assured delivery path",
    "SCADA009": "IED has no secured delivery path",
    "SCADA010": "state with zero measurement coverage",
    "SCADA011": "mapped measurement unknown to the observability problem",
    "SCADA012": "observability-problem measurement not mapped to any IED",
    "SCADA013": "delivery redundancy below the failure budget",
    "SCADA014": "state coverage below the bad-data budget r",
    "SCADA015": "broken cryptographic algorithm in a security profile",
    "SCADA016": "fewer unique measurement groups than states",
    "SCADA017": "link references an unknown device",
    "SCADA018": "parallel or duplicate link definition",
    "SCADA019": "measurement group silenceable within the failure budget",
    "SCADA020": ("secured delivery of a measurement group silenceable "
                 "within the failure budget"),
    # Layer 2 — CNF encoding rules.
    "CNF001": "unconstrained variable (appears in no clause)",
    "CNF002": "tautological clause dropped at construction",
    "CNF003": "duplicate clause",
    "CNF004": "pure literal",
    # Input handling.
    "CONFIG001": "configuration file cannot be parsed",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unregistered rule code {self.code!r}")

    @property
    def title(self) -> str:
        return RULES[self.code]

    def format(self) -> str:
        where = f" at {self.location}" if self.location else ""
        text = f"{self.severity.value}[{self.code}]{where}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> Dict[str, str]:
        out = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location:
            out["location"] = self.location
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class LintReport:
    """An ordered collection of diagnostics plus rendering helpers."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def append(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> List[Diagnostic]:
        """Deterministic order: severity, then code, then location."""
        return sorted(self.diagnostics,
                      key=lambda d: (d.severity.rank, d.code, d.location))

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.sorted() if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def exit_code(self) -> int:
        """CLI convention: 0 clean (warnings allowed), 1 with errors."""
        return 1 if self.has_errors else 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        counts = {s: len(self.by_severity(s)) for s in Severity}
        parts = [f"{counts[s]} {s.value}{'s' if counts[s] != 1 else ''}"
                 for s in Severity if counts[s]]
        verdict = ", ".join(parts) if parts else "clean"
        subject = f"{self.subject}: " if self.subject else ""
        return f"{subject}{verdict}"

    def to_text(self, min_severity: Optional[Severity] = None) -> str:
        threshold = (min_severity or Severity.INFO).rank
        lines = [d.format() for d in self.sorted()
                 if d.severity.rank <= threshold]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, min_severity: Optional[Severity] = None) -> str:
        threshold = (min_severity or Severity.INFO).rank
        payload = {
            "subject": self.subject,
            "diagnostics": [d.as_dict() for d in self.sorted()
                            if d.severity.rank <= threshold],
            "counts": {s.value: len(self.by_severity(s)) for s in Severity},
            "exit_code": self.exit_code(),
        }
        return json.dumps(payload, indent=2)
