"""Static analysis for SCADA configurations and CNF encodings.

Two layers over one structured-diagnostic core:

* :func:`lint_case` — polynomial-time configuration rules (``SCADA*``)
  over :class:`~repro.scada.network.ScadaNetwork` and
  :class:`~repro.core.problem.ObservabilityProblem`;
* :func:`analyze_cnf` / :func:`preprocess_cnf` — encoding diagnostics
  (``CNF*``) and a correctness-preserving simplifier for the
  Tseitin-emitted formulas.

``docs/FORMAL_MODEL.md`` documents every rule code with its formal
justification.
"""

from .config_rules import lint_case
from .diagnostics import RULES, Diagnostic, LintReport, Severity
from .encoding import analyze_cnf
from .flow import DisjointFlowResult, disjoint_delivery_flow
from .preprocess import PreprocessResult, preprocess_cnf

__all__ = [
    "Diagnostic",
    "DisjointFlowResult",
    "LintReport",
    "PreprocessResult",
    "RULES",
    "Severity",
    "analyze_cnf",
    "disjoint_delivery_flow",
    "lint_case",
    "preprocess_cnf",
]
