"""The delivery graph: the union of enumerated delivery paths.

The SAT model's delivery semantics are defined over the *enumerated*
path family: ``D_Z`` is the disjunction of "every device of path p is
alive" over the assured (or secured) paths the topology pass produced,
with routers and the MTU pinned alive.  Silencing a set of sources
therefore costs exactly the minimum *transversal* (hitting set) of
their combined path family, counted in field devices.

:class:`DeliveryGraph` views that family as a flow network and answers
silencing-cost queries by min vertex cut (:func:`~repro.graphs.flow.
unit_vertex_cut`).  Two soundness regimes apply, and every
:class:`CutResult` says which one it is in:

* **Witness (always sound).**  A min cut of the path union *is* a
  transversal: failing exactly those devices falsifies every enumerated
  path, hence ``D_Z`` for every covered measurement.  The cut size is
  therefore always a sound **upper bound** on the SAT silencing cost.

* **Exact (certified).**  The cut equals the min transversal — making
  it a sound **lower bound** too — iff every simple source→sink route
  of the union graph is itself an *enumerated* path.  The gap arises
  only from *hybrid* routes: a route stitched out of segments of
  different enumerated paths through shared forwarders, which the flow
  must also cut even though no ``D_Z`` depends on it.
  :attr:`DeliveryGraph.certified` checks the condition directly: a DFS
  enumerates the union graph's simple source→sink routes and verifies
  each is a member of the path family (budgeted — a union graph with
  far more routes than enumerated paths is reported uncertified rather
  than searched exhaustively).  Both sides of the comparison use the
  same enumerated family the SAT encoder reads, so truncation caps
  (``max_paths``, ``max_path_length``) affect both engines identically
  and do not by themselves break exactness.

Uncertified graphs still screen soundly — their cuts prune as upper
bounds (witnesses) only, never as lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..obs.tracer import count as obs_count
from ..scada.network import ScadaNetwork
from .flow import INF, unit_vertex_cut

__all__ = ["CutResult", "DeliveryGraph"]


@dataclass(frozen=True)
class CutResult:
    """One silencing-cost query answer.

    ``size`` is the min-cut value (:data:`~repro.graphs.flow.INF` when
    no failure set of field devices can cut the sources off — e.g. a
    protected source wired straight to the MTU).  ``devices`` is a
    concrete witness cut of that size.  ``certified`` marks the exact
    regime: the size equals the SAT silencing cost, not just an upper
    bound on it.
    """

    size: int
    devices: Tuple[int, ...]
    certified: bool

    @property
    def cuttable(self) -> bool:
        return self.size < INF


class DeliveryGraph:
    """The enumerated assured (or secured) delivery structure.

    Path enumeration runs once per field device at construction; cut
    queries are cached by (source set, protected set).  Construction
    propagates the topology pass's ``RuntimeError`` when the
    ``max_paths`` cap is hit — exactly the configurations where the SAT
    encoder fails too, so the structural pass never out-claims it.
    """

    def __init__(self, network: ScadaNetwork, secured: bool = False) -> None:
        self.network = network
        self.secured = secured
        self._paths: Dict[int, List[Tuple[int, ...]]] = {}
        for device in network.field_device_ids:
            paths = (network.secured_paths(device) if secured
                     else network.assured_paths(device))
            self._paths[device] = [tuple(p) for p in paths]
        self._field: Set[int] = set(network.field_device_ids)
        self._certified: Optional[bool] = None
        self._cut_cache: Dict[
            Tuple[FrozenSet[int], FrozenSet[int]], CutResult] = {}

    # ------------------------------------------------------------------

    def paths_of(self, device: int) -> List[Tuple[int, ...]]:
        return list(self._paths.get(device, []))

    def deliverable(self, device: int) -> bool:
        """Whether the device has any enumerated delivery path."""
        return bool(self._paths.get(device))

    @property
    def certified(self) -> bool:
        """Whether cut sizes are exact wrt the SAT model (see module
        docstring); computed once over the full path union."""
        if self._certified is None:
            self._certified = self._check_certificate()
        return self._certified

    def _check_certificate(self) -> bool:
        adjacency: Dict[int, Set[int]] = {}
        family: Set[Tuple[int, ...]] = set()
        for paths in self._paths.values():
            for path in paths:
                family.add(path)
                for a, b in zip(path, path[1:]):
                    adjacency.setdefault(a, set()).add(b)
        sink = self.network.mtu_id
        for source, own in self._paths.items():
            if not own:
                continue
            # A source's sub-union routes are a subset of the full
            # union's, so certifying every source here covers every
            # cut query over any source subset.
            budget = max(64, 4 * len(own))
            if not _routes_enumerated(adjacency, source, sink,
                                      family, budget):
                return False
        return True

    # ------------------------------------------------------------------

    def cut(self, sources: Iterable[int],
            protect: Iterable[int] = ()) -> CutResult:
        """Min field-device failures silencing every *source* at once.

        *protect* devices are excluded from the failure model (infinite
        capacity) — the command-deliverability query protects the
        target device itself, asking for the cheapest attack that
        leaves it alive yet unreachable.  Sources without paths
        contribute nothing (their delivery is already false at zero
        failures); with no deliverable source at all the cost is zero.
        """
        key = (frozenset(sources), frozenset(protect))
        cached = self._cut_cache.get(key)
        if cached is not None:
            return cached
        paths: List[Tuple[int, ...]] = []
        for device in sorted(key[0]):
            paths.extend(self._paths.get(device, []))
        if not paths:
            outcome = CutResult(0, (), True)
            self._cut_cache[key] = outcome
            return outcome
        obs_count("graphs.flow.queries")
        result = unit_vertex_cut(
            sorted(key[0]), paths, self._field, self.network.mtu_id,
            protect=key[1])
        if result.flow >= INF:
            outcome = CutResult(INF, (), self.certified)
        else:
            outcome = CutResult(result.flow, result.cut_vertices,
                                self.certified)
        self._cut_cache[key] = outcome
        return outcome

    def __repr__(self) -> str:
        mode = "secured" if self.secured else "assured"
        total = sum(len(p) for p in self._paths.values())
        return (f"DeliveryGraph({self.network.name!r}, {mode}, "
                f"paths={total})")


def _routes_enumerated(adjacency: Dict[int, Set[int]], source: int,
                       sink: int, family: Set[Tuple[int, ...]],
                       budget: int) -> bool:
    """Whether every simple *source*→*sink* route of the union graph is
    a member of *family*, giving up (``False``) past *budget* routes."""
    count = 0
    path: List[int] = [source]
    on_path: Set[int] = {source}

    def walk(current: int) -> bool:
        nonlocal count
        for nxt in sorted(adjacency.get(current, ())):
            if nxt == sink:
                count += 1
                if count > budget:
                    return False
                if tuple(path) + (sink,) not in family:
                    return False
            elif nxt not in on_path:
                on_path.add(nxt)
                path.append(nxt)
                deeper = walk(nxt)
                path.pop()
                on_path.remove(nxt)
                if not deeper:
                    return False
        return True

    return walk(source)
