"""The shared max-flow / min-cut kernel.

One Edmonds–Karp implementation serves every structural pass in the
repo: the lint redundancy rule (SCADA013), the security-index analyzer
(:mod:`repro.graphs.security_index`), and the delivery-graph queries
behind screening and cross-checking.  Two layers are exposed:

* :class:`FlowNetwork` — a plain integer-capacity digraph with
  ``max_flow`` (optionally bounded) and min-cut extraction from the
  residual source side; and
* :func:`unit_vertex_cut` — the node-split reduction shared by every
  SCADA delivery question: *how many unit-capacity vertices must be
  removed to disconnect a set of sources from a sink, given the union
  of concrete paths between them?*  By Menger's theorem the answer is
  the max number of vertex-disjoint routes, i.e. max-flow after
  splitting each vertex ``v`` into ``v_in → v_out``.

Capacities are non-negative integers; :data:`INF` is the effectively
infinite capacity given to vertices outside the failure model (routers,
the MTU, explicitly *protected* devices).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "INF",
    "FlowNetwork",
    "MaxFlowResult",
    "VertexCutResult",
    "unit_vertex_cut",
]

#: Effectively-infinite arc capacity (device counts are small).
INF = 1 << 30


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of one :meth:`FlowNetwork.max_flow` computation."""

    #: The flow value reached when the search stopped.
    flow: int
    #: True when an early-exit ``bound`` was given and the flow exceeded
    #: it; the search stopped before reaching the true maximum, so no
    #: min cut is available.
    bounded: bool
    #: Nodes reachable from the source in the final residual graph
    #: (empty when ``bounded``).  Arcs leaving this set form a min cut.
    source_side: FrozenSet[int]


@dataclass(frozen=True)
class VertexCutResult:
    """Outcome of :func:`unit_vertex_cut`."""

    #: Max number of vertex-disjoint source→sink routes (= min cut size
    #: when every route crosses a unit vertex; may exceed :data:`INF`
    #: when some route avoids them entirely).
    flow: int
    #: Unit vertices forming a minimum vertex cut (empty when the flow
    #: exceeded the requested bound and the search stopped early).
    cut_vertices: Tuple[int, ...]
    #: True when the early-exit bound was hit.
    bounded: bool


class FlowNetwork:
    """An integer-capacity digraph supporting max-flow / min-cut.

    Parallel arcs merge (capacities add); zero-capacity arcs register
    their endpoints but carry nothing.  The network itself is immutable
    under :meth:`max_flow` — each call works on a residual copy, so one
    network can answer many source/sink queries.
    """

    def __init__(self) -> None:
        self._caps: Dict[int, Dict[int, int]] = {}

    def add_node(self, node: int) -> None:
        self._caps.setdefault(node, {})

    def add_arc(self, u: int, w: int, capacity: int) -> None:
        """Add a directed arc; parallel arcs merge additively."""
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on ({u}, {w})")
        self.add_node(u)
        self.add_node(w)
        self._caps[u][w] = self._caps[u].get(w, 0) + capacity

    @property
    def nodes(self) -> List[int]:
        return sorted(self._caps)

    def has_node(self, node: int) -> bool:
        return node in self._caps

    def capacity(self, u: int, w: int) -> int:
        return self._caps.get(u, {}).get(w, 0)

    # ------------------------------------------------------------------

    def max_flow(self, source: int, sink: int,
                 bound: Optional[int] = None) -> MaxFlowResult:
        """Edmonds–Karp max flow from *source* to *sink*.

        With *bound*, augmentation stops as soon as the flow exceeds it
        (the caller only needs to know which side of the bound the
        capacity falls on); the result is then flagged ``bounded`` and
        carries no cut.  A missing source or sink yields zero flow.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        if source not in self._caps or sink not in self._caps:
            return MaxFlowResult(0, False, frozenset(
                {source} if source in self._caps else set()))
        residual: Dict[int, Dict[int, int]] = {
            u: dict(nbrs) for u, nbrs in self._caps.items()}
        for u, nbrs in self._caps.items():
            for w in nbrs:
                residual[w].setdefault(u, 0)
        flow = 0
        while bound is None or flow <= bound:
            parent = _augmenting_path(residual, source, sink)
            if parent is None:
                break
            bottleneck = INF
            w = sink
            while w != source:
                u = parent[w]
                bottleneck = min(bottleneck, residual[u][w])
                w = u
            w = sink
            while w != source:
                u = parent[w]
                residual[u][w] -= bottleneck
                residual[w][u] += bottleneck
                w = u
            flow += bottleneck
        if bound is not None and flow > bound:
            return MaxFlowResult(flow, True, frozenset())
        return MaxFlowResult(
            flow, False, frozenset(_residual_reachable(residual, source)))

    def min_cut_arcs(self, result: MaxFlowResult) -> List[Tuple[int, int]]:
        """The saturated arcs crossing the residual source side.

        By max-flow/min-cut these form a minimum cut; their original
        capacities sum to ``result.flow``.  Empty when the search was
        ``bounded``.
        """
        side = result.source_side
        return sorted(
            (u, w)
            for u in side
            for w, cap in self._caps.get(u, {}).items()
            if cap > 0 and w not in side)


# ----------------------------------------------------------------------
# The node-split vertex-cut reduction
# ----------------------------------------------------------------------

def unit_vertex_cut(sources: Iterable[int],
                    paths: Iterable[Sequence[int]],
                    unit_vertices: Set[int],
                    sink: int,
                    bound: Optional[int] = None,
                    protect: Iterable[int] = ()) -> VertexCutResult:
    """Minimum unit-vertex cut separating *sources* from *sink*.

    The graph is the union of the concrete *paths* (vertex-id sequences
    ending at the sink).  Every vertex in *unit_vertices* — except those
    in *protect* — gets a capacity-1 split arc (removing it costs one);
    all other vertices and all path edges are uncuttable (:data:`INF`).
    Sources feed through their own split arc, so a source that is itself
    a unit vertex still counts toward the cut.

    Vertex ids must be non-negative (the node-split encoding maps vertex
    ``v`` to nodes ``2v``/``2v+1`` and reserves ``-1`` for the
    super-source).  Sources that appear on no path contribute nothing;
    with no usable source or an absent sink the result is zero flow and
    an empty cut (nothing needs cutting).
    """
    source_list = sorted(set(sources))
    path_list = [tuple(p) for p in paths]
    if not source_list or not path_list:
        return VertexCutResult(0, (), False)
    unit = set(unit_vertices) - set(protect)

    def node_in(v: int) -> int:
        if v < 0:
            raise ValueError(f"vertex ids must be non-negative, got {v}")
        return 2 * v

    def node_out(v: int) -> int:
        return 2 * v + 1

    network = FlowNetwork()
    split_cap: Dict[int, int] = {}
    for path in path_list:
        for vertex in path:
            if vertex not in split_cap:
                split_cap[vertex] = 1 if vertex in unit else INF
                network.add_arc(node_in(vertex), node_out(vertex),
                                split_cap[vertex])
        for a, b in zip(path, path[1:]):
            network.add_arc(node_out(a), node_in(b), INF)

    super_source = -1
    for vertex in source_list:
        if vertex in split_cap:
            network.add_arc(super_source, node_in(vertex), INF)
    sink_node = node_in(sink)
    if not network.has_node(sink_node) or not network.has_node(super_source):
        return VertexCutResult(0, (), False)

    result = network.max_flow(super_source, sink_node, bound=bound)
    if result.bounded:
        return VertexCutResult(result.flow, (), True)
    cut = sorted(
        vertex for vertex, cap in split_cap.items()
        if cap == 1
        and node_in(vertex) in result.source_side
        and node_out(vertex) not in result.source_side)
    return VertexCutResult(result.flow, tuple(cut), False)


# ----------------------------------------------------------------------

def _augmenting_path(residual: Dict[int, Dict[int, int]], source: int,
                     sink: int) -> Optional[Dict[int, int]]:
    """BFS for a shortest augmenting path; parent map or ``None``."""
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w, capacity in residual[u].items():
            if capacity > 0 and w not in parent:
                parent[w] = u
                if w == sink:
                    return parent
                queue.append(w)
    return None


def _residual_reachable(residual: Dict[int, Dict[int, int]],
                        source: int) -> Set[int]:
    seen = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w, capacity in residual[u].items():
            if capacity > 0 and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen
