"""Graph-theoretic static analysis of SCADA configurations.

A polynomial-time structural pass over the delivery topology and the
Jacobian sparsity: one shared max-flow/min-cut kernel
(:mod:`~repro.graphs.flow`), delivery-graph silencing-cost queries
(:mod:`~repro.graphs.delivery`), per-measurement security indices and
attack-cardinality brackets (:mod:`~repro.graphs.security_index`), and
the graph-vs-SAT cross-check behind ``repro audit``
(:mod:`~repro.graphs.crosscheck`).  Nothing in this package invokes the
SAT solver except the cross-check, which exists precisely to compare
the two engines.
"""

from .delivery import CutResult, DeliveryGraph
from .flow import (
    INF,
    FlowNetwork,
    MaxFlowResult,
    VertexCutResult,
    unit_vertex_cut,
)
from .security_index import IndexBounds, StructuralAnalysis

# The cross-check imports the engine (which never imports this package
# at module level); keep it last so the solver-free modules above are
# importable even while the engine package is mid-initialization.
from .crosscheck import CrossCheckReport, Disagreement, cross_check

__all__ = [
    "INF",
    "CrossCheckReport",
    "CutResult",
    "DeliveryGraph",
    "Disagreement",
    "FlowNetwork",
    "IndexBounds",
    "MaxFlowResult",
    "StructuralAnalysis",
    "VertexCutResult",
    "cross_check",
    "unit_vertex_cut",
]
