"""Security indices and attack-cardinality brackets, without the solver.

The companion line of work to the paper computes "how many components
must an attacker compromise?" structurally: per-measurement security
indices via min-cut (Hendrickx et al., arXiv:1204.6174; Sou et al.,
arXiv:1201.5019).  Translated to this repo's availability model, the
interesting quantities are all multi-source min vertex cuts of the
delivery graph:

* **security index of a measurement** — the minimum number of field-
  device failures silencing *every* measurement of its unique group
  (the paper's ``UMsrSet``: redundant measurements of one electrical
  component).  A single measurement alone is always silenced by its
  own IED, so the component-level index is the meaningful hardness
  measure, exactly as in the security-index literature where redundant
  meters of a quantity must all be attacked.
* **state criticality** — the minimum failures leaving a state with no
  delivered covering measurement.
* **attack-cardinality brackets** — per resiliency property, a bracket
  ``[lower, upper]`` on the minimal attack cardinality (the size of the
  smallest violating failure set), with a concrete witness realizing
  ``upper``.

Soundness contract (see :mod:`repro.graphs.delivery`): ``upper`` and
its witness are *always* sound — the witness is a real violating
failure set by construction.  ``lower`` is sound only when the
delivery graph's exactness certificate holds (``certified``); callers
must gate lower-bound pruning on that flag.  ``max resiliency`` is
``minimal attack cardinality − 1``, so the bracket translates directly
into search seeds for ``galloping_max_bounded``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.problem import ObservabilityProblem
from ..core.specs import Property
from ..scada.network import ScadaNetwork
from .delivery import CutResult, DeliveryGraph
from .flow import INF

__all__ = ["IndexBounds", "StructuralAnalysis"]

#: The exact zero bracket: the property is violated with no failures at
#: all — sound regardless of any certificate.
_ZERO_WITNESS: Tuple[int, ...] = ()


@dataclass(frozen=True)
class IndexBounds:
    """A bracket on the minimal attack cardinality of one property.

    ``lower``: no failure set smaller than this violates the property —
    sound only when ``certified``.  ``upper``: the size of ``witness``,
    a concrete violating failure set — always sound; ``None`` when the
    structural pass found no violating set at all (then ``lower`` is
    one past the device count: no attack exists, if certified).
    """

    property: Property
    lower: int
    upper: Optional[int]
    witness: Tuple[int, ...]
    certified: bool

    @property
    def exact(self) -> bool:
        """Whether the bracket pins the cardinality down exactly."""
        return (self.certified and self.upper is not None
                and self.lower == self.upper)

    def resiliency_upper(self, fallback: int) -> int:
        """Sound upper seed for the max-resiliency search (always)."""
        if self.upper is None:
            return fallback
        return min(fallback, self.upper - 1)

    def resiliency_lower(self) -> int:
        """Lower seed for the search — only sound when ``certified``."""
        return self.lower - 1

    def describe(self) -> str:
        upper = "∞" if self.upper is None else str(self.upper)
        tag = "exact" if self.exact else (
            "certified" if self.certified else "witness-only")
        return (f"{self.property.value}: minimal attack cardinality in "
                f"[{self.lower}, {upper}] ({tag})")


class StructuralAnalysis:
    """The polynomial structural pass over one configuration.

    Wraps one assured and one secured :class:`DeliveryGraph` (built
    lazily) and caches per-property brackets.  Never touches the SAT
    solver.
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem) -> None:
        self.network = network
        self.problem = problem
        self._graphs: Dict[bool, DeliveryGraph] = {}
        self._bounds: Dict[Tuple[Property, int], IndexBounds] = {}
        # Measurement → delivering IED, restricted to real IEDs (the
        # encoder pins everything else undelivered).
        self._ied_of: Dict[int, int] = {}
        for ied, msrs in network.measurement_map.items():
            device = network.devices.get(ied)
            if device is not None and device.is_ied:
                for z in msrs:
                    self._ied_of[z] = ied
        self._group_of: Dict[int, Tuple[int, ...]] = {}
        for group in problem.unique_groups:
            frozen = tuple(group)
            for z in frozen:
                self._group_of[z] = frozen

    # ------------------------------------------------------------------

    def graph(self, secured: bool = False) -> DeliveryGraph:
        existing = self._graphs.get(secured)
        if existing is None:
            existing = DeliveryGraph(self.network, secured=secured)
            self._graphs[secured] = existing
        return existing

    def certified(self, secured: bool = False) -> bool:
        return self.graph(secured).certified

    def _sources(self, measurements: Sequence[int],
                 graph: DeliveryGraph) -> List[int]:
        """Deliverable source IEDs behind *measurements*."""
        return sorted({
            self._ied_of[z] for z in measurements
            if z in self._ied_of and graph.deliverable(self._ied_of[z])})

    # ------------------------------------------------------------------
    # Indices
    # ------------------------------------------------------------------

    def group_cut(self, group: Sequence[int],
                  secured: bool = False) -> CutResult:
        """Min failures silencing every measurement of *group*."""
        graph = self.graph(secured)
        return graph.cut(self._sources(group, graph))

    def security_index(self, z: int, secured: bool = False) -> int:
        """The component-level security index of measurement *z*.

        Zero when *z* is unknown to the problem or its whole unique
        group is undeliverable (the component is unobserved before any
        failure).
        """
        group = self._group_of.get(z)
        if group is None:
            return 0
        return self.group_cut(group, secured=secured).size

    def security_indices(self, secured: bool = False) -> Dict[int, int]:
        return {z: self.security_index(z, secured=secured)
                for z in self.problem.measurement_indices}

    def state_cut(self, state: int, secured: bool = False) -> CutResult:
        """Min failures leaving *state* with no delivered coverage."""
        graph = self.graph(secured)
        sources = self._sources(
            self.problem.measurements_covering(state), graph)
        if not sources:
            return CutResult(0, _ZERO_WITNESS, True)
        return graph.cut(sources)

    def state_criticality(self, state: int, secured: bool = False) -> int:
        return self.state_cut(state, secured=secured).size

    # ------------------------------------------------------------------
    # Per-property attack-cardinality brackets
    # ------------------------------------------------------------------

    def attack_bounds(self, prop: Property, r: int = 1) -> IndexBounds:
        """The cached ``[lower, upper]`` bracket for one property."""
        key = (prop, r if prop is Property.BAD_DATA_DETECTABILITY else 0)
        cached = self._bounds.get(key)
        if cached is None:
            if prop is Property.COMMAND_DELIVERABILITY:
                cached = self._command_bounds()
            elif prop is Property.BAD_DATA_DETECTABILITY:
                cached = self._bad_data_bounds(r)
            else:
                cached = self._observability_bounds(prop)
            self._bounds[key] = cached
        return cached

    def _zero(self, prop: Property) -> IndexBounds:
        return IndexBounds(prop, 0, 0, _ZERO_WITNESS, True)

    def _observability_bounds(self, prop: Property) -> IndexBounds:
        """Bracket for (secured) observability.

        The negated property is a disjunction: (A) some state loses all
        delivered coverage, or (B) fewer than ``n`` unique groups stay
        delivered.  For (A) the per-state min cut is both a witness and
        (certified) a tight cost.  For (B), silencing ``need`` of the
        ``c0`` pre-failure-deliverable groups suffices; any violating
        set must fully silence at least ``need`` groups, so its size is
        at least the ``need``-th smallest group cost (certified lower),
        while the union of the ``need`` cheapest group cuts is a
        concrete witness (upper).
        """
        secured = prop is Property.SECURED_OBSERVABILITY
        graph = self.graph(secured)
        certified = graph.certified
        state_best: Optional[CutResult] = None
        for state in self.problem.states():
            result = self.state_cut(state, secured)
            if result.size == 0:
                return self._zero(prop)
            if state_best is None or result.size < state_best.size:
                state_best = result
        assert state_best is not None  # num_states >= 1
        group_cuts: List[CutResult] = []
        for group in self.problem.unique_groups:
            result = self.group_cut(group, secured)
            if result.size == 0:
                continue  # not deliverable before any failure
            group_cuts.append(result)
        n = self.problem.num_states
        if len(group_cuts) < n:
            return self._zero(prop)
        need = len(group_cuts) - n + 1
        group_cuts.sort(key=lambda c: c.size)
        cheapest = group_cuts[:need]
        unique_lower = cheapest[-1].size
        union: Set[int] = set()
        for result in cheapest:
            union.update(result.devices)
        lower = min(state_best.size, unique_lower)
        if len(union) < state_best.size:
            upper, witness = len(union), tuple(sorted(union))
        else:
            upper, witness = state_best.size, state_best.devices
        return IndexBounds(prop, lower, upper, witness, certified)

    #: Max covering IEDs per state for the exact subset enumeration in
    #: the bad-data bracket (2^10 cut queries worst case, all cached).
    _BAD_DATA_EXACT_LIMIT = 10

    def _bad_data_bounds(self, r: int) -> IndexBounds:
        """Bracket for (k, r) bad-data detectability.

        The negation asks for a state with at most ``r`` secured
        covering measurements.  A violating set silences some set ``S``
        of covering IEDs whose measurements total at least
        ``need = m - r``, at cost ``cut(S)``; since ``cut`` is monotone
        in ``S``, the per-state optimum is the min over *minimal*
        sufficient ``S`` — enumerated exactly when the state has few
        covering IEDs, bracketed soundly otherwise.  The property
        bracket is the min over states.
        """
        prop = Property.BAD_DATA_DETECTABILITY
        graph = self.graph(secured=True)
        certified = graph.certified
        best_lower: Optional[int] = None
        best_upper: Optional[int] = None
        best_witness: Tuple[int, ...] = _ZERO_WITNESS
        for state in self.problem.states():
            coverage: Dict[int, int] = {}
            for z in self.problem.measurements_covering(state):
                ied = self._ied_of.get(z)
                if ied is not None and graph.deliverable(ied):
                    coverage[ied] = coverage.get(ied, 0) + 1
            m = sum(coverage.values())
            if m <= r:
                return self._zero(prop)
            need = m - r
            lower_x, upper_x, witness_x = self._coverage_drop_cost(
                coverage, need, graph)
            if best_lower is None or lower_x < best_lower:
                best_lower = lower_x
            if best_upper is None or upper_x < best_upper:
                best_upper, best_witness = upper_x, witness_x
        assert best_lower is not None and best_upper is not None
        return IndexBounds(prop, best_lower, best_upper, best_witness,
                           certified)

    def _coverage_drop_cost(self, coverage: Dict[int, int], need: int,
                            graph: DeliveryGraph
                            ) -> Tuple[int, int, Tuple[int, ...]]:
        """Min failures silencing IEDs worth >= *need* measurements.

        Returns ``(lower, upper, witness)``; lower == upper when the
        exact subset enumeration ran (few covering IEDs).
        """
        ieds = sorted(coverage)
        if len(ieds) <= self._BAD_DATA_EXACT_LIMIT:
            best: Optional[CutResult] = None
            for size in range(1, len(ieds) + 1):
                for subset in combinations(ieds, size):
                    total = sum(coverage[i] for i in subset)
                    if total < need:
                        continue
                    if any(total - coverage[i] >= need for i in subset):
                        continue  # a proper subset already suffices
                    result = graph.cut(subset)
                    if best is None or result.size < best.size:
                        best = result
                if best is not None and best.size <= 1:
                    break  # a violating set is non-empty: 1 is optimal
            assert best is not None  # the full IED set reaches `need`
            return best.size, best.size, best.devices
        # Loose but sound: any violating set silences at least one
        # covering IED (lower); greedily silencing the highest-coverage
        # IEDs gives a concrete witness (upper).
        lower = min(graph.cut([ied]).size for ied in ieds)
        chosen: List[int] = []
        removed = 0
        for ied in sorted(ieds, key=lambda i: (-coverage[i], i)):
            chosen.append(ied)
            removed += coverage[ied]
            if removed >= need:
                break
        result = graph.cut(chosen)
        return lower, result.size, result.devices

    def _command_bounds(self) -> IndexBounds:
        """Bracket for command deliverability.

        The negation asks for an *alive* field device with no alive
        assured route; the cheapest attack on device ``d`` is the min
        cut of its path family with ``d`` itself protected.  Devices
        whose protected cut is infinite cannot be attacked at all; a
        device with no assured path is violated with zero failures.
        """
        prop = Property.COMMAND_DELIVERABILITY
        graph = self.graph(secured=False)
        certified = graph.certified
        best: Optional[CutResult] = None
        for device in self.network.field_device_ids:
            if not graph.deliverable(device):
                return self._zero(prop)
            result = graph.cut([device], protect=[device])
            if not result.cuttable:
                continue
            if best is None or result.size < best.size:
                best = result
        if best is None:
            # No device can be cut off while alive: no attack exists.
            total = len(self.network.field_device_ids)
            return IndexBounds(prop, total + 1, None, _ZERO_WITNESS,
                               certified)
        return IndexBounds(prop, best.size, best.size, best.devices,
                           certified)

    def __repr__(self) -> str:
        return (f"StructuralAnalysis({self.network.name!r}, "
                f"n={self.problem.num_states}, "
                f"m={self.problem.num_measurements})")
