"""Cross-validation of the structural pass against the SAT engine.

The graph analyzer and the SAT engine answer the same questions — how
many failures silence this component, uncover this state, break this
property — through entirely independent machinery: min vertex cut over
the enumerated delivery paths versus cardinality-bounded satisfiability
of the full formal model.  Agreement between them is a far stronger
correctness story than either alone; :func:`cross_check` runs both on
one configuration and flags every provable disagreement.

Checked claims, per the soundness contract of
:mod:`repro.graphs.security_index`:

* every **witness** (upper bound) must be realizable: a SAT check with
  the silencing condition asserted and the failure budget set to the
  witness size must be satisfiable — *always*, certificate or not;
* every **certified lower bound** must be unbeatable: the same check
  one below the bound must be unsatisfiable — asserted only when the
  delivery graph's exactness certificate holds;
* the per-property **attack-cardinality bracket** must contain the
  SAT-derived minimal attack cardinality (from the engine's
  max-resiliency search, screening disabled so the two sides stay
  independent).

All group/state checks share one incremental solver: the delivery
definitions are encoded once, each silencing condition gets a single
indicator variable defined by a bi-implication, and each check assumes
that indicator plus a budget selector from one extendable cardinality
counter.  An UNKNOWN outcome (expired resource budget) skips the check
without counting as agreement or disagreement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.encoder import ModelEncoder
from ..core.problem import ObservabilityProblem
from ..core.search import SearchBounds
from ..core.specs import Property
from ..engine import VerificationEngine
from ..obs.tracer import current_tracer, probe_for
from ..obs.tracer import span as obs_span
from ..sat.limits import Limits
from ..scada.network import ScadaNetwork
from ..smt.solver import Result, Solver
from ..smt.terms import And, Bool, BoolVal, Iff, Not, Term
from .security_index import IndexBounds, StructuralAnalysis

__all__ = ["CrossCheckReport", "Disagreement", "cross_check"]


@dataclass(frozen=True)
class Disagreement:
    """One provable conflict between the graph oracle and SAT."""

    kind: str        # "group-index" | "state-criticality" | "resiliency"
    mode: str        # "assured" | "secured" | a property value
    subject: str     # "group {1,5}", "state 7", "minimal attack ..."
    graph_value: str
    sat_value: str

    def describe(self) -> str:
        return (f"{self.kind} {self.subject} [{self.mode}]: "
                f"graph says {self.graph_value}; "
                f"SAT says {self.sat_value}")


@dataclass
class CrossCheckReport:
    """Everything one audit run established."""

    subject: str
    certified: Dict[str, bool]
    checks: int = 0
    unknown: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    #: mode → smallest measurement of each unique group → its index.
    group_indices: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: mode → state → criticality (min failures uncovering it).
    state_criticality: Dict[str, Dict[int, int]] = field(
        default_factory=dict)
    #: one entry per audited property: both sides' brackets.
    resiliency: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary(self) -> str:
        verdict = ("agreement" if self.ok
                   else f"{len(self.disagreements)} disagreement(s)")
        skipped = f", {self.unknown} unknown" if self.unknown else ""
        return (f"audit {self.subject}: {verdict} across "
                f"{self.checks} check(s){skipped}")

    def to_text(self) -> str:
        lines = [self.summary()]
        cert = " ".join(f"{mode}={'yes' if ok else 'no'}"
                        for mode, ok in sorted(self.certified.items()))
        lines.append(f"  exactness certificate: {cert}")
        for mode in sorted(self.group_indices):
            indexed = self.group_indices[mode]
            shown = " ".join(f"z{z}={v}" for z, v in sorted(indexed.items()))
            lines.append(f"  security indices ({mode}): {shown}")
        for mode in sorted(self.state_criticality):
            crits = self.state_criticality[mode]
            if crits:
                low = min(crits.values())
                worst = sorted(x for x, v in crits.items() if v == low)
                lines.append(
                    f"  state criticality ({mode}): min {low} at "
                    f"state(s) {worst}")
        for entry in self.resiliency:
            upper = entry["graph_upper"]
            shown_upper = "∞" if upper is None else upper
            lines.append(
                f"  {entry['property']}: graph cardinality in "
                f"[{entry['graph_lower']}, {shown_upper}], SAT max "
                f"resiliency in [{entry['sat_lower']}, "
                f"{entry['sat_upper']}]")
        if self.disagreements:
            lines.append("  disagreements:")
            lines.extend(f"    - {d.describe()}"
                         for d in self.disagreements)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "subject": self.subject,
            "ok": self.ok,
            "certified": self.certified,
            "checks": self.checks,
            "unknown": self.unknown,
            "group_indices": self.group_indices,
            "state_criticality": self.state_criticality,
            "resiliency": self.resiliency,
            "disagreements": [
                {"kind": d.kind, "mode": d.mode, "subject": d.subject,
                 "graph": d.graph_value, "sat": d.sat_value}
                for d in self.disagreements
            ],
        }, indent=2, sort_keys=True)


def _group_label(group: Sequence[int]) -> str:
    return "group {" + ",".join(map(str, group)) + "}"


def cross_check(network: ScadaNetwork,
                problem: ObservabilityProblem,
                properties: Optional[Sequence[Property]] = None,
                r: int = 1,
                limits: Optional[Limits] = None,
                card_encoding: str = "totalizer") -> CrossCheckReport:
    """Run the graph oracle and the SAT engine against each other.

    Audits every unique-group security index and every state
    criticality in both delivery modes, then the attack-cardinality
    bracket of each property in *properties* (all four by default).
    *limits* bounds each individual solver call; expired checks are
    counted in ``report.unknown`` and skipped.
    """
    structural = StructuralAnalysis(network, problem)
    props = list(properties) if properties is not None else list(Property)
    report = CrossCheckReport(
        subject=network.name,
        certified={"assured": structural.certified(False),
                   "secured": structural.certified(True)})

    encoder = ModelEncoder(network, problem)
    solver = Solver(card_encoding=card_encoding)
    solver.set_hooks(probe_for(current_tracer()))
    solver.add(*encoder.availability_axioms())
    solver.add(*encoder.delivery_definitions(secured=False))
    solver.add(*encoder.delivery_definitions(secured=True))
    down = [Not(var) for _, var in sorted(encoder.field_node_vars().items())]
    handle = solver.budget_handle(down, "audit-budget")

    def sat_within(budget: int, indicator: Term) -> Optional[bool]:
        """Is the indicated condition reachable within *budget* failures?"""
        if budget < 0:
            return False
        report.checks += 1
        selector = handle.at_most(budget)
        assumptions: List[Term] = [indicator]
        if not (isinstance(selector, BoolVal) and selector.value):
            assumptions.append(selector)
        outcome = solver.check(*assumptions, limits=limits)
        if outcome is Result.UNKNOWN:
            report.unknown += 1
            return None
        return outcome is Result.SAT

    def audit_cut(kind: str, mode: str, subject: str, size: int,
                  indicator: Term) -> None:
        """Witness check at *size* plus (certified) floor check below."""
        if sat_within(size, indicator) is False:
            report.disagreements.append(Disagreement(
                kind, mode, subject,
                f"a witness of size {size} exists",
                f"unreachable within {size} failure(s)"))
        if size > 0 and report.certified[mode]:
            if sat_within(size - 1, indicator) is True:
                report.disagreements.append(Disagreement(
                    kind, mode, subject,
                    f"certified minimum cost {size}",
                    f"reachable with {size - 1} failure(s)"))

    with obs_span("graphs.crosscheck", subject=network.name):
        for secured, mode in ((False, "assured"), (True, "secured")):
            var_of = encoder.secured if secured else encoder.delivered
            indices: Dict[int, int] = {}
            for position, group in enumerate(problem.unique_groups):
                gamma = structural.group_cut(group, secured=secured).size
                indices[min(group)] = gamma
                g_var = Bool(f"XG_{mode}_{position}")
                solver.add(Iff(
                    g_var, And(*[Not(var_of(z)) for z in group])))
                audit_cut("group-index", mode, _group_label(group),
                          gamma, g_var)
            report.group_indices[mode] = indices

            crits: Dict[int, int] = {}
            for state in problem.states():
                beta = structural.state_cut(state, secured=secured).size
                crits[state] = beta
                covering = problem.measurements_covering(state)
                u_var = Bool(f"XU_{mode}_{state}")
                solver.add(Iff(
                    u_var, And(*[Not(var_of(z)) for z in covering])))
                audit_cut("state-criticality", mode, f"state {state}",
                          beta, u_var)
            report.state_criticality[mode] = crits

        engine = VerificationEngine(network, problem,
                                    backend="assumption",
                                    card_encoding=card_encoding,
                                    lint=False)
        n_field = len(network.field_device_ids)
        for prop in props:
            bounds = structural.attack_bounds(prop, r=r)
            sat_bounds = engine.max_total_resiliency_bounds(
                prop=prop, r=r, limits=limits, screen=False)
            report.checks += 1
            if sat_bounds.unknown_budgets:
                report.unknown += 1
            report.resiliency.append({
                "property": prop.value,
                "graph_lower": bounds.lower,
                "graph_upper": bounds.upper,
                "graph_certified": bounds.certified,
                "sat_lower": sat_bounds.lower,
                "sat_upper": sat_bounds.upper,
                "sat_exact": sat_bounds.exact,
            })
            _compare_resiliency(report, prop, bounds, sat_bounds, n_field)
    return report


def _compare_resiliency(report: CrossCheckReport, prop: Property,
                        graph: IndexBounds, sat: SearchBounds,
                        n_field: int) -> None:
    """Flag bracket conflicts around the minimal attack cardinality.

    The SAT search brackets the max resiliency ``s``; the minimal
    attack cardinality is ``s + 1`` (or nonexistent when the property
    survives the full device budget).  Even a budget-limited search is
    usable: its ``lower`` is proven to hold and everything above its
    ``upper`` is proven to fail.
    """
    subject = "minimal attack cardinality"
    if sat.exact and sat.lower >= n_field:
        if graph.upper is not None:
            report.disagreements.append(Disagreement(
                "resiliency", prop.value, subject,
                f"a violating set of size {graph.upper} exists",
                "no failure set of any size violates the property"))
        return
    # mac >= sat.lower + 1 always; mac <= sat.upper + 1 once some
    # budget is proven to fail (sat.upper < n_field).
    if graph.upper is not None and sat.lower + 1 > graph.upper:
        report.disagreements.append(Disagreement(
            "resiliency", prop.value, subject,
            f"a violating set of size {graph.upper} exists",
            f"every set of size <= {sat.lower} keeps the property"))
    if sat.upper < n_field and graph.certified \
            and sat.upper + 1 < graph.lower:
        report.disagreements.append(Disagreement(
            "resiliency", prop.value, subject,
            f"certified minimum {graph.lower}",
            f"a violating set of size <= {sat.upper + 1} exists"))
