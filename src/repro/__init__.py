"""repro — SCADA resiliency verification for smart grids.

A from-scratch reproduction of "Formal Analysis for Dependable
Supervisory Control and Data Acquisition in Smart Grids" (DSN 2016),
including its SMT substrate (a CDCL SAT solver plus a Boolean/
cardinality term layer), the power-grid and SCADA configuration models,
the SCADA Analyzer itself, and the paper's evaluation harness.

Quickstart::

    from repro.cases import case_analyzer
    from repro.core import ResiliencySpec

    analyzer = case_analyzer("fig3")
    result = analyzer.verify(ResiliencySpec.observability(k1=2, k2=1))
    print(result.summary())
"""

from .core import (
    FailureBudget,
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    ScadaAnalyzer,
    Status,
    ThreatVector,
    VerificationResult,
)

__version__ = "1.0.0"

__all__ = [
    "FailureBudget",
    "ObservabilityProblem",
    "Property",
    "ResiliencySpec",
    "ScadaAnalyzer",
    "Status",
    "ThreatVector",
    "VerificationResult",
    "__version__",
]
