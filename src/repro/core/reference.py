"""A direct (non-SAT) evaluator of the paper's predicates.

Given a concrete failure set, this evaluator computes delivered/secured
measurements and the observability, secured-observability, and bad-data
predicates by plain graph walking and counting.  It serves three roles:

* ground truth for validating every threat vector the SAT model emits,
* brute-force verification of ``unsat`` answers on small systems, and
* the minimization oracle that shrinks raw SAT models to *minimal*
  threat vectors.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..scada.network import ScadaNetwork
from .problem import ObservabilityProblem
from .specs import Property, ResiliencySpec

__all__ = ["ReferenceEvaluator"]


class ReferenceEvaluator:
    """Evaluates the resiliency predicates for explicit failure sets."""

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem) -> None:
        self.network = network
        self.problem = problem
        # Pre-compute the path lists once; they are static configuration.
        self._assured_paths = {
            ied: network.assured_paths(ied) for ied in network.ied_ids}
        self._secured_paths = {
            ied: network.secured_paths(ied) for ied in network.ied_ids}
        self._command_paths = {
            device: network.assured_paths(device)
            for device in network.field_device_ids}
        self._link_pairs = {link.node_pair
                            for link in network.topology.links}

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _path_alive(self, path: Sequence[int], failed: Set[int],
                    failed_links: FrozenSet = frozenset()) -> bool:
        if any(device in failed for device in path):
            return False
        if failed_links:
            for a, b in zip(path, path[1:]):
                if ((a, b) if a < b else (b, a)) in failed_links:
                    return False
        return True

    def assured_delivery(self, ied: int, failed: Set[int],
                         failed_links: FrozenSet = frozenset()) -> bool:
        """``AssuredDelivery_I`` under the given failure set."""
        if ied in failed:
            return False
        return any(self._path_alive(path, failed, failed_links)
                   for path in self._assured_paths[ied])

    def secured_delivery(self, ied: int, failed: Set[int],
                         failed_links: FrozenSet = frozenset()) -> bool:
        """``SecuredDelivery_I`` under the given failure set."""
        if ied in failed:
            return False
        return any(self._path_alive(path, failed, failed_links)
                   for path in self._secured_paths[ied])

    def delivered_measurements(self, failed: Iterable[int],
                               secured: bool = False,
                               failed_links: Iterable = ()) -> Set[int]:
        """The measurements reaching the MTU (``D_Z`` / ``S_Z``)."""
        failed_set = set(failed)
        links = frozenset(tuple(sorted(p)) for p in failed_links)
        check = self.secured_delivery if secured else self.assured_delivery
        out: Set[int] = set()
        for ied in self.network.ied_ids:
            if check(ied, failed_set, links):
                out.update(self.network.measurements_of(ied))
        # Only measurements known to the observability problem count.
        return out & set(self.problem.state_sets)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def observable(self, failed: Iterable[int],
                   secured: bool = False,
                   failed_links: Iterable = ()) -> bool:
        """The paper's (secured) observability predicate."""
        delivered = self.delivered_measurements(failed, secured=secured,
                                                failed_links=failed_links)
        covered: Set[int] = set()
        for z in delivered:
            covered.update(self.problem.state_sets[z])
        if covered != set(self.problem.states()):
            return False
        unique_delivered = sum(
            1 for group in self.problem.unique_groups
            if any(z in delivered for z in group))
        return unique_delivered >= self.problem.num_states

    def bad_data_detectable(self, failed: Iterable[int], r: int,
                            failed_links: Iterable = ()) -> bool:
        """Every state is covered by more than *r* secured measurements."""
        delivered = self.delivered_measurements(failed, secured=True,
                                                failed_links=failed_links)
        for state in self.problem.states():
            covering = sum(
                1 for z in self.problem.measurements_covering(state)
                if z in delivered)
            if covering < r + 1:
                return False
        return True

    def command_deliverable(self, failed: Iterable[int],
                            failed_links: Iterable = ()) -> bool:
        """Every alive field device has an alive assured path to the
        MTU (the command-deliverability extension)."""
        failed_set = set(failed)
        links = frozenset(tuple(sorted(p)) for p in failed_links)
        for device in self.network.field_device_ids:
            if device in failed_set:
                continue
            if not any(self._path_alive(path, failed_set, links)
                       for path in self._command_paths[device]):
                return False
        return True

    def property_holds(self, spec: ResiliencySpec,
                       failed: Iterable[int],
                       failed_links: Iterable = ()) -> bool:
        """Evaluate the spec's property for one failure set."""
        if spec.property is Property.OBSERVABILITY:
            return self.observable(failed, secured=False,
                                   failed_links=failed_links)
        if spec.property is Property.SECURED_OBSERVABILITY:
            return self.observable(failed, secured=True,
                                   failed_links=failed_links)
        if spec.property is Property.COMMAND_DELIVERABILITY:
            return self.command_deliverable(failed,
                                            failed_links=failed_links)
        return self.bad_data_detectable(failed, spec.r,
                                        failed_links=failed_links)

    # ------------------------------------------------------------------
    # Budget helpers
    # ------------------------------------------------------------------

    def within_budget(self, spec: ResiliencySpec,
                      failed: Iterable[int],
                      failed_links: Iterable = ()) -> bool:
        links = set(failed_links)
        if spec.link_k is None:
            if links:
                return False
        else:
            if len(links) > spec.link_k:
                return False
            if any(tuple(sorted(p)) not in self._link_pairs
                   for p in links):
                return False
        failed_set = set(failed)
        ieds = failed_set & set(self.network.ied_ids)
        rtus = failed_set & set(self.network.rtu_ids)
        if failed_set - ieds - rtus:
            return False  # only field devices may fail
        budget = spec.budget
        if budget.is_split:
            assert budget.k1 is not None and budget.k2 is not None
            return len(ieds) <= budget.k1 and len(rtus) <= budget.k2
        assert budget.k is not None
        return len(failed_set) <= budget.k

    def is_threat(self, spec: ResiliencySpec,
                  failed: Iterable[int],
                  failed_links: Iterable = ()) -> bool:
        """Whether *failed* (+ *failed_links*) is a valid threat vector."""
        failed_set = set(failed)
        links = frozenset(tuple(sorted(p)) for p in failed_links)
        return (self.within_budget(spec, failed_set, links)
                and not self.property_holds(spec, failed_set, links))

    # ------------------------------------------------------------------
    # Minimization and brute force
    # ------------------------------------------------------------------

    def minimize_threat(self, spec: ResiliencySpec,
                        failed: Iterable[int],
                        failed_links: Iterable = ()) -> FrozenSet[int]:
        """Shrink a threat vector to an inclusion-minimal one.

        Greedily tries to revive each failed device; the result still
        violates the property but no proper subset of it does.  Device
        minimization only — use :meth:`minimize_threat_with_links` when
        links participate.
        """
        current = set(failed)
        links = frozenset(tuple(sorted(p)) for p in failed_links)
        if self.property_holds(spec, current, links):
            raise ValueError("not a threat vector: the property holds")
        for device in sorted(current):
            smaller = current - {device}
            if not self.property_holds(spec, smaller, links):
                current = smaller
        return frozenset(current)

    def minimize_threat_with_links(self, spec: ResiliencySpec,
                                   failed: Iterable[int],
                                   failed_links: Iterable = ()):
        """Inclusion-minimal device *and* link failure sets."""
        devices = frozenset(
            self.minimize_threat(spec, failed, failed_links))
        links = {tuple(sorted(p)) for p in failed_links}
        for link in sorted(links):
            smaller = frozenset(links - {link})
            if not self.property_holds(spec, devices, smaller):
                links = set(smaller)
        return devices, frozenset(links)

    def brute_force_threats(self, spec: ResiliencySpec,
                            minimal_only: bool = True
                            ) -> List[FrozenSet[int]]:
        """All threat vectors by exhaustive subset enumeration.

        Exponential — usable only on small systems; the tests use it to
        certify ``unsat`` answers and threat-space counts.
        """
        ieds = self.network.ied_ids
        rtus = self.network.rtu_ids
        budget = spec.budget
        threats: List[FrozenSet[int]] = []
        if budget.is_split:
            assert budget.k1 is not None and budget.k2 is not None
            ied_choices = _subsets_up_to(ieds, budget.k1)
            rtu_choices = _subsets_up_to(rtus, budget.k2)
            candidates = (set(a) | set(b)
                          for a in ied_choices for b in rtu_choices)
        else:
            assert budget.k is not None
            candidates = (set(c) for c in
                          _subsets_up_to(ieds + rtus, budget.k))
        for failed in candidates:
            if not self.property_holds(spec, failed):
                threats.append(frozenset(failed))
        if minimal_only:
            threats = [t for t in threats
                       if not any(o < t for o in threats)]
        return sorted(set(threats), key=lambda t: (len(t), sorted(t)))


def _subsets_up_to(items: Sequence[int], k: int) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = []
    for size in range(0, min(k, len(items)) + 1):
        out.extend(itertools.combinations(items, size))
    return out
