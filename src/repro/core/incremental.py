"""Incremental verification: one encoding, many budget queries.

Maximal-resiliency search (Fig. 7(a)) and threat-space sweeps ask many
queries that differ *only* in the failure budget.  The plain
:class:`~repro.core.analyzer.ScadaAnalyzer` re-encodes the whole model
per query; an :class:`IncrementalContext` encodes the budget-independent
part — delivery definitions, availability axioms, and the property
negation — once, and scopes each budget with the solver's push/pop
(activation literals underneath), reusing learned clauses across
queries.

The verdicts are identical by construction; the ablation benchmark
``bench_ablation_incremental`` quantifies the speedup.  The
:class:`~repro.engine.VerificationEngine`'s ``incremental`` backend
keeps one context per (property, r, link-modeling) key in its encoding
cache; :class:`IncrementalAnalyzer` remains as the original
budget-parameterized facade over a single context.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..scada.network import ScadaNetwork
from ..smt.solver import Result, Solver
from ..smt.terms import Not, Or
from .encoder import ModelEncoder
from .extraction import extract_threat
from .problem import ObservabilityProblem
from .reference import ReferenceEvaluator
from .results import Status, ThreatVector, VerificationResult
from .search import galloping_max
from .specs import FailureBudget, Property, ResiliencySpec

__all__ = ["IncrementalContext", "IncrementalAnalyzer"]


class IncrementalContext:
    """A cached base encoding for one (property, r, link-modeling) key.

    All budget-parameterized queries against that key — single verdicts,
    galloping max-resiliency probes, threat enumeration — run inside
    push/pop scopes on the shared solver, so learned clauses carry over
    and only the cardinality constraint is re-encoded per query.
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 prop: Property = Property.OBSERVABILITY,
                 r: int = 1,
                 model_links: bool = False,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None) -> None:
        self.network = network
        self.problem = problem
        self.prop = prop
        self.r = r
        self.model_links = model_links
        self.reference = reference or ReferenceEvaluator(network, problem)
        self._encoder = ModelEncoder(network, problem,
                                     model_links=model_links)
        self._solver = Solver(card_encoding=card_encoding)
        started = time.perf_counter()
        self._solver.add(*self._encoder.availability_axioms())
        self._solver.add(*self._encoder.delivery_definitions(secured=False))
        if prop.uses_security:
            self._solver.add(
                *self._encoder.delivery_definitions(secured=True))
        self._solver.add(self._encoder.property_negation(prop, r))
        if model_links:
            # Allocate every topology link's variable up front so
            # per-query link budgets never grow the base numbering.
            self._encoder.link_vars()
        self.base_encode_time = time.perf_counter() - started
        self._base_vars = self._solver.num_vars
        self._base_clauses = self._solver.num_clauses

    # ------------------------------------------------------------------

    def _check_spec(self, spec: ResiliencySpec) -> None:
        if spec.property is not self.prop:
            raise ValueError(
                f"context encodes {self.prop.value}, got a "
                f"{spec.property.value} spec")
        if (spec.property is Property.BAD_DATA_DETECTABILITY
                and spec.r != self.r):
            raise ValueError(
                f"context encodes r={self.r}, got a spec with r={spec.r}")
        if (spec.link_k is not None) != self.model_links:
            raise ValueError(
                "context link modeling does not match the spec: "
                f"model_links={self.model_links}, link_k={spec.link_k}")

    def _add_budgets(self, spec: ResiliencySpec) -> None:
        self._solver.add(self._encoder.budget_constraint(spec.budget))
        if spec.link_k is not None:
            self._solver.add(
                self._encoder.link_budget_constraint(spec.link_k))

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None) -> VerificationResult:
        """Verify the context's property under one spec's budgets."""
        self._check_spec(spec)
        solver = self._solver
        with solver.scope():
            started = time.perf_counter()
            pre_vars, pre_clauses = solver.num_vars, solver.num_clauses
            self._add_budgets(spec)
            encode_time = time.perf_counter() - started
            outcome = solver.check(max_conflicts=max_conflicts)
            # Report the encoding size *this query* would have cost on
            # its own: the shared base plus the query's budget delta.
            # The shared solver's raw totals accumulate every previous
            # query's (disabled) budget clauses and would inflate
            # scaling tables relative to the fresh backend.
            result = VerificationResult(
                spec=spec,
                status=Status.UNKNOWN,
                encode_time=encode_time,
                solve_time=solver.last_check_stats.get("check_time", 0.0),
                num_vars=self._base_vars + (solver.num_vars - pre_vars),
                num_clauses=(self._base_clauses
                             + (solver.num_clauses - pre_clauses)),
                backend="incremental",
                stats=dict(solver.last_check_stats),
            )
            if outcome is Result.UNKNOWN:
                return result
            if outcome is Result.UNSAT:
                result.status = Status.RESILIENT
                return result
            result.status = Status.THREAT_FOUND
            result.threat = extract_threat(
                solver.model(), self._encoder, self.reference,
                self.network, self.problem, spec, minimize,
                origin="incremental solver")
            return result

    # ------------------------------------------------------------------

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None) -> List[ThreatVector]:
        """All (minimal) threat vectors within the spec's budgets.

        Blocking clauses are asserted inside the query scope, so the
        cached base encoding is untouched once the scope pops and later
        queries see no leftover blocks.
        """
        self._check_spec(spec)
        solver = self._solver
        node_vars = self._encoder.field_node_vars()
        threats: List[ThreatVector] = []
        with solver.scope():
            self._add_budgets(spec)
            while limit is None or len(threats) < limit:
                outcome = solver.check(max_conflicts=max_conflicts)
                if outcome is Result.UNKNOWN:
                    raise RuntimeError("conflict budget exhausted during "
                                       "threat enumeration")
                if outcome is Result.UNSAT:
                    break
                threat = extract_threat(
                    solver.model(), self._encoder, self.reference,
                    self.network, self.problem, spec, minimize=minimal,
                    origin="incremental solver")
                threats.append(threat)
                failed = threat.failed_devices
                failed_links = threat.failed_links
                if minimal:
                    # Forbid this failure set and every superset.
                    revive = [node_vars[i] for i in failed]
                    revive += [self._encoder.link_up(a, b)
                               for a, b in failed_links]
                    solver.add(Or(*revive))
                else:
                    # Forbid only this exact assignment of the node vars.
                    flip = [
                        Not(var) if i not in failed else var
                        for i, var in node_vars.items()
                    ]
                    if spec.link_k is not None:
                        flip += [
                            Not(var) if pair not in failed_links else var
                            for pair, var
                            in self._encoder.link_vars().items()
                        ]
                    solver.add(Or(*flip))
                if not failed and not failed_links:
                    # The empty vector violates the property; nothing
                    # else can be more minimal.
                    break
        return threats

    # ------------------------------------------------------------------

    def max_total_resiliency(self,
                             max_conflicts: Optional[int] = None) -> int:
        """Largest k with the property k-resilient (galloping search)."""
        upper = len(self.network.field_device_ids)

        def holds(k: int) -> bool:
            outcome = self.verify(
                ResiliencySpec.for_property(self.prop, r=self.r, k=k),
                minimize=False, max_conflicts=max_conflicts)
            if outcome.status is Status.UNKNOWN:
                raise RuntimeError("budget exhausted in incremental "
                                   "max-resiliency search")
            return outcome.is_resilient

        return galloping_max(holds, upper)


class IncrementalAnalyzer:
    """Budget-parameterized verification over a fixed property.

    The property (and ``r``, for bad-data detectability) is fixed at
    construction; :meth:`verify_budget` then answers any
    :class:`FailureBudget` against the shared encoding.  This is the
    original facade kept for API compatibility; new code should go
    through :class:`~repro.engine.VerificationEngine` with
    ``backend="incremental"``, which additionally caches contexts
    across properties.
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 prop: Property = Property.OBSERVABILITY,
                 r: int = 1,
                 card_encoding: str = "totalizer") -> None:
        self._ctx = IncrementalContext(network, problem, prop=prop, r=r,
                                       card_encoding=card_encoding)

    @property
    def network(self) -> ScadaNetwork:
        return self._ctx.network

    @property
    def problem(self) -> ObservabilityProblem:
        return self._ctx.problem

    @property
    def prop(self) -> Property:
        return self._ctx.prop

    @property
    def r(self) -> int:
        return self._ctx.r

    @property
    def reference(self) -> ReferenceEvaluator:
        return self._ctx.reference

    @property
    def base_encode_time(self) -> float:
        return self._ctx.base_encode_time

    def verify_budget(self, budget: FailureBudget,
                      minimize: bool = True,
                      max_conflicts: Optional[int] = None
                      ) -> VerificationResult:
        """Verify the fixed property under one failure budget."""
        spec = ResiliencySpec(self.prop, budget, r=self.r)
        return self._ctx.verify(spec, minimize=minimize,
                                max_conflicts=max_conflicts)

    def max_total_resiliency(self,
                             max_conflicts: Optional[int] = None) -> int:
        """Largest k with the property k-resilient (galloping search)."""
        return self._ctx.max_total_resiliency(max_conflicts=max_conflicts)
