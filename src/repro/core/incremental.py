"""Incremental verification: one encoding, many budget queries.

Maximal-resiliency search (Fig. 7(a)) and threat-space sweeps ask many
queries that differ *only* in the failure budget.  The plain
:class:`~repro.core.analyzer.ScadaAnalyzer` re-encodes the whole model
per query; this analyzer encodes the budget-independent part — delivery
definitions, availability axioms, and the property negation — once, and
scopes each budget with the solver's push/pop (activation literals
underneath), reusing learned clauses across queries.

The verdicts are identical by construction; the ablation benchmark
``bench_ablation_incremental`` quantifies the speedup.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from ..scada.network import ScadaNetwork
from ..smt.solver import Result, Solver
from .encoder import ModelEncoder
from .problem import ObservabilityProblem
from .reference import ReferenceEvaluator
from .results import Status, ThreatVector, VerificationResult
from .specs import FailureBudget, Property, ResiliencySpec

__all__ = ["IncrementalAnalyzer"]


class IncrementalAnalyzer:
    """Budget-parameterized verification over a fixed property.

    The property (and ``r``, for bad-data detectability) is fixed at
    construction; :meth:`verify_budget` then answers any
    :class:`FailureBudget` against the shared encoding.
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 prop: Property = Property.OBSERVABILITY,
                 r: int = 1,
                 card_encoding: str = "totalizer") -> None:
        self.network = network
        self.problem = problem
        self.prop = prop
        self.r = r
        self.reference = ReferenceEvaluator(network, problem)
        self._encoder = ModelEncoder(network, problem)
        self._solver = Solver(card_encoding=card_encoding)
        started = time.perf_counter()
        self._solver.add(*self._encoder.availability_axioms())
        self._solver.add(*self._encoder.delivery_definitions(secured=False))
        if prop.uses_security:
            self._solver.add(
                *self._encoder.delivery_definitions(secured=True))
        self._solver.add(self._negation())
        self.base_encode_time = time.perf_counter() - started

    def _negation(self):
        if self.prop is Property.OBSERVABILITY:
            return self._encoder.not_observability(secured=False)
        if self.prop is Property.SECURED_OBSERVABILITY:
            return self._encoder.not_observability(secured=True)
        if self.prop is Property.COMMAND_DELIVERABILITY:
            return self._encoder.not_command_deliverability()
        return self._encoder.not_bad_data_detectability(self.r)

    def _spec(self, budget: FailureBudget) -> ResiliencySpec:
        return ResiliencySpec(self.prop, budget, r=self.r)


    # ------------------------------------------------------------------

    def verify_budget(self, budget: FailureBudget,
                      minimize: bool = True,
                      max_conflicts: Optional[int] = None
                      ) -> VerificationResult:
        """Verify the fixed property under one failure budget."""
        spec = self._spec(budget)
        solver = self._solver
        started = time.perf_counter()
        solver.push()
        solver.add(self._encoder.budget_constraint(budget))
        encode_time = time.perf_counter() - started
        solve_before = solver.statistics.check_time
        outcome = solver.check(max_conflicts=max_conflicts)
        result = VerificationResult(
            spec=spec,
            status=Status.UNKNOWN,
            encode_time=encode_time,
            solve_time=solver.statistics.check_time - solve_before,
            num_vars=solver.num_vars,
            num_clauses=solver.num_clauses,
        )
        try:
            if outcome is Result.UNKNOWN:
                return result
            if outcome is Result.UNSAT:
                result.status = Status.RESILIENT
                return result
            result.status = Status.THREAT_FOUND
            result.threat = self._extract(spec, minimize)
            return result
        finally:
            solver.pop()

    def _extract(self, spec: ResiliencySpec,
                 minimize: bool) -> ThreatVector:
        model = self._solver.model()
        failed: Set[int] = {
            device
            for device, var in self._encoder.field_node_vars().items()
            if not model.value(var)
        }
        if not self.reference.is_threat(spec, failed):
            raise AssertionError(
                f"incremental solver produced an invalid threat vector "
                f"{sorted(failed)} for {spec.describe()}")
        minimal = False
        if minimize:
            failed = set(self.reference.minimize_threat(spec, failed))
            minimal = True
        return ThreatVector(
            failed_ieds=frozenset(failed & set(self.network.ied_ids)),
            failed_rtus=frozenset(failed & set(self.network.rtu_ids)),
            minimal=minimal,
        )

    # ------------------------------------------------------------------

    def max_total_resiliency(self,
                             max_conflicts: Optional[int] = None) -> int:
        """Largest k with the property k-resilient (galloping search)."""
        upper = len(self.network.field_device_ids)

        def holds(k: int) -> bool:
            outcome = self.verify_budget(FailureBudget.total(k),
                                         minimize=False,
                                         max_conflicts=max_conflicts)
            if outcome.status is Status.UNKNOWN:
                raise RuntimeError("budget exhausted in incremental "
                                   "max-resiliency search")
            return outcome.is_resilient

        if not holds(0):
            return -1
        lo, step, hi = 0, 1, None
        while hi is None:
            probe = min(lo + step, upper)
            if holds(probe):
                lo = probe
                if probe == upper:
                    return upper
                step *= 2
            else:
                hi = probe - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if holds(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo
