"""Incremental verification: one encoding, many budget queries.

Maximal-resiliency search (Fig. 7(a)) and threat-space sweeps ask many
queries that differ *only* in the failure budget.  The plain
:class:`~repro.core.analyzer.ScadaAnalyzer` re-encodes the whole model
per query; an :class:`IncrementalContext` encodes the budget-independent
part — delivery definitions, availability axioms, and the property
negation — once, and answers each budget against the shared solver.

Two budget-selection modes are supported:

* ``"scopes"`` (the original): each query opens a push/pop scope and
  re-encodes its cardinality constraint inside it.  Learned clauses
  touching the budget die with the scope's activation literal.
* ``"assumptions"``: every budget bound is a selector literal over a
  persistent, extendable totalizer (:class:`~repro.smt.BudgetHandle`),
  passed to ``check`` as an assumption.  Nothing is re-encoded per
  query — a new budget only *grows* the counter the first time it is
  seen — and **all** learned clauses survive across budgets.  For
  bad-data detectability the redundancy parameter ``r`` is gated the
  same way, so one context serves every ``(k, r)`` combination.

The verdicts are identical by construction; the ablation benchmark
``bench_ablation_incremental`` quantifies the difference.  The
:class:`~repro.engine.VerificationEngine`'s ``incremental`` and
``assumption`` backends keep contexts in its encoding cache;
:class:`IncrementalAnalyzer` remains as the original
budget-parameterized facade over a single context.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..obs.tracer import current_tracer, probe_for
from ..obs.tracer import span as obs_span
from ..sat.enumeration import drive_enumeration
from ..sat.limits import Limits, ResourceLimitReached
from ..scada.network import ScadaNetwork
from ..smt.solver import BudgetHandle, Result, Solver
from ..smt.terms import Bool, BoolVal, Implies, Not, Or, Term
from .encoder import ModelEncoder
from .extraction import extract_threat
from .problem import ObservabilityProblem
from .reference import ReferenceEvaluator
from .results import Status, ThreatVector, VerificationResult
from .search import galloping_max_bounded
from .specs import FailureBudget, Property, ResiliencySpec

__all__ = ["BUDGET_MODES", "IncrementalContext", "IncrementalAnalyzer"]

#: How a context binds each query's budget to the shared solver.
BUDGET_MODES = ("scopes", "assumptions")


class IncrementalContext:
    """A cached base encoding for one (property, r, link-modeling) key.

    All budget-parameterized queries against that key — single verdicts,
    galloping max-resiliency probes, threat enumeration — run against
    the shared solver, so learned clauses carry over.  With
    ``budget_mode="scopes"`` each query re-encodes its cardinality
    constraint in a push/pop scope; with ``budget_mode="assumptions"``
    budgets are chosen by assumption literals over persistent extendable
    counters and nothing is re-encoded (in that mode the context also
    serves *every* ``r`` for bad-data detectability).
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 prop: Property = Property.OBSERVABILITY,
                 r: int = 1,
                 model_links: bool = False,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None,
                 budget_mode: str = "scopes",
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        if budget_mode not in BUDGET_MODES:
            raise ValueError(f"unknown budget mode {budget_mode!r}; "
                             f"expected one of {', '.join(BUDGET_MODES)}")
        self.network = network
        self.problem = problem
        self.prop = prop
        self.r = r
        self.model_links = model_links
        self.budget_mode = budget_mode
        self.backend_name = ("assumption" if budget_mode == "assumptions"
                             else "incremental")
        self.reference = reference or ReferenceEvaluator(network, problem)
        self._encoder = ModelEncoder(network, problem,
                                     model_links=model_links)
        self._solver = Solver(card_encoding=card_encoding,
                              solver_opts=solver_opts)
        # With assumption-selected budgets, the bad-data redundancy
        # parameter r is gated per query exactly like k, so the base
        # encoding is r-independent.
        self._gate_r = (budget_mode == "assumptions"
                        and prop is Property.BAD_DATA_DETECTABILITY)
        self._negation_selectors: Dict[int, Term] = {}
        started = time.perf_counter()
        self._solver.add(*self._encoder.availability_axioms())
        self._solver.add(*self._encoder.delivery_definitions(secured=False))
        if prop.uses_security:
            self._solver.add(
                *self._encoder.delivery_definitions(secured=True))
        if not self._gate_r:
            self._solver.add(self._encoder.property_negation(prop, r))
        if model_links:
            # Allocate every topology link's variable up front so
            # per-query link budgets never grow the base numbering.
            self._encoder.link_vars()
        self.base_encode_time = time.perf_counter() - started
        self._base_vars = self._solver.num_vars
        self._base_clauses = self._solver.num_clauses

    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query.

        Thread-safe in the cooperative sense: the shared solver's CDCL
        loop polls the flag and answers UNKNOWN with limit reason
        ``interrupt``, unwinding cleanly — the base encoding stays
        reusable.  Sticky until :meth:`clear_interrupt`.
        """
        self._solver.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the context after an :meth:`interrupt`."""
        self._solver.clear_interrupt()

    def _check_spec(self, spec: ResiliencySpec) -> None:
        if spec.property is not self.prop:
            raise ValueError(
                f"context encodes {self.prop.value}, got a "
                f"{spec.property.value} spec")
        if (spec.property is Property.BAD_DATA_DETECTABILITY
                and not self._gate_r and spec.r != self.r):
            raise ValueError(
                f"context encodes r={self.r}, got a spec with r={spec.r}")
        if (spec.link_k is not None) != self.model_links:
            raise ValueError(
                "context link modeling does not match the spec: "
                f"model_links={self.model_links}, link_k={spec.link_k}")

    def _add_budgets(self, spec: ResiliencySpec) -> None:
        """Scope mode: assert this query's budgets (inside a scope)."""
        self._solver.add(self._encoder.budget_constraint(spec.budget))
        if spec.link_k is not None:
            self._solver.add(
                self._encoder.link_budget_constraint(spec.link_k))

    # -- assumption mode ------------------------------------------------

    def _device_handle(self, kind: str) -> BudgetHandle:
        enc = self._encoder
        ids = {
            "nodes": self.network.field_device_ids,
            "ieds": self.network.ied_ids,
            "rtus": self.network.rtu_ids,
        }[kind]
        return self._solver.budget_handle(
            [Not(enc.node(i)) for i in ids], f"{kind}-down")

    def _negation_selector(self, r: int) -> Term:
        """Selector assuming which activates ``¬property`` at this r.

        The implication is asserted permanently; distinct r values share
        the underlying per-state counters (the encoder keys them on the
        literal set and raises their bound in place), so sweeping r is
        as cheap as sweeping k.
        """
        sel = self._negation_selectors.get(r)
        if sel is None:
            sel = Bool(f"__negation[r={r}]")
            self._solver.add(Implies(
                sel, self._encoder.property_negation(self.prop, r)))
            self._negation_selectors[r] = sel
        return sel

    def _budget_assumptions(self, spec: ResiliencySpec) -> List[Term]:
        """Selector terms activating this spec's budgets (and r)."""
        budget = spec.budget
        assumptions: List[Term] = []
        if budget.is_split:
            assert budget.k1 is not None and budget.k2 is not None
            assumptions.append(self._device_handle("ieds").at_most(budget.k1))
            assumptions.append(self._device_handle("rtus").at_most(budget.k2))
        else:
            assert budget.k is not None
            assumptions.append(self._device_handle("nodes").at_most(budget.k))
        if spec.link_k is not None:
            links = self._solver.budget_handle(
                [Not(var) for var in self._encoder.link_vars().values()],
                "links-down")
            assumptions.append(links.at_most(spec.link_k))
        if self._gate_r:
            assumptions.append(self._negation_selector(spec.r))
        # A trivially-true bound (k >= n) needs no assumption at all.
        return [a for a in assumptions
                if not (isinstance(a, BoolVal) and a.value)]

    # ------------------------------------------------------------------

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               limits: Optional[Limits] = None) -> VerificationResult:
        """Verify the context's property under one spec's budgets.

        *limits* bounds the solve (per query, not cumulatively — the
        shared solver grants every query the full budget); an expired
        budget yields an UNKNOWN result naming the reason.
        """
        self._check_spec(spec)
        solver = self._solver
        solver.set_hooks(probe_for(current_tracer()))
        if self.budget_mode == "assumptions":
            started = time.perf_counter()
            with obs_span("encode", backend=self.backend_name):
                pre_vars, pre_clauses = solver.num_vars, solver.num_clauses
                assumptions = self._budget_assumptions(spec)
            encode_time = time.perf_counter() - started
            with obs_span("solve", backend=self.backend_name) as sp:
                outcome = solver.check(*assumptions,
                                       max_conflicts=max_conflicts,
                                       limits=limits)
                sp.attrs["result"] = outcome.value
            return self._result(spec, outcome, encode_time,
                                pre_vars, pre_clauses, minimize)
        with solver.scope():
            started = time.perf_counter()
            with obs_span("encode", backend=self.backend_name):
                pre_vars, pre_clauses = solver.num_vars, solver.num_clauses
                self._add_budgets(spec)
            encode_time = time.perf_counter() - started
            with obs_span("solve", backend=self.backend_name) as sp:
                outcome = solver.check(max_conflicts=max_conflicts,
                                       limits=limits)
                sp.attrs["result"] = outcome.value
            return self._result(spec, outcome, encode_time,
                                pre_vars, pre_clauses, minimize)

    def _result(self, spec: ResiliencySpec, outcome: Result,
                encode_time: float, pre_vars: int, pre_clauses: int,
                minimize: bool) -> VerificationResult:
        solver = self._solver
        # Report the encoding size *this query* would have cost on its
        # own: the shared base plus the query's budget delta.  The
        # shared solver's raw totals accumulate every previous query's
        # budget encoding and would inflate scaling tables relative to
        # the fresh backend.  (In assumption mode a repeated budget's
        # delta is zero: its counter already exists.)
        result = VerificationResult(
            spec=spec,
            status=Status.UNKNOWN,
            encode_time=encode_time,
            solve_time=solver.last_check_stats.get("check_time", 0.0),
            num_vars=self._base_vars + (solver.num_vars - pre_vars),
            num_clauses=(self._base_clauses
                         + (solver.num_clauses - pre_clauses)),
            backend=self.backend_name,
            stats=dict(solver.last_check_stats),
        )
        if outcome is Result.UNKNOWN:
            if solver.last_limit_reason is not None:
                result.limit_reason = solver.last_limit_reason.value
            return result
        if outcome is Result.UNSAT:
            result.status = Status.RESILIENT
            return result
        result.status = Status.THREAT_FOUND
        started = time.perf_counter()
        with obs_span("extract", backend=self.backend_name):
            result.threat = extract_threat(
                solver.model(), self._encoder, self.reference,
                self.network, self.problem, spec, minimize,
                origin=f"{self.backend_name} solver")
        result.extract_time = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None,
                  limits: Optional[Limits] = None) -> List[ThreatVector]:
        """All (minimal) threat vectors within the spec's budgets.

        Blocking clauses are asserted inside a query scope, so the
        cached base encoding is untouched once the scope pops and later
        queries see no leftover blocks.  In assumption mode the budget
        itself still rides on assumption selectors (created *before*
        the scope opens, so their definitions are permanent); only the
        blocking clauses are scoped.
        """
        self._check_spec(spec)
        solver = self._solver
        solver.set_hooks(probe_for(current_tracer()))
        node_vars = self._encoder.field_node_vars()
        assumptions: List[Term] = []
        if self.budget_mode == "assumptions":
            assumptions = self._budget_assumptions(spec)

        def check() -> Optional[bool]:
            outcome = solver.check(*assumptions,
                                   max_conflicts=max_conflicts,
                                   limits=limits)
            if outcome is Result.UNKNOWN:
                return None
            return outcome is Result.SAT

        def extract() -> ThreatVector:
            return extract_threat(
                solver.model(), self._encoder, self.reference,
                self.network, self.problem, spec, minimize=minimal,
                origin=f"{self.backend_name} solver")

        def block(threat: ThreatVector) -> bool:
            failed = threat.failed_devices
            failed_links = threat.failed_links
            if minimal:
                # Forbid this failure set and every superset.
                revive = [node_vars[i] for i in failed]
                revive += [self._encoder.link_up(a, b)
                           for a, b in failed_links]
                solver.add(Or(*revive))
            else:
                # Forbid only this exact assignment of the node vars.
                flip = [
                    Not(var) if i not in failed else var
                    for i, var in node_vars.items()
                ]
                if spec.link_k is not None:
                    flip += [
                        Not(var) if pair not in failed_links else var
                        for pair, var
                        in self._encoder.link_vars().items()
                    ]
                solver.add(Or(*flip))
            # The empty vector violates the property; nothing else can
            # be more minimal, so stop the enumeration here.
            return bool(failed or failed_links)

        with solver.scope():
            if self.budget_mode != "assumptions":
                self._add_budgets(spec)
            # On budget expiry drive_enumeration raises
            # ResourceLimitReached carrying the vectors found so far;
            # the scope's context manager pops the blocking clauses on
            # the way out either way, so the cached base encoding stays
            # clean for the next query.
            return list(drive_enumeration(
                check, extract, block, limit=limit, what="threat vector",
                limit_reason=lambda: solver.last_limit_reason))

    # ------------------------------------------------------------------

    def max_total_resiliency(self,
                             max_conflicts: Optional[int] = None,
                             limits: Optional[Limits] = None) -> int:
        """Largest k with the property k-resilient (galloping search).

        An UNKNOWN probe is neither bound: the search stops refining
        and raises :exc:`~repro.sat.ResourceLimitReached` carrying the
        sound :class:`~repro.core.search.SearchBounds` bracket.
        """
        def probe(k: int) -> Optional[bool]:
            outcome = self.verify(
                ResiliencySpec.for_property(self.prop, r=self.r, k=k),
                minimize=False, max_conflicts=max_conflicts,
                limits=limits)
            if outcome.status is Status.UNKNOWN:
                return None
            return outcome.is_resilient

        bounds = galloping_max_bounded(
            probe, len(self.network.field_device_ids))
        if not bounds.exact:
            raise ResourceLimitReached(
                f"budget exhausted in incremental max-resiliency "
                f"search; maximum {bounds.describe()}",
                bounds=bounds)
        return bounds.lower


class IncrementalAnalyzer:
    """Budget-parameterized verification over a fixed property.

    The property (and ``r``, for bad-data detectability) is fixed at
    construction; :meth:`verify_budget` then answers any
    :class:`FailureBudget` against the shared encoding.  This is the
    original facade kept for API compatibility; new code should go
    through :class:`~repro.engine.VerificationEngine` with
    ``backend="incremental"`` (or ``"assumption"``), which additionally
    caches contexts across properties.
    """

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 prop: Property = Property.OBSERVABILITY,
                 r: int = 1,
                 card_encoding: str = "totalizer",
                 budget_mode: str = "scopes") -> None:
        self._ctx = IncrementalContext(network, problem, prop=prop, r=r,
                                       card_encoding=card_encoding,
                                       budget_mode=budget_mode)

    @property
    def network(self) -> ScadaNetwork:
        return self._ctx.network

    @property
    def problem(self) -> ObservabilityProblem:
        return self._ctx.problem

    @property
    def prop(self) -> Property:
        return self._ctx.prop

    @property
    def r(self) -> int:
        return self._ctx.r

    @property
    def reference(self) -> ReferenceEvaluator:
        return self._ctx.reference

    @property
    def base_encode_time(self) -> float:
        return self._ctx.base_encode_time

    def verify_budget(self, budget: FailureBudget,
                      minimize: bool = True,
                      max_conflicts: Optional[int] = None,
                      limits: Optional[Limits] = None
                      ) -> VerificationResult:
        """Verify the fixed property under one failure budget."""
        spec = ResiliencySpec(self.prop, budget, r=self.r)
        return self._ctx.verify(spec, minimize=minimize,
                                max_conflicts=max_conflicts,
                                limits=limits)

    def max_total_resiliency(self,
                             max_conflicts: Optional[int] = None,
                             limits: Optional[Limits] = None) -> int:
        """Largest k with the property k-resilient (galloping search)."""
        return self._ctx.max_total_resiliency(max_conflicts=max_conflicts,
                                              limits=limits)
