"""Verification outcomes: threat vectors and results.

A ``sat`` answer from the solver is translated into a
:class:`ThreatVector` — the set of unavailable devices together with the
downstream evidence (undelivered measurements, uncovered states) that
explains *why* the property fails, mirroring the paper's "elaborate
result" discussion (§IV-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from .specs import ResiliencySpec

__all__ = ["Status", "ThreatVector", "VerificationResult"]


class Status(enum.Enum):
    """Verdict of a resiliency verification.

    ``UNKNOWN`` is a first-class outcome, not an error: a resource
    budget (wall-clock, conflicts, propagations, memory, or a
    cooperative interrupt — see :class:`repro.sat.Limits`) expired
    before the solver decided.  It certifies *nothing*: an UNKNOWN is
    never resilient and never a threat.
    """

    #: unsat — no failure set within budget violates the property.
    RESILIENT = "resilient"
    #: sat — a threat vector exists.
    THREAT_FOUND = "threat-found"
    #: a solver resource budget expired before a verdict.
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ThreatVector:
    """A set of device failures that violates the resiliency property."""

    failed_ieds: FrozenSet[int]
    failed_rtus: FrozenSet[int]
    failed_links: FrozenSet[Tuple[int, int]] = frozenset()
    undelivered_measurements: FrozenSet[int] = frozenset()
    uncovered_states: FrozenSet[int] = frozenset()
    minimal: bool = False

    @property
    def failed_devices(self) -> FrozenSet[int]:
        return self.failed_ieds | self.failed_rtus

    @property
    def size(self) -> int:
        return len(self.failed_devices) + len(self.failed_links)

    def describe(self, labeler=None) -> str:
        """Human-readable summary; *labeler* maps id → label."""
        if labeler is None:
            parts = ([f"IED {i}" for i in sorted(self.failed_ieds)]
                     + [f"RTU {i}" for i in sorted(self.failed_rtus)])
        else:
            parts = [labeler(i) for i in sorted(self.failed_devices)]
        parts += [f"link {a}-{b}" for a, b in sorted(self.failed_links)]
        if not parts:
            return "(no failures needed: the property already fails)"
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"ThreatVector({self.describe()})"


@dataclass
class VerificationResult:
    """The outcome of one resiliency verification run."""

    spec: ResiliencySpec
    status: Status
    threat: Optional[ThreatVector] = None
    solve_time: float = 0.0
    encode_time: float = 0.0
    #: Time decoding the solver model into a :class:`ThreatVector`
    #: (including minimization); 0.0 for resilient/unknown verdicts.
    extract_time: float = 0.0
    num_vars: int = 0
    num_clauses: int = 0
    details: Dict[str, object] = field(default_factory=dict)
    #: Which verification backend produced this result
    #: ("fresh", "incremental", "preprocessed").
    backend: str = "fresh"
    #: Per-query solver search statistics (conflicts, decisions,
    #: propagations, restarts, check_time) — deltas attributable to this
    #: query even on a shared incremental solver.
    stats: Dict[str, float] = field(default_factory=dict)
    #: Which resource budget expired, when ``status`` is UNKNOWN
    #: (the :class:`repro.sat.LimitReason` value, e.g. ``"time"``).
    limit_reason: Optional[str] = None

    @property
    def is_resilient(self) -> bool:
        """True only for a decided RESILIENT verdict — never UNKNOWN."""
        return self.status is Status.RESILIENT

    @property
    def is_unknown(self) -> bool:
        return self.status is Status.UNKNOWN

    @property
    def total_time(self) -> float:
        return self.solve_time + self.encode_time + self.extract_time

    @property
    def phase_times(self) -> Dict[str, float]:
        """The encode/solve/extract split of :attr:`total_time`."""
        return {"encode": self.encode_time, "solve": self.solve_time,
                "extract": self.extract_time}

    def summary(self) -> str:
        if self.status is Status.RESILIENT:
            return (f"{self.spec.describe()}: HOLDS "
                    f"(unsat, {self.total_time:.3f}s)")
        if self.status is Status.THREAT_FOUND:
            assert self.threat is not None
            return (f"{self.spec.describe()}: VIOLATED by "
                    f"[{self.threat.describe()}] "
                    f"({self.total_time:.3f}s)")
        reason = (f"{self.limit_reason} limit" if self.limit_reason
                  else "budget exhausted")
        return (f"{self.spec.describe()}: UNKNOWN "
                f"({reason}, {self.total_time:.3f}s)")

    def __repr__(self) -> str:
        return f"VerificationResult({self.summary()})"
