"""The paper's contribution: SCADA resiliency verification.

Public entry point: :class:`ScadaAnalyzer`, configured with a
:class:`~repro.scada.network.ScadaNetwork` and an
:class:`ObservabilityProblem`, verifying :class:`ResiliencySpec`
instances.
"""

from .analyzer import ConfigurationLintError, ScadaAnalyzer
from .encoder import ModelEncoder
from .incremental import IncrementalAnalyzer, IncrementalContext
from .problem import ObservabilityProblem, group_rows_by_component
from .reference import ReferenceEvaluator
from .results import Status, ThreatVector, VerificationResult
from .search import SearchBounds, galloping_max, galloping_max_bounded
from .specs import FailureBudget, Property, ResiliencySpec

__all__ = [
    "ConfigurationLintError",
    "FailureBudget",
    "IncrementalAnalyzer",
    "IncrementalContext",
    "ModelEncoder",
    "ObservabilityProblem",
    "Property",
    "ReferenceEvaluator",
    "ResiliencySpec",
    "ScadaAnalyzer",
    "SearchBounds",
    "Status",
    "ThreatVector",
    "VerificationResult",
    "galloping_max",
    "galloping_max_bounded",
    "group_rows_by_component",
]
