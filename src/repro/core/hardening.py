"""Configuration hardening — the paper's stated future work (§VII).

Given a specification the system fails, find a *minimal* set of
configuration repairs that restores it.  Two repair families are
supported:

* **security upgrades** — replace a communicating pair's crypto profile
  with a strong (authenticated + integrity-protected) one, fixing
  secured-observability failures caused by weak links;
* **link additions** — add a redundant RTU-to-RTU/router link, fixing
  observability failures caused by single points of failure (the Fig. 4
  RTU 12 situation).

The search iterates over repair subsets in increasing size (so the
first success is minimum-cardinality) and verifies each candidate
configuration through a :class:`~repro.engine.VerificationEngine`
(``backend=`` selects the solving strategy).  A verification-call
budget keeps the combinatorial search bounded; exceeding it raises.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sat.limits import Limits
from ..scada.devices import CryptoProfile
from ..scada.network import ScadaNetwork
from ..scada.topology import Link
from .problem import ObservabilityProblem
from .results import Status
from .specs import ResiliencySpec

__all__ = ["Repair", "HardeningResult", "harden"]

#: The profile used for security upgrades (Table II's strongest entry).
STRONG_PROFILE = CryptoProfile.parse_many("rsa 2048 aes 256")


@dataclass(frozen=True)
class Repair:
    """One configuration change."""

    kind: str                 # "upgrade-security" | "add-link"
    pair: Tuple[int, int]

    def describe(self) -> str:
        a, b = self.pair
        if self.kind == "upgrade-security":
            return f"upgrade security profile of pair ({a}, {b})"
        return f"add a redundant link ({a}, {b})"


@dataclass
class HardeningResult:
    """Outcome of a hardening search."""

    spec: ResiliencySpec
    repairs: List[Repair]
    network: Optional[ScadaNetwork]
    verify_calls: int

    @property
    def succeeded(self) -> bool:
        return self.network is not None

    def summary(self) -> str:
        if not self.succeeded:
            return (f"{self.spec.describe()}: no repair set of the "
                    f"explored sizes restores the property")
        if not self.repairs:
            return f"{self.spec.describe()}: already holds, no repairs"
        steps = "; ".join(r.describe() for r in self.repairs)
        return f"{self.spec.describe()}: restored by [{steps}]"


def _apply(network: ScadaNetwork, repairs: Sequence[Repair]) -> ScadaNetwork:
    """Build a new network with *repairs* applied."""
    pair_security = dict(network.pair_security)
    links = list(network.topology.links)
    next_index = max((link.index for link in links), default=0)
    for repair in repairs:
        a, b = repair.pair
        key = (min(a, b), max(a, b))
        if repair.kind == "upgrade-security":
            pair_security[key] = STRONG_PROFILE
        elif repair.kind == "add-link":
            next_index += 1
            links.append(Link(index=next_index, a=a, b=b))
            pair_security.setdefault(key, STRONG_PROFILE)
        else:
            raise ValueError(f"unknown repair kind {repair.kind!r}")
    return ScadaNetwork(
        devices=list(network.devices.values()),
        links=links,
        measurement_map=network.measurement_map,
        pair_security=pair_security,
        policy=network.policy,
        name=network.name + "+hardened",
        max_paths=network.max_paths,
        max_path_length=network.max_path_length,
    )


def _candidate_upgrades(network: ScadaNetwork) -> List[Repair]:
    """Pairs on some delivery path that are not currently secured."""
    routers = network.router_ids
    seen: Dict[Tuple[int, int], None] = {}
    for ied in network.ied_ids:
        for path in network.forwarding_paths(ied):
            hops = [d for d in path if d not in routers]
            for i in range(len(hops) - 1):
                a, b = hops[i], hops[i + 1]
                if not network.hop_secured(a, b):
                    seen.setdefault((min(a, b), max(a, b)), None)
    return [Repair("upgrade-security", pair) for pair in seen]


def _candidate_links(network: ScadaNetwork) -> List[Repair]:
    """Missing RTU-RTU and RTU-router/MTU links."""
    rtus = network.rtu_ids
    hubs = sorted(network.router_ids) or [network.mtu_id]
    existing = {link.node_pair for link in network.topology.links}
    repairs: List[Repair] = []
    for a, b in itertools.combinations(rtus, 2):
        if (a, b) not in existing:
            repairs.append(Repair("add-link", (a, b)))
    for rtu in rtus:
        for hub in hubs:
            pair = (min(rtu, hub), max(rtu, hub))
            if pair not in existing:
                repairs.append(Repair("add-link", pair))
    return repairs


def harden(network: ScadaNetwork, problem: ObservabilityProblem,
           spec: ResiliencySpec,
           allow_upgrades: bool = True,
           allow_links: bool = True,
           max_repairs: int = 2,
           max_verify_calls: int = 500,
           backend: str = "fresh",
           limits: Optional[Limits] = None) -> HardeningResult:
    """Find a minimum-cardinality repair set restoring *spec*.

    Returns a result whose ``network`` is the repaired configuration, or
    ``None`` when no subset of at most *max_repairs* repairs works.
    ``backend`` selects the engine backend used to verify candidates;
    ``limits`` bounds each candidate's solve — an UNKNOWN verdict is
    *not* RESILIENT, so a budgeted search never certifies a repair it
    could not prove (it may merely miss one it lacked time for).
    """
    from ..engine import VerificationEngine

    calls = 0

    def verify(candidate: ScadaNetwork) -> bool:
        nonlocal calls
        calls += 1
        if calls > max_verify_calls:
            raise RuntimeError(
                f"hardening exceeded {max_verify_calls} verification calls")
        # Candidate networks are lint-checked by the caller's analyzer;
        # re-linting every repair candidate here would be wasted work
        # (and a weakened candidate may legitimately trip delivery rules).
        engine = VerificationEngine(candidate, problem, backend=backend,
                                    lint=False)
        result = engine.verify(spec, minimize=False, limits=limits)
        return result.status is Status.RESILIENT

    if verify(network):
        return HardeningResult(spec=spec, repairs=[], network=network,
                               verify_calls=calls)

    candidates: List[Repair] = []
    if allow_upgrades:
        candidates.extend(_candidate_upgrades(network))
    if allow_links:
        candidates.extend(_candidate_links(network))

    for size in range(1, max_repairs + 1):
        for combo in itertools.combinations(candidates, size):
            candidate = _apply(network, combo)
            if verify(candidate):
                return HardeningResult(spec=spec, repairs=list(combo),
                                       network=candidate,
                                       verify_calls=calls)
    return HardeningResult(spec=spec, repairs=[], network=None,
                           verify_calls=calls)
