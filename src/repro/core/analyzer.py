"""SCADA Analyzer — the paper's verification framework (Fig. 2).

``ScadaAnalyzer`` takes a SCADA configuration and an observability
problem, encodes the chosen resiliency specification, and solves it:

* **sat** → a threat vector: a set of at-most-budget device failures
  under which the property fails.  The raw model is validated against
  the reference evaluator and (optionally) shrunk to an
  inclusion-minimal failure set.
* **unsat** → the system is certified resilient at that specification.

Threat-space enumeration and maximal-resiliency search are layered on
top of ``verify`` (see :mod:`repro.analysis`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..obs.tracer import current_tracer, probe_for
from ..obs.tracer import span as obs_span
from ..sat.enumeration import drive_enumeration
from ..sat.limits import Limits
from ..scada.network import ScadaNetwork
from ..smt.solver import Result, Solver
from ..smt.terms import Not, Or
from .encoder import ModelEncoder
from .extraction import extract_threat
from .problem import ObservabilityProblem
from .reference import ReferenceEvaluator
from .results import Status, ThreatVector, VerificationResult
from .specs import ResiliencySpec

__all__ = ["ConfigurationLintError", "ScadaAnalyzer"]


class ConfigurationLintError(ValueError):
    """The configuration has error-level lint diagnostics.

    Verdicts over such a configuration would be meaningless (dangling
    references) or foregone (statically unobservable states), so the
    analyzer refuses to certify it.  The offending
    :class:`~repro.lint.diagnostics.LintReport` is on :attr:`report`.
    """

    def __init__(self, report) -> None:
        errors = report.errors
        summary = "; ".join(f"{d.code}: {d.message}" for d in errors[:3])
        if len(errors) > 3:
            summary += f"; and {len(errors) - 3} more"
        super().__init__(
            f"configuration {report.subject!r} fails lint with "
            f"{len(errors)} error(s): {summary} "
            f"(pass lint=False to analyze anyway)")
        self.report = report


class ScadaAnalyzer:
    """Resiliency verification for one SCADA configuration."""

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 card_encoding: str = "totalizer",
                 lint: bool = True,
                 preprocess: bool = False,
                 reference: Optional[ReferenceEvaluator] = None,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.problem = problem
        self.card_encoding = card_encoding
        self.preprocess = preprocess
        #: Forwarded to every SAT substrate this analyzer builds:
        #: ``inprocess`` (the ``--no-inprocess`` switch), portfolio
        #: worker diversification (``seed``/``phase_init``/
        #: ``restart_base``), ``cube`` assumptions, ``interrupt_check``.
        self.solver_opts = dict(solver_opts or {})
        if lint:
            # Imported lazily: repro.lint imports core modules at module
            # level, so a top-level import here would be circular.
            from ..lint import lint_case

            report = lint_case(network, problem)
            if report.has_errors:
                raise ConfigurationLintError(report)
        # The engine layer shares one reference evaluator across all of
        # its backends; standalone use builds a private one.
        self.reference = reference or ReferenceEvaluator(network, problem)
        # Cooperative-cancel plumbing: each query builds a throwaway
        # solver, so an interrupt arriving from another thread must (a)
        # reach the solver currently searching and (b) stay armed for a
        # query that has not built its solver yet.
        self._live_solver: Optional[Solver] = None
        self._interrupt_requested = False

    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query.

        The currently-solving query answers UNKNOWN with limit reason
        ``interrupt``; the flag is sticky until :meth:`clear_interrupt`,
        so a query racing past the solver hand-off is still caught.
        """
        self._interrupt_requested = True
        solver = self._live_solver
        if solver is not None:
            solver.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the analyzer after an :meth:`interrupt`."""
        self._interrupt_requested = False
        solver = self._live_solver
        if solver is not None:
            solver.clear_interrupt()

    @property
    def backend_name(self) -> str:
        return "preprocessed" if self.preprocess else "fresh"

    def _build(self, spec: ResiliencySpec,
               produce_proof: bool = False,
               preprocess: Optional[bool] = None) -> tuple:
        """Encode the threat-verification model into a fresh solver."""
        encoder = ModelEncoder(self.network, self.problem,
                               model_links=spec.link_k is not None)
        solver = Solver(card_encoding=self.card_encoding,
                        produce_proof=produce_proof,
                        preprocess=(self.preprocess if preprocess is None
                                    else preprocess),
                        solver_opts=self.solver_opts)
        self._live_solver = solver
        if self._interrupt_requested:
            solver.interrupt()
        solver.set_hooks(probe_for(current_tracer()))
        started = time.perf_counter()
        with obs_span("encode", backend=self.backend_name):
            solver.add(*encoder.availability_axioms())
            solver.add(*encoder.delivery_definitions(secured=False))
            if spec.property.uses_security:
                solver.add(*encoder.delivery_definitions(secured=True))
            solver.add(encoder.budget_constraint(spec.budget))
            if spec.link_k is not None:
                solver.add(encoder.link_budget_constraint(spec.link_k))
            solver.add(encoder.property_negation(spec.property, spec.r))
        encode_time = time.perf_counter() - started
        return solver, encoder, encode_time

    def _extract_threat(self, solver: Solver, encoder: ModelEncoder,
                        spec: ResiliencySpec,
                        minimize: bool) -> ThreatVector:
        return extract_threat(solver.model(), encoder, self.reference,
                              self.network, self.problem, spec, minimize)

    # ------------------------------------------------------------------

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        """Verify one resiliency specification.

        ``minimize=True`` shrinks a found threat vector to an
        inclusion-minimal failure set before reporting it.
        ``certify=True`` re-validates an unsat (resilient) answer with
        the independent RUP proof checker; the result's
        ``details["proof_checked"]`` records the outcome.  ``limits``
        bounds the solve (see :class:`repro.sat.Limits`); an expired
        budget yields an UNKNOWN result naming the reason, never a
        spurious verdict.
        """
        solver, encoder, encode_time = self._build(
            spec, produce_proof=certify)
        with obs_span("solve", backend=self.backend_name) as sp:
            outcome = solver.check(max_conflicts=max_conflicts,
                                   limits=limits)
            sp.attrs["result"] = outcome.value
        result = VerificationResult(
            spec=spec,
            status=Status.UNKNOWN,
            encode_time=encode_time,
            solve_time=solver.statistics.check_time,
            num_vars=solver.num_vars,
            num_clauses=solver.num_clauses,
            backend=self.backend_name,
            stats=dict(solver.last_check_stats),
        )
        if outcome is Result.UNKNOWN:
            if solver.last_limit_reason is not None:
                result.limit_reason = solver.last_limit_reason.value
            return result
        if outcome is Result.UNSAT:
            result.status = Status.RESILIENT
            if certify:
                result.details["proof_checked"] = \
                    solver.validate_unsat_proof()
            return result
        result.status = Status.THREAT_FOUND
        started = time.perf_counter()
        with obs_span("extract", backend=self.backend_name):
            result.threat = self._extract_threat(solver, encoder, spec,
                                                 minimize)
        result.extract_time = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------

    def enumerate_threat_vectors(
        self,
        spec: ResiliencySpec,
        limit: Optional[int] = None,
        minimal: bool = True,
        max_conflicts: Optional[int] = None,
        limits: Optional[Limits] = None,
    ) -> List[ThreatVector]:
        """All (minimal) threat vectors within the budget.

        With ``minimal=True`` (the default, and how the paper counts its
        threat space) each sat model is shrunk to an inclusion-minimal
        failure set, which is then blocked along with all its supersets;
        the loop thus enumerates exactly the minimal threat vectors.
        With ``minimal=False`` every distinct failure *assignment* is
        counted (blocking only the exact assignment).

        Every individual solve is bounded by *limits*; if one expires
        the enumeration is incomplete and
        :exc:`~repro.sat.ResourceLimitReached` is raised with the
        vectors found so far on its ``partial`` attribute.
        """
        solver, encoder, _ = self._build(spec)
        node_vars = encoder.field_node_vars()

        def check() -> Optional[bool]:
            outcome = solver.check(max_conflicts=max_conflicts,
                                   limits=limits)
            if outcome is Result.UNKNOWN:
                return None
            return outcome is Result.SAT

        def extract() -> ThreatVector:
            return self._extract_threat(solver, encoder, spec,
                                        minimize=minimal)

        def block(threat: ThreatVector) -> bool:
            failed = threat.failed_devices
            failed_links = threat.failed_links
            if minimal:
                # Forbid this failure set and every superset.
                revive = [node_vars[i] for i in failed]
                revive += [encoder.link_up(a, b) for a, b in failed_links]
                solver.add(Or(*revive))
            else:
                # Forbid only this exact assignment of the node vars.
                flip = [
                    Not(var) if i not in failed else var
                    for i, var in node_vars.items()
                ]
                if spec.link_k is not None:
                    flip += [
                        Not(var) if pair not in failed_links else var
                        for pair, var in encoder.link_vars().items()
                    ]
                solver.add(Or(*flip))
            # The empty vector violates the property; nothing else can
            # be more minimal, so stop the enumeration here.
            return bool(failed or failed_links)

        return list(drive_enumeration(
            check, extract, block, limit=limit, what="threat vector",
            limit_reason=lambda: solver.last_limit_reason))

    # ------------------------------------------------------------------

    def model_size(self, spec: ResiliencySpec) -> Dict[str, int]:
        """Encoded model size (vars/clauses) without solving."""
        solver, _, _ = self._build(spec)
        return {"vars": solver.num_vars, "clauses": solver.num_clauses}

    def export_cnf(self, spec: ResiliencySpec) -> tuple:
        """The Tseitin-emitted CNF of the threat model, plus its frozen
        variables (the named model variables an analysis must keep).

        Used by ``repro lint --encoding`` and the preprocessing
        benchmarks; solving is untouched.
        """
        solver, _, _ = self._build(spec, preprocess=True)
        assert solver.cnf is not None
        return solver.cnf, set(solver.named_variables().values())

    def export_smtlib(self, spec: ResiliencySpec) -> str:
        """The full threat-verification model as an SMT-LIB 2 script.

        ``sat`` from an external solver (e.g. Z3, the paper's engine)
        means a threat vector exists — the same convention as
        :meth:`verify`.
        """
        from ..smt.smtlib import to_smtlib

        solver, _, _ = self._build(spec)
        return to_smtlib(
            solver.assertions(),
            comment=(f"SCADA resiliency threat model: {spec.describe()}\n"
                     f"network: {self.network.name}\n"
                     f"sat => a threat vector exists "
                     f"(false Node_i are the failed devices)"))
