"""Shared sat-model → :class:`ThreatVector` translation.

Every backend that obtains a satisfying assignment for the threat model
— the fresh analyzer, the incremental push/pop context, and the
preprocessed pipeline — decodes it identically: read the failed devices
(and links) off the model, validate them against the independent
reference evaluator, optionally shrink to an inclusion-minimal set, and
attach the delivery evidence explaining *why* the property fails.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..scada.network import ScadaNetwork
from ..smt.solver import Model
from .encoder import ModelEncoder
from .problem import ObservabilityProblem
from .reference import ReferenceEvaluator
from .results import ThreatVector
from .specs import ResiliencySpec

__all__ = ["extract_threat"]


def extract_threat(model: Model, encoder: ModelEncoder,
                   reference: ReferenceEvaluator,
                   network: ScadaNetwork,
                   problem: ObservabilityProblem,
                   spec: ResiliencySpec,
                   minimize: bool,
                   origin: str = "solver") -> ThreatVector:
    """Decode, validate, and (optionally) minimize a threat vector."""
    failed: Set[int] = {
        device for device, var in encoder.field_node_vars().items()
        if not model.value(var)
    }
    failed_links: Set[Tuple[int, int]] = set()
    if spec.link_k is not None:
        failed_links = {pair for pair, var in encoder.link_vars().items()
                        if not model.value(var)}
    if not reference.is_threat(spec, failed, failed_links):
        raise AssertionError(
            f"{origin} produced an invalid threat vector {sorted(failed)} "
            f"/ links {sorted(failed_links)} for {spec.describe()}; "
            f"encoder and reference disagree")
    minimal = False
    if minimize:
        devices, links = reference.minimize_threat_with_links(
            spec, failed, failed_links)
        failed, failed_links = set(devices), set(links)
        minimal = True
    secured = spec.property.uses_security
    delivered = reference.delivered_measurements(
        failed, secured=secured, failed_links=failed_links)
    undelivered = set(problem.state_sets) - delivered
    covered: Set[int] = set()
    for z in delivered:
        covered.update(problem.state_sets[z])
    uncovered = set(problem.states()) - covered
    return ThreatVector(
        failed_ieds=frozenset(failed & set(network.ied_ids)),
        failed_rtus=frozenset(failed & set(network.rtu_ids)),
        failed_links=frozenset(failed_links),
        undelivered_measurements=frozenset(undelivered),
        uncovered_states=frozenset(uncovered),
        minimal=minimal,
    )
