"""Monotone budget search shared by every max-resiliency consumer.

Resiliency is monotone in the failure budget — enlarging the budget can
only admit more threat vectors — so the largest holding budget can be
found with a galloping upper-bound probe followed by binary search.
This helper is the single implementation behind
:mod:`repro.analysis.max_resiliency`, the incremental analyzer, and the
:class:`~repro.engine.VerificationEngine` search methods.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["galloping_max"]


def galloping_max(check: Callable[[int], bool], upper: int) -> int:
    """Largest k in [-1, upper] with ``check(k)`` true; check is monotone.

    Uses galloping (1, 2, 4, ...) to find a violated budget first —
    real maximal resiliencies are small, and checks get much more
    expensive as the cardinality bound grows — then binary search
    inside the bracket.  Returns -1 when even k = 0 fails.
    """
    if not check(0):
        return -1
    lo = 0
    step = 1
    hi = None
    while hi is None:
        probe = lo + step
        if probe >= upper:
            probe = upper
        if check(probe):
            lo = probe
            if probe == upper:
                return upper
            step *= 2
        else:
            hi = probe - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if check(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo
