"""Monotone budget search shared by every max-resiliency consumer.

Resiliency is monotone in the failure budget — enlarging the budget can
only admit more threat vectors — so the largest holding budget can be
found with a galloping upper-bound probe followed by binary search.
This helper is the single implementation behind
:mod:`repro.analysis.max_resiliency`, the incremental analyzer, and the
:class:`~repro.engine.VerificationEngine` search methods.

With resource-bounded solving the oracle is *three-valued*: a probe may
come back UNKNOWN when its budget expires.  UNKNOWN is **neither
bound** — it neither proves the budget holds nor that it fails — so
:func:`galloping_max_bounded` stops refining at the first UNKNOWN probe
and reports the sound bracket established so far as a
:class:`SearchBounds` instead of silently mis-bracketing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = ["SearchBounds", "galloping_max", "galloping_max_bounded"]


@dataclass(frozen=True)
class SearchBounds:
    """The sound bracket a (possibly budget-limited) search produced.

    ``lower`` is the largest budget *proven* to hold (-1 when not even
    k = 0 was proven); every budget above ``upper`` is *proven* to
    fail.  When ``lower == upper`` with no unknown probes the search is
    exact and the maximum is ``lower``; otherwise the true maximum lies
    somewhere in ``[lower, upper]`` and ``unknown_budgets`` lists the
    probes whose solves expired.
    """

    lower: int
    upper: int
    unknown_budgets: Tuple[int, ...] = ()

    @property
    def exact(self) -> bool:
        return self.lower == self.upper and not self.unknown_budgets

    def describe(self) -> str:
        if self.exact:
            return str(self.lower)
        return (f"in [{self.lower}, {self.upper}] "
                f"(UNKNOWN at k={list(self.unknown_budgets)})")


def galloping_max_bounded(check: Callable[[int], Optional[bool]],
                          upper: int, lower: int = -1) -> SearchBounds:
    """Bracket the largest k in [*lower*, *upper*] with ``check(k)`` true.

    *check* is a monotone three-valued oracle: ``True`` (holds),
    ``False`` (fails), or ``None`` (UNKNOWN — the probe's resource
    budget expired).  Gallops (1, 2, 4, ...) to find a violated budget
    first — real maximal resiliencies are small, and checks get much
    more expensive as the cardinality bound grows — then binary-searches
    the bracket.  An UNKNOWN probe is treated as *neither* bound:
    refinement stops and the bracket proven so far is returned.

    A caller with outside knowledge (e.g. the structural screening
    pass) seeds the bracket: *lower* asserts ``check`` holds up to and
    including that budget — no probe is ever issued at or below it —
    and *upper* that everything above fails.  With ``lower == upper``
    the maximum is already pinned and no probe runs at all.
    """
    if lower > upper:
        raise ValueError(
            f"seeded lower bound {lower} exceeds upper bound {upper}")
    if upper < 0:
        return SearchBounds(-1, -1)
    if lower == upper:
        return SearchBounds(lower, lower)
    if lower < 0:
        first = check(0)
        if first is None:
            return SearchBounds(-1, upper, (0,))
        if not first:
            return SearchBounds(-1, -1)
        lower = 0
    lo = lower      # largest budget proven (or asserted) to hold
    hi = upper      # largest budget not yet proven to fail
    step = 1
    while lo < hi:  # gallop for a failing budget
        probe = min(lo + step, hi)
        verdict = check(probe)
        if verdict is None:
            return SearchBounds(lo, hi, (probe,))
        if verdict:
            lo = probe
            step *= 2
        else:
            hi = probe - 1
            break
    while lo < hi:  # binary search inside the bracket
        mid = (lo + hi + 1) // 2
        verdict = check(mid)
        if verdict is None:
            return SearchBounds(lo, hi, (mid,))
        if verdict:
            lo = mid
        else:
            hi = mid - 1
    return SearchBounds(lo, lo)


def galloping_max(check: Callable[[int], bool], upper: int) -> int:
    """Largest k in [-1, upper] with ``check(k)`` true; check is monotone.

    The two-valued facade over :func:`galloping_max_bounded` for
    oracles that always decide.  Returns -1 when even k = 0 fails.
    """
    return galloping_max_bounded(check, upper).lower
