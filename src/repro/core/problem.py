"""The observability side of a verification problem.

The formal model needs exactly three facts about the power system:

* the number of state variables ``n``,
* ``StateSet_Z`` — which states each measurement touches (the non-zero
  columns of its Jacobian row), and
* ``UMsrSet_E`` — which measurements observe the same electrical
  component and therefore count once toward the unique-measurement tally.

:class:`ObservabilityProblem` carries these, built either from a
:class:`~repro.grid.jacobian.JacobianTable` (component identity is known
from the measurement taxonomy) or from a raw Jacobian matrix using the
paper's own rule: two rows observe the same component iff they are equal
or exact negations of each other (§III-C).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..grid.jacobian import JacobianTable

__all__ = ["ObservabilityProblem", "group_rows_by_component"]


def group_rows_by_component(
    rows: Sequence[Mapping[int, float]],
    indices: Sequence[int],
    tolerance: float = 1e-9,
) -> List[List[int]]:
    """Group measurement indices whose rows are equal or negated.

    Implements the paper's ``UMsrSet`` condition: measurements *Z* and
    *Z'* represent the same electrical component when their rows have
    non-zero entries on the same columns with pairwise equal (or all
    pairwise negated) values.
    """
    def canonical(row: Mapping[int, float]):
        items = sorted((bus, coeff) for bus, coeff in row.items()
                       if abs(coeff) > tolerance)
        if not items:
            return ()
        # Normalize sign by the first non-zero coefficient.
        sign = 1.0 if items[0][1] > 0 else -1.0
        return tuple((bus, round(sign * coeff / tolerance) * tolerance)
                     for bus, coeff in items)

    groups: Dict[tuple, List[int]] = {}
    for row, index in zip(rows, indices):
        groups.setdefault(canonical(row), []).append(index)
    return [sorted(group) for group in groups.values()]


class ObservabilityProblem:
    """States, state sets, and unique-measurement groups."""

    def __init__(self, num_states: int,
                 state_sets: Mapping[int, Sequence[int]],
                 unique_groups: Sequence[Sequence[int]]) -> None:
        if num_states < 1:
            raise ValueError("num_states must be positive")
        self.num_states = num_states
        self.state_sets: Dict[int, Set[int]] = {
            z: set(states) for z, states in state_sets.items()}
        self.unique_groups: List[List[int]] = [
            sorted(group) for group in unique_groups]
        self._validate()

    def _validate(self) -> None:
        for z, states in self.state_sets.items():
            for state in states:
                if not 1 <= state <= self.num_states:
                    raise ValueError(
                        f"measurement {z} references state {state}, "
                        f"outside 1..{self.num_states}")
        grouped = [z for group in self.unique_groups for z in group]
        if len(grouped) != len(set(grouped)):
            raise ValueError("a measurement appears in two unique groups")
        missing = set(grouped) - set(self.state_sets)
        if missing:
            raise ValueError(f"groups reference unknown measurements "
                             f"{sorted(missing)}")
        ungrouped = set(self.state_sets) - set(grouped)
        if ungrouped:
            # Every measurement is its own component unless grouped.
            for z in sorted(ungrouped):
                self.unique_groups.append([z])

    # ------------------------------------------------------------------

    @classmethod
    def from_table(cls, table: JacobianTable) -> "ObservabilityProblem":
        """Build from a Jacobian table.

        Unique-measurement groups come from the paper's row-comparison
        rule rather than the measurement taxonomy: besides pairing the
        forward/backward flows of each line, the rule also recognizes
        that a leaf bus's injection equals the flow into it — exactly
        the injection-redundancy case §III-C discusses.
        """
        indices = [msr.index for msr in table.plan.measurements]
        groups = group_rows_by_component(table.rows, indices)
        return cls(
            num_states=table.plan.num_states,
            state_sets=table.state_sets(),
            unique_groups=groups,
        )

    @classmethod
    def from_rows(cls, num_states: int,
                  rows: Sequence[Mapping[int, float]],
                  indices: Optional[Sequence[int]] = None
                  ) -> "ObservabilityProblem":
        """Build from raw Jacobian rows (Table II style input).

        Component grouping falls back to the paper's row-comparison rule.
        """
        if indices is None:
            indices = list(range(1, len(rows) + 1))
        state_sets = {
            index: [bus for bus, coeff in row.items() if coeff != 0.0]
            for row, index in zip(rows, indices)
        }
        groups = group_rows_by_component(rows, indices)
        return cls(num_states=num_states, state_sets=state_sets,
                   unique_groups=groups)

    # ------------------------------------------------------------------

    @property
    def measurement_indices(self) -> List[int]:
        return sorted(self.state_sets)

    @property
    def num_measurements(self) -> int:
        return len(self.state_sets)

    @property
    def num_components(self) -> int:
        return len(self.unique_groups)

    def measurements_covering(self, state: int) -> List[int]:
        """All measurements whose ``StateSet`` contains *state*."""
        return sorted(z for z, states in self.state_sets.items()
                      if state in states)

    def states(self) -> range:
        return range(1, self.num_states + 1)

    def fingerprint(self) -> str:
        """A stable digest of the observability data the encoder reads.

        Combined with :meth:`ScadaNetwork.fingerprint
        <repro.scada.network.ScadaNetwork.fingerprint>` it keys the
        engine's encoding cache.
        """
        parts = [f"n={self.num_states}"]
        for z in sorted(self.state_sets):
            states = ",".join(map(str, sorted(self.state_sets[z])))
            parts.append(f"z{z}:{states}")
        for group in sorted(self.unique_groups):
            parts.append("u" + ",".join(map(str, group)))
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()[:16]

    def __repr__(self) -> str:
        return (f"ObservabilityProblem(n={self.num_states}, "
                f"m={self.num_measurements}, "
                f"components={self.num_components})")
