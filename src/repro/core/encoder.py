"""Encoding the paper's constraints as SMT terms.

The paper states its model as one-directional implications (e.g. "alive
path ⇒ AssuredDelivery").  For *threat verification* the derived
predicates must be **defined**, not merely bounded — otherwise the
solver could falsify ``AssuredDelivery`` gratuitously and report
spurious threat vectors.  The encoder therefore asserts bi-implications:

* ``D_Z ↔ ∃ an alive assured path from Z's IED to the MTU``
* ``S_Z ↔ ∃ an alive secured path``
* ``¬Observability ↔ (∃X uncovered) ∨ (#unique delivered < n)``

and the failure budget as a cardinality bound over the ``Node``
variables of field devices.  All static configuration (protocol
pairing, crypto pairing, authentication, integrity) is folded into the
path sets before encoding, exactly as the paper's constraints allow.
"""

from __future__ import annotations

from typing import Dict, List

from ..scada.network import ScadaNetwork
from ..smt.terms import (
    And,
    AtMost,
    Bool,
    BoolVar,
    Iff,
    Not,
    Or,
    Term,
)
from .problem import ObservabilityProblem
from .specs import FailureBudget, Property

__all__ = ["ModelEncoder"]


class ModelEncoder:
    """Builds the constraint terms for one SCADA verification problem."""

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 model_links: bool = False) -> None:
        self.network = network
        self.problem = problem
        self.model_links = model_links
        self._node_vars: Dict[int, BoolVar] = {}
        self._link_vars: Dict[tuple, BoolVar] = {}
        self._delivered_vars: Dict[int, BoolVar] = {}
        self._secured_vars: Dict[int, BoolVar] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def node(self, device_id: int) -> BoolVar:
        """``Node_i``: device *i* is available."""
        var = self._node_vars.get(device_id)
        if var is None:
            var = Bool(f"Node_{device_id}")
            self._node_vars[device_id] = var
        return var

    def link_up(self, a: int, b: int) -> BoolVar:
        """``LinkStatus_l``: the link between *a* and *b* is up."""
        pair = (a, b) if a < b else (b, a)
        var = self._link_vars.get(pair)
        if var is None:
            var = Bool(f"Link_{pair[0]}_{pair[1]}")
            self._link_vars[pair] = var
        return var

    def delivered(self, z: int) -> BoolVar:
        """``D_Z``: measurement *Z* is successfully delivered."""
        var = self._delivered_vars.get(z)
        if var is None:
            var = Bool(f"D_{z}")
            self._delivered_vars[z] = var
        return var

    def secured(self, z: int) -> BoolVar:
        """``S_Z``: measurement *Z* is delivered with authentication and
        integrity protection."""
        var = self._secured_vars.get(z)
        if var is None:
            var = Bool(f"S_{z}")
            self._secured_vars[z] = var
        return var

    # ------------------------------------------------------------------
    # Delivery definitions
    # ------------------------------------------------------------------

    def _path_alive(self, path) -> Term:
        """Conjunction of ``Node_i`` (and, with link modeling, the
        ``LinkStatus`` of every traversed link) over a path."""
        terms = [self.node(device) for device in path]
        if self.model_links:
            for a, b in zip(path, path[1:]):
                terms.append(self.link_up(a, b))
        return And(*terms)

    def _delivery_term(self, ied: int, secured: bool) -> Term:
        paths = (self.network.secured_paths(ied) if secured
                 else self.network.assured_paths(ied))
        return Or(*[self._path_alive(path) for path in paths])

    def delivery_definitions(self, secured: bool) -> List[Term]:
        """``D_Z`` (or ``S_Z``) definitions for every measurement.

        Measurements in the observability problem that no IED transmits
        are pinned undelivered.
        """
        terms: List[Term] = []
        var_of = self.secured if secured else self.delivered
        ied_delivery: Dict[int, Term] = {
            ied: self._delivery_term(ied, secured)
            for ied in self.network.ied_ids
        }
        assigned = set()
        for ied in self.network.ied_ids:
            for z in self.network.measurements_of(ied):
                if z not in self.problem.state_sets:
                    continue
                terms.append(Iff(var_of(z), ied_delivery[ied]))
                assigned.add(z)
        for z in self.problem.measurement_indices:
            if z not in assigned:
                terms.append(Not(var_of(z)))
        return terms

    def availability_axioms(self) -> List[Term]:
        """Non-field devices (MTU, routers) never fail in this model."""
        terms: List[Term] = []
        for device in self.network.devices.values():
            if not device.is_field_device:
                terms.append(self.node(device.device_id))
        return terms

    # ------------------------------------------------------------------
    # Property negations (the threat conditions)
    # ------------------------------------------------------------------

    def not_observability(self, secured: bool = False) -> Term:
        """``¬Observability`` / ``¬SecuredObservability``.

        True iff some state is covered by no delivered measurement, or
        fewer than ``n`` *unique* measurements are delivered.
        """
        var_of = self.secured if secured else self.delivered
        uncovered: List[Term] = []
        for state in self.problem.states():
            covering = self.problem.measurements_covering(state)
            uncovered.append(Not(Or(*[var_of(z) for z in covering])))
        group_delivered = [
            Or(*[var_of(z) for z in group])
            for group in self.problem.unique_groups
        ]
        too_few = AtMost(group_delivered, self.problem.num_states - 1)
        return Or(*uncovered, too_few)

    def not_command_deliverability(self) -> Term:
        """``¬CommandDeliverability``: some field device is alive yet
        unreachable from the MTU over assured hops — the control center
        could not command it."""
        conditions: List[Term] = []
        for device in self.network.field_device_ids:
            paths = self.network.assured_paths(device)
            reach = Or(*[self._path_alive(path) for path in paths])
            conditions.append(And(self.node(device), Not(reach)))
        return Or(*conditions)

    def not_bad_data_detectability(self, r: int) -> Term:
        """``¬BadDataDetectability``: some state has ≤ r secured
        measurements, so *r* corrupted readings can hide."""
        conditions: List[Term] = []
        for state in self.problem.states():
            covering = self.problem.measurements_covering(state)
            conditions.append(
                AtMost([self.secured(z) for z in covering], r))
        return Or(*conditions)

    def property_negation(self, prop: Property, r: int = 1) -> Term:
        """The threat condition ``¬property`` for any supported property.

        The single dispatch point used by every verification backend
        (fresh, incremental, preprocessed) and the attack-cost search;
        ``r`` only matters for bad-data detectability.
        """
        if prop is Property.OBSERVABILITY:
            return self.not_observability(secured=False)
        if prop is Property.SECURED_OBSERVABILITY:
            return self.not_observability(secured=True)
        if prop is Property.COMMAND_DELIVERABILITY:
            return self.not_command_deliverability()
        return self.not_bad_data_detectability(r)

    # ------------------------------------------------------------------
    # Failure budget
    # ------------------------------------------------------------------

    def budget_constraint(self, budget: FailureBudget) -> Term:
        """At most ``k`` (or ``k1``/``k2``) field devices unavailable."""
        if budget.is_split:
            assert budget.k1 is not None and budget.k2 is not None
            ied_down = [Not(self.node(i)) for i in self.network.ied_ids]
            rtu_down = [Not(self.node(i)) for i in self.network.rtu_ids]
            return And(AtMost(ied_down, budget.k1),
                       AtMost(rtu_down, budget.k2))
        assert budget.k is not None
        down = [Not(self.node(i)) for i in self.network.field_device_ids]
        return AtMost(down, budget.k)

    # ------------------------------------------------------------------

    def node_vars(self) -> Dict[int, BoolVar]:
        """Node variables allocated so far (device id → var)."""
        return dict(self._node_vars)

    def field_node_vars(self) -> Dict[int, BoolVar]:
        return {i: self.node(i) for i in self.network.field_device_ids}

    def link_vars(self) -> Dict[tuple, BoolVar]:
        """Link variables for every topology link (allocating any
        missing ones, so the budget covers links off all paths too)."""
        for link in self.network.topology.links:
            self.link_up(link.a, link.b)
        return dict(self._link_vars)

    def link_budget_constraint(self, link_k: int) -> Term:
        """At most *link_k* links down."""
        down = [Not(var) for var in self.link_vars().values()]
        return AtMost(down, link_k)
