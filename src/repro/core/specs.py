"""Resiliency specifications.

The paper verifies three properties (§III):

* ``k``-resilient observability,
* ``k``-resilient *secured* observability,
* ``(k, r)``-resilient bad-data detectability,

each either with a *total* failure budget ``k`` over all field devices
or a *split* budget ``(k1, k2)`` counting IED and RTU failures
separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Property", "FailureBudget", "ResiliencySpec"]


class Property(enum.Enum):
    """The verifiable resiliency property.

    ``COMMAND_DELIVERABILITY`` is an extension: the paper's motivation
    (§II-B) includes "delivering control commands from the provider's
    side to the field devices"; this property demands that every *alive*
    field device stays reachable from the MTU under the failure budget.
    """

    OBSERVABILITY = "observability"
    SECURED_OBSERVABILITY = "secured-observability"
    BAD_DATA_DETECTABILITY = "bad-data-detectability"
    COMMAND_DELIVERABILITY = "command-deliverability"

    @property
    def uses_security(self) -> bool:
        """Whether the property depends on secured delivery."""
        return self in (Property.SECURED_OBSERVABILITY,
                        Property.BAD_DATA_DETECTABILITY)


@dataclass(frozen=True)
class FailureBudget:
    """How many field devices may fail.

    Exactly one of the two forms is active: a *total* budget ``k``
    (any mix of IEDs and RTUs) or a *split* budget ``(k1, k2)``.
    """

    k: Optional[int] = None
    k1: Optional[int] = None
    k2: Optional[int] = None

    def __post_init__(self) -> None:
        split = self.k1 is not None or self.k2 is not None
        if self.k is None and not split:
            raise ValueError("a budget needs k or (k1, k2)")
        if self.k is not None and split:
            raise ValueError("give either k or (k1, k2), not both")
        if split and (self.k1 is None or self.k2 is None):
            raise ValueError("a split budget needs both k1 and k2")
        for value in (self.k, self.k1, self.k2):
            if value is not None and value < 0:
                raise ValueError("budgets are non-negative")

    @classmethod
    def total(cls, k: int) -> "FailureBudget":
        """Any *k* field devices may fail."""
        return cls(k=k)

    @classmethod
    def split(cls, k1: int, k2: int) -> "FailureBudget":
        """Up to *k1* IEDs and *k2* RTUs may fail."""
        return cls(k1=k1, k2=k2)

    @property
    def is_split(self) -> bool:
        return self.k is None

    @property
    def max_failures(self) -> int:
        """An upper bound on the number of failed devices."""
        if self.k is not None:
            return self.k
        assert self.k1 is not None and self.k2 is not None
        return self.k1 + self.k2

    def describe(self) -> str:
        if self.is_split:
            return f"({self.k1}, {self.k2})"
        return str(self.k)

    def __repr__(self) -> str:
        return f"FailureBudget({self.describe()})"


@dataclass(frozen=True)
class ResiliencySpec:
    """A property plus its failure budget (and ``r`` for bad data).

    ``link_k`` optionally admits up to that many *communication link*
    failures in addition to the device budget.  The paper folds link
    failures into device unavailability ("a link failure toward the
    device", §III-B); modeling them separately is a strict extension —
    ``link_k=None`` reproduces the paper's model exactly.
    """

    property: Property
    budget: FailureBudget
    r: int = 1
    link_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError("r must be non-negative")
        if self.link_k is not None and self.link_k < 0:
            raise ValueError("link_k must be non-negative")

    @classmethod
    def observability(cls, k: Optional[int] = None,
                      k1: Optional[int] = None,
                      k2: Optional[int] = None,
                      link_k: Optional[int] = None) -> "ResiliencySpec":
        return cls(Property.OBSERVABILITY, _budget(k, k1, k2),
                   link_k=link_k)

    @classmethod
    def secured_observability(cls, k: Optional[int] = None,
                              k1: Optional[int] = None,
                              k2: Optional[int] = None,
                              link_k: Optional[int] = None
                              ) -> "ResiliencySpec":
        return cls(Property.SECURED_OBSERVABILITY, _budget(k, k1, k2),
                   link_k=link_k)

    @classmethod
    def command_deliverability(cls, k: Optional[int] = None,
                               k1: Optional[int] = None,
                               k2: Optional[int] = None,
                               link_k: Optional[int] = None
                               ) -> "ResiliencySpec":
        return cls(Property.COMMAND_DELIVERABILITY, _budget(k, k1, k2),
                   link_k=link_k)

    @classmethod
    def for_property(cls, prop: Property, r: int = 1,
                     k: Optional[int] = None,
                     k1: Optional[int] = None,
                     k2: Optional[int] = None,
                     link_k: Optional[int] = None) -> "ResiliencySpec":
        """Build a spec for any property from keyword budgets.

        The single dispatch point replacing the per-module ``_spec_for``
        / ``_make_spec`` copies the sweep drivers used to carry.  ``r``
        is ignored by every property except bad-data detectability.
        """
        if prop is Property.BAD_DATA_DETECTABILITY:
            return cls(prop, _budget(k, k1, k2), r=r, link_k=link_k)
        return cls(prop, _budget(k, k1, k2), link_k=link_k)

    @classmethod
    def bad_data_detectability(cls, r: int, k: Optional[int] = None,
                               k1: Optional[int] = None,
                               k2: Optional[int] = None,
                               link_k: Optional[int] = None
                               ) -> "ResiliencySpec":
        return cls(Property.BAD_DATA_DETECTABILITY, _budget(k, k1, k2),
                   r=r, link_k=link_k)

    def describe(self) -> str:
        if self.property is Property.BAD_DATA_DETECTABILITY:
            text = (f"({self.budget.describe()}, {self.r})-resilient "
                    f"{self.property.value}")
        else:
            text = (f"{self.budget.describe()}-resilient "
                    f"{self.property.value}")
        if self.link_k is not None:
            text += f" (+{self.link_k} link failures)"
        return text


def _budget(k: Optional[int], k1: Optional[int],
            k2: Optional[int]) -> FailureBudget:
    if k is not None:
        return FailureBudget.total(k)
    if k1 is None or k2 is None:
        raise ValueError("give k, or both k1 and k2")
    return FailureBudget.split(k1, k2)
