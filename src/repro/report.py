"""Audit-report generation.

Bundles the analyses a grid operator would run on one configuration —
verdicts across a specification ladder, maximal resiliency, the threat
space one step past the certificate, breach-point ranking, cheapest
attack, and hardening suggestions — into a single Markdown document.
Exposed on the CLI as ``python -m repro report <config>``.

All verification runs through one :class:`~repro.engine.VerificationEngine`
(``backend=`` selects the strategy); with ``jobs > 1`` the per-property
maximal-resiliency searches fan out across a process pool.
"""

from __future__ import annotations

import io
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .analysis import (
    cheapest_threat,
    threat_space,
    uniform_costs,
)
from .core import (
    ObservabilityProblem,
    Property,
    ResiliencySpec,
    SearchBounds,
)
from .core.hardening import harden
from .engine import SweepExecutor, VerificationEngine
from .obs.tracer import span as obs_span
from .sat.limits import Limits, ResourceLimitReached
from .scada.network import ScadaNetwork

__all__ = ["audit_report"]


@dataclass(frozen=True)
class _MaximaTask:
    """Picklable maximal-resiliency workload for one property."""

    network: ScadaNetwork
    problem: ObservabilityProblem
    prop: Property
    backend: str
    limits: Optional[Limits] = None


def _maxima_task(
    task: _MaximaTask,
) -> Tuple[SearchBounds, SearchBounds, SearchBounds]:
    # Workers skip linting: the parent engine already linted the config.
    engine = VerificationEngine(task.network, task.problem,
                                backend=task.backend, lint=False)
    return (engine.max_total_resiliency_bounds(task.prop,
                                               limits=task.limits),
            engine.max_ied_resiliency_bounds(task.prop,
                                             limits=task.limits),
            engine.max_rtu_resiliency_bounds(task.prop,
                                             limits=task.limits))


def audit_report(network: ScadaNetwork, problem: ObservabilityProblem,
                 threat_limit: int = 100,
                 include_hardening: bool = True,
                 include_attack_cost: bool = True,
                 backend: str = "fresh",
                 jobs: int = 1,
                 limits: Optional[Limits] = None,
                 solver_opts: Optional[Dict[str, object]] = None) -> str:
    """Produce a Markdown resiliency-audit report for one configuration.

    *limits* bounds every individual solve.  Sections degrade honestly
    when a budget expires: maxima are reported as ``≥ lower`` brackets,
    threat spaces as partial counts, and the cheapest-attack line notes
    the exhausted budget — the report never upgrades an UNKNOWN to a
    verdict.
    """
    with obs_span("report", backend=backend, jobs=jobs):
        return _audit_report(network, problem, threat_limit,
                             include_hardening, include_attack_cost,
                             backend, jobs, limits, solver_opts)


def _audit_report(network: ScadaNetwork, problem: ObservabilityProblem,
                  threat_limit: int, include_hardening: bool,
                  include_attack_cost: bool, backend: str, jobs: int,
                  limits: Optional[Limits],
                  solver_opts: Optional[Dict[str, object]] = None) -> str:
    engine = VerificationEngine(network, problem, backend=backend, jobs=jobs,
                                solver_opts=solver_opts)
    out = io.StringIO()

    out.write(f"# SCADA resiliency audit — {network.name}\n\n")
    out.write("## Inventory\n\n")
    out.write(f"- {len(network.ied_ids)} IEDs, "
              f"{len(network.rtu_ids)} RTUs, "
              f"{len(network.router_ids)} router(s), 1 MTU\n")
    out.write(f"- {len(network.topology.links)} communication links\n")
    out.write(f"- {problem.num_measurements} measurements "
              f"({problem.num_components} unique components) over "
              f"{problem.num_states} states\n")
    insecure = [ied for ied in network.ied_ids
                if not network.secured_paths(ied)]
    if insecure:
        names = ", ".join(network.label(i) for i in insecure)
        out.write(f"- **unprotected data sources** (no authenticated + "
                  f"integrity-protected path): {names}\n")
    out.write("\n")

    out.write("## Maximal resiliency\n\n")
    out.write("| property | any devices | IEDs only | RTUs only |\n")
    out.write("|---|---|---|---|\n")
    props = (Property.OBSERVABILITY, Property.SECURED_OBSERVABILITY,
             Property.COMMAND_DELIVERABILITY)
    maxima = {}
    inexact_maxima = False
    if jobs > 1:
        tasks = [_MaximaTask(network, problem, prop, backend, limits)
                 for prop in props]
        triples = SweepExecutor(jobs).map(_maxima_task, tasks)
    else:
        triples = [(engine.max_total_resiliency_bounds(prop,
                                                       limits=limits),
                    engine.max_ied_resiliency_bounds(prop, limits=limits),
                    engine.max_rtu_resiliency_bounds(prop, limits=limits))
                   for prop in props]
    for prop, (total, ied, rtu) in zip(props, triples):
        maxima[prop] = total
        inexact_maxima |= not (total.exact and ied.exact and rtu.exact)
        out.write(f"| {prop.value} | {_fmt_k(total)} | {_fmt_k(ied)} | "
                  f"{_fmt_k(rtu)} |\n")
    out.write("\n(−: the property fails even with zero failures)\n")
    if inexact_maxima:
        out.write("(≥ / ?: the solver budget expired before the search "
                  "finished; only the proven lower bound is shown)\n")
    out.write("\n")

    out.write("## Threat space beyond the certificate\n\n")
    for prop in (Property.OBSERVABILITY, Property.SECURED_OBSERVABILITY):
        # Past an inexact certificate the step-beyond budget is itself
        # only a lower bound; the enumeration stays sound (every vector
        # reported is real), it just may not be the tightest frontier.
        k_star = maxima[prop].lower
        spec = _spec(prop, max(k_star, -1) + 1)
        space = threat_space(engine, spec, limit=threat_limit,
                             limits=limits)
        suffix = "+" if not space.exact else ""
        out.write(f"### {spec.describe()}\n\n")
        if space.incomplete:
            reason = space.limit_reason or "resource"
            out.write(f"(enumeration stopped early: {reason} budget "
                      f"expired)\n\n")
        out.write(f"{space.size}{suffix} minimal threat vector(s)")
        if space.vectors:
            out.write(f"; sizes {space.by_size()}\n\n")
            for vector in space.vectors[:8]:
                out.write(f"- {vector.describe(network.label)}\n")
            if space.size > 8:
                out.write(f"- … and {space.size - 8} more\n")
            ranking = Counter()
            for vector in space.vectors:
                ranking.update(vector.failed_devices)
            out.write("\nBreach-point ranking (participation in threat "
                      "vectors):\n\n")
            for device, count in ranking.most_common(5):
                share = 100.0 * count / space.size
                out.write(f"- {network.label(device)}: {count} "
                          f"({share:.0f}%)\n")
        else:
            out.write(".\n")
        out.write("\n")

    if include_attack_cost:
        out.write("## Cheapest attack\n\n")
        costs = uniform_costs(engine, ied_cost=1, rtu_cost=3)
        out.write("Costs: IED = 1, RTU = 3.\n\n")
        for prop in (Property.OBSERVABILITY,
                     Property.SECURED_OBSERVABILITY):
            try:
                result = cheapest_threat(engine, prop, costs,
                                         limits=limits)
            except ResourceLimitReached as exc:
                reason = exc.reason.value if exc.reason else "resource"
                out.write(f"- {prop.value}: undetermined — {reason} "
                          f"budget expired mid-search\n")
                continue
            out.write(f"- {result.summary()}\n")
        out.write("\n")

    if include_hardening:
        out.write("## Hardening suggestions\n\n")
        suggestions = 0
        for prop in (Property.OBSERVABILITY,
                     Property.SECURED_OBSERVABILITY):
            k_star = maxima[prop].lower
            target = _spec(prop, max(k_star, -1) + 1)
            try:
                repair = harden(network, problem, target,
                                max_repairs=2, max_verify_calls=400,
                                backend=backend, limits=limits)
            except RuntimeError:
                out.write(f"- {target.describe()}: repair search budget "
                          f"exhausted\n")
                continue
            if repair.succeeded and repair.repairs:
                out.write(f"- {repair.summary()}\n")
                suggestions += 1
            elif not repair.succeeded:
                out.write(f"- {target.describe()}: no ≤2-step repair "
                          f"found\n")
        if not suggestions:
            out.write("\n(no single/double-step repair raises the "
                      "certificates)\n")
        out.write("\n")

    return out.getvalue()


def _fmt_k(bounds: SearchBounds) -> str:
    if bounds.exact:
        return "−" if bounds.lower < 0 else str(bounds.lower)
    # The search hit a budget: only the proven lower bound is sound.
    return "?" if bounds.lower < 0 else f"≥{bounds.lower}"


def _spec(prop: Property, k: int) -> ResiliencySpec:
    if prop is Property.OBSERVABILITY:
        return ResiliencySpec.observability(k=k)
    return ResiliencySpec.secured_observability(k=k)
