"""Boolean term AST for the SMT layer.

The paper encodes its verification model in "SMT logics" with Boolean and
integer terms, where every integer expression is a *count* of Boolean
terms compared against a constant.  This AST therefore provides the
Boolean connectives plus cardinality atoms (:class:`AtMost` /
:class:`AtLeast`), which together cover the paper's whole constraint
language.

Terms are immutable.  ``&``, ``|``, ``~``, ``>>`` (implies) and ``^``
(xor) are overloaded for ergonomic construction, mirroring z3py.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Type, Union

__all__ = [
    "Term", "BoolVal", "BoolVar", "NotTerm", "AndTerm", "OrTerm",
    "XorTerm", "IteTerm", "CardTerm",
    "TRUE", "FALSE", "Bool", "Bools", "Not", "And", "Or", "Implies",
    "Iff", "Xor", "Ite", "AtMost", "AtLeast", "Exactly", "evaluate",
]


class Term:
    """Base class for Boolean terms."""

    __slots__ = ("_key",)

    def key(self) -> Tuple:
        """A structural key used for hash-consing during encoding.

        Keys are memoized per node, so computing the key of a shared DAG
        is linear in its size.  Structurally equal terms encode to the
        same solver variables.
        """
        try:
            return self._key
        except AttributeError:
            key = self._compute_key()
            self._key = key
            return key

    def _compute_key(self) -> Tuple:
        raise NotImplementedError

    # Operator sugar -------------------------------------------------
    def __and__(self, other: "Term") -> "Term":
        return And(self, other)

    def __or__(self, other: "Term") -> "Term":
        return Or(self, other)

    def __invert__(self) -> "Term":
        return Not(self)

    def __rshift__(self, other: "Term") -> "Term":
        return Implies(self, other)

    def __xor__(self, other: "Term") -> "Term":
        return Xor(self, other)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Term) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class BoolVal(Term):
    """A Boolean constant."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def _compute_key(self) -> Tuple:
        return ("val", self.value)

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolVal(True)
FALSE = BoolVal(False)


class BoolVar(Term):
    """A named Boolean variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def _compute_key(self) -> Tuple:
        return ("var", self.name)

    def __repr__(self) -> str:
        return self.name


class NotTerm(Term):
    __slots__ = ("arg",)

    def __init__(self, arg: Term) -> None:
        self.arg = arg

    def _compute_key(self) -> Tuple:
        return ("not", self.arg.key())

    def __repr__(self) -> str:
        return f"Not({self.arg!r})"


class AndTerm(Term):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[Term, ...]) -> None:
        self.args = args

    def _compute_key(self) -> Tuple:
        return ("and",) + tuple(a.key() for a in self.args)

    def __repr__(self) -> str:
        return "And(" + ", ".join(repr(a) for a in self.args) + ")"


class OrTerm(Term):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[Term, ...]) -> None:
        self.args = args

    def _compute_key(self) -> Tuple:
        return ("or",) + tuple(a.key() for a in self.args)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(repr(a) for a in self.args) + ")"


class XorTerm(Term):
    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term) -> None:
        self.left = left
        self.right = right

    def _compute_key(self) -> Tuple:
        return ("xor", self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"Xor({self.left!r}, {self.right!r})"


class IteTerm(Term):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Term, then: Term, other: Term) -> None:
        self.cond = cond
        self.then = then
        self.other = other

    def _compute_key(self) -> Tuple:
        return ("ite", self.cond.key(), self.then.key(), self.other.key())

    def __repr__(self) -> str:
        return f"Ite({self.cond!r}, {self.then!r}, {self.other!r})"


class CardTerm(Term):
    """A cardinality atom: ``count(args) <= k`` or ``count(args) >= k``."""

    __slots__ = ("args", "k", "at_most")

    def __init__(self, args: Tuple[Term, ...], k: int, at_most: bool) -> None:
        self.args = args
        self.k = k
        self.at_most = at_most

    def _compute_key(self) -> Tuple:
        tag = "atmost" if self.at_most else "atleast"
        return (tag, self.k) + tuple(a.key() for a in self.args)

    def __repr__(self) -> str:
        name = "AtMost" if self.at_most else "AtLeast"
        return f"{name}([{len(self.args)} terms], {self.k})"


# ----------------------------------------------------------------------
# Constructors (with light simplification)
# ----------------------------------------------------------------------

def Bool(name: str) -> BoolVar:
    """Create a named Boolean variable."""
    return BoolVar(name)


def Bools(names: str) -> Tuple[BoolVar, ...]:
    """Create several variables from a whitespace-separated name list."""
    return tuple(BoolVar(n) for n in names.split())


def Not(term: Term) -> Term:
    if isinstance(term, BoolVal):
        return FALSE if term.value else TRUE
    if isinstance(term, NotTerm):
        return term.arg
    return NotTerm(term)


def _flatten(cls: Union[Type[AndTerm], Type[OrTerm]],
             args: Iterable[Term]) -> Tuple[Term, ...]:
    out: List[Term] = []
    for arg in args:
        if not isinstance(arg, Term):
            raise TypeError(f"expected Term, got {type(arg).__name__}")
        if isinstance(arg, (AndTerm, OrTerm)) and isinstance(arg, cls):
            out.extend(arg.args)
        else:
            out.append(arg)
    return tuple(out)


def And(*args: Term) -> Term:
    flat = _flatten(AndTerm, args)
    kept: List[Term] = []
    for arg in flat:
        if isinstance(arg, BoolVal):
            if not arg.value:
                return FALSE
            continue
        kept.append(arg)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return AndTerm(tuple(kept))


def Or(*args: Term) -> Term:
    flat = _flatten(OrTerm, args)
    kept: List[Term] = []
    for arg in flat:
        if isinstance(arg, BoolVal):
            if arg.value:
                return TRUE
            continue
        kept.append(arg)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return OrTerm(tuple(kept))


def Implies(antecedent: Term, consequent: Term) -> Term:
    return Or(Not(antecedent), consequent)


def Iff(left: Term, right: Term) -> Term:
    if isinstance(left, BoolVal):
        return right if left.value else Not(right)
    if isinstance(right, BoolVal):
        return left if right.value else Not(left)
    return Not(XorTerm(left, right))


def Xor(left: Term, right: Term) -> Term:
    if isinstance(left, BoolVal):
        return Not(right) if left.value else right
    if isinstance(right, BoolVal):
        return Not(left) if right.value else left
    return XorTerm(left, right)


def Ite(cond: Term, then: Term, other: Term) -> Term:
    if isinstance(cond, BoolVal):
        return then if cond.value else other
    return IteTerm(cond, then, other)


def _card_args(args: Sequence[Term]) -> Tuple[Tuple[Term, ...], int]:
    """Split constants out of cardinality arguments.

    Returns the non-constant arguments and the number of constant-true
    arguments (which shift the threshold).
    """
    kept: List[Term] = []
    true_count = 0
    for arg in args:
        if not isinstance(arg, Term):
            raise TypeError(f"expected Term, got {type(arg).__name__}")
        if isinstance(arg, BoolVal):
            if arg.value:
                true_count += 1
            continue
        kept.append(arg)
    return tuple(kept), true_count


def AtMost(args: Sequence[Term], k: int) -> Term:
    """True iff at most *k* of *args* are true."""
    kept, trues = _card_args(args)
    k = k - trues
    if k < 0:
        return FALSE
    if k >= len(kept):
        return TRUE
    if k == 0:
        return And(*[Not(a) for a in kept])
    return CardTerm(kept, k, at_most=True)


def AtLeast(args: Sequence[Term], k: int) -> Term:
    """True iff at least *k* of *args* are true."""
    kept, trues = _card_args(args)
    k = k - trues
    if k <= 0:
        return TRUE
    if k > len(kept):
        return FALSE
    if k == len(kept):
        return And(*kept)
    if k == 1:
        return Or(*kept)
    return CardTerm(kept, k, at_most=False)


def Exactly(args: Sequence[Term], k: int) -> Term:
    """True iff exactly *k* of *args* are true."""
    return And(AtMost(args, k), AtLeast(args, k))


# ----------------------------------------------------------------------
# Ground evaluation
# ----------------------------------------------------------------------

def evaluate(term: Term, assignment: Mapping[str, bool]) -> bool:
    """Evaluate *term* under a full name-to-value assignment.

    Raises :class:`KeyError` if a variable is missing from *assignment*.
    Used by tests and the reference evaluator as ground truth for the
    encoder.
    """
    cache: Dict[int, bool] = {}

    def rec(t: Term) -> bool:
        cached = cache.get(id(t))
        if cached is not None:
            return cached
        if isinstance(t, BoolVal):
            value = t.value
        elif isinstance(t, BoolVar):
            value = bool(assignment[t.name])
        elif isinstance(t, NotTerm):
            value = not rec(t.arg)
        elif isinstance(t, AndTerm):
            value = all(rec(a) for a in t.args)
        elif isinstance(t, OrTerm):
            value = any(rec(a) for a in t.args)
        elif isinstance(t, XorTerm):
            value = rec(t.left) != rec(t.right)
        elif isinstance(t, IteTerm):
            value = rec(t.then) if rec(t.cond) else rec(t.other)
        elif isinstance(t, CardTerm):
            count = sum(1 for a in t.args if rec(a))
            value = count <= t.k if t.at_most else count >= t.k
        else:
            raise TypeError(f"unknown term type {type(t).__name__}")
        cache[id(t)] = value
        return value

    return rec(term)
