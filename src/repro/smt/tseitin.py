"""Tseitin transformation: Boolean terms to CNF over a clause sink.

Every gate receives a definition literal with *full* (bidirectional)
defining clauses, so terms can appear under arbitrary polarity and
models translate back to term valuations exactly.  Cardinality atoms are
compiled through the bidirectional truncated totalizer from
:mod:`repro.smt.cardinality`.

The *sink* only needs ``new_var()`` and ``add_clause(lits)``; both
:class:`repro.sat.CNF` and :class:`repro.sat.SatSolver` satisfy that
protocol, so the encoder can write into a formula container or feed a
solver incrementally.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .cardinality import (
    CardinalityCounter, ClauseSink, SequentialCounter, Totalizer,
)
from .terms import (
    AndTerm, BoolVal, BoolVar, CardTerm, IteTerm, NotTerm, OrTerm, Term,
    XorTerm,
)

__all__ = ["Encoder"]


class Encoder:
    """Incremental Tseitin encoder with structural hash-consing.

    ``card_encoding`` selects how cardinality atoms are compiled:
    ``"totalizer"`` (default, a balanced merge tree) or ``"sequential"``
    (a Sinz-style register chain) — both bidirectional and truncated.
    """

    CARD_ENCODINGS = ("totalizer", "sequential")

    def __init__(self, sink: ClauseSink,
                 card_encoding: str = "totalizer") -> None:
        if card_encoding not in self.CARD_ENCODINGS:
            raise ValueError(f"unknown cardinality encoding "
                             f"{card_encoding!r}")
        self.sink = sink
        self.card_encoding = card_encoding
        self._cache: Dict[Tuple, int] = {}
        self._var_names: Dict[str, int] = {}
        # Keyed on the *sorted* literal tuple: counting is
        # order-independent, so AtMost/AtLeast atoms over the same set
        # in different literal orders share one counter.
        self._totalizers: Dict[Tuple[int, ...], CardinalityCounter] = {}
        self._true_lit = 0

    # ------------------------------------------------------------------

    def var(self, name: str) -> int:
        """The solver variable backing the named Boolean variable."""
        lit = self._var_names.get(name)
        if lit is None:
            lit = self.sink.new_var()
            self._var_names[name] = lit
        return lit

    def known_var(self, name: str) -> int:
        """Like :meth:`var` but raises KeyError for unseen names."""
        return self._var_names[name]

    @property
    def var_names(self) -> Dict[str, int]:
        return dict(self._var_names)

    def true_literal(self) -> int:
        """A literal asserted true (used for stray Boolean constants)."""
        if not self._true_lit:
            self._true_lit = self.sink.new_var()
            self.sink.add_clause([self._true_lit])
        return self._true_lit

    # ------------------------------------------------------------------

    def literal(self, term: Term) -> int:
        """Return a DIMACS literal equivalent to *term*.

        Defining clauses are added to the sink as needed; repeated terms
        (by structure) reuse their existing encoding.
        """
        key = term.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        lit = self._encode(term)
        self._cache[key] = lit
        return lit

    def assert_term(self, term: Term) -> None:
        """Assert *term* at the top level."""
        if isinstance(term, BoolVal):
            if not term.value:
                self.sink.add_clause([])
            return
        if isinstance(term, AndTerm):
            for arg in term.args:
                self.assert_term(arg)
            return
        self.sink.add_clause([self.literal(term)])

    # ------------------------------------------------------------------

    def _encode(self, term: Term) -> int:
        sink = self.sink
        if isinstance(term, BoolVal):
            t = self.true_literal()
            return t if term.value else -t
        if isinstance(term, BoolVar):
            return self.var(term.name)
        if isinstance(term, NotTerm):
            return -self.literal(term.arg)
        if isinstance(term, AndTerm):
            lits = [self.literal(a) for a in term.args]
            g = sink.new_var()
            long_clause = [g]
            for lit in lits:
                sink.add_clause([-g, lit])
                long_clause.append(-lit)
            sink.add_clause(long_clause)
            return g
        if isinstance(term, OrTerm):
            lits = [self.literal(a) for a in term.args]
            g = sink.new_var()
            long_clause = [-g]
            for lit in lits:
                sink.add_clause([g, -lit])
                long_clause.append(lit)
            sink.add_clause(long_clause)
            return g
        if isinstance(term, XorTerm):
            a = self.literal(term.left)
            b = self.literal(term.right)
            g = sink.new_var()
            sink.add_clause([-g, a, b])
            sink.add_clause([-g, -a, -b])
            sink.add_clause([g, -a, b])
            sink.add_clause([g, a, -b])
            return g
        if isinstance(term, IteTerm):
            c = self.literal(term.cond)
            t = self.literal(term.then)
            e = self.literal(term.other)
            g = sink.new_var()
            sink.add_clause([-g, -c, t])
            sink.add_clause([-g, c, e])
            sink.add_clause([g, -c, -t])
            sink.add_clause([g, c, -e])
            return g
        if isinstance(term, CardTerm):
            return self._encode_card(term)
        raise TypeError(f"cannot encode term of type {type(term).__name__}")

    def _encode_card(self, term: CardTerm) -> int:
        lits = [self.literal(a) for a in term.args]
        # The constructors guarantee 0 < k < n for AtMost and
        # 1 < k < n for AtLeast, but guard anyway for direct CardTerm use.
        n = len(lits)
        if term.at_most:
            if term.k >= n:
                return self.true_literal()
            bound = term.k + 1
        else:
            if term.k <= 0:
                return self.true_literal()
            if term.k > n:
                return -self.true_literal()
            bound = term.k
        outputs = self.card_outputs(lits, bound)
        if term.at_most:
            return -outputs[term.k]
        return outputs[term.k - 1]

    def card_outputs(self, lits: Sequence[int], bound: int) -> List[int]:
        """Unary-counter outputs over *lits* with ≥ *bound* of them.

        One extendable counter is kept per literal *multiset* (the cache
        key is the sorted literal tuple, so atoms over the same set in a
        different order share it); when a larger bound is requested
        later, the counter's output chain is grown in place via
        :meth:`~repro.smt.cardinality.CardinalityCounter.raise_bound`
        instead of rebuilding the tree.
        """
        key = tuple(sorted(lits))
        existing = self._totalizers.get(key)
        if existing is not None:
            existing.raise_bound(bound)
            return existing.outputs
        counter_cls = (Totalizer if self.card_encoding == "totalizer"
                       else SequentialCounter)
        counter = counter_cls(self.sink, list(lits), bound)
        self._totalizers[key] = counter
        return counter.outputs

    # ------------------------------------------------------------------

    def decode(self, term: Term, model: Sequence[bool]) -> bool:
        """Evaluate *term* under a solver model (list indexed by var).

        Terms already encoded use their cached literal; unencoded terms
        are evaluated structurally.  Unencoded *variables* default to
        False (they are unconstrained).
        """
        key = term.key()
        lit = self._cache.get(key)
        if lit is not None:
            v = lit if lit > 0 else -lit
            if v < len(model):
                value = model[v]
                return value if lit > 0 else not value
        if isinstance(term, BoolVal):
            return term.value
        if isinstance(term, BoolVar):
            var = self._var_names.get(term.name)
            if var is None or var >= len(model):
                return False
            return model[var]
        if isinstance(term, NotTerm):
            return not self.decode(term.arg, model)
        if isinstance(term, AndTerm):
            return all(self.decode(a, model) for a in term.args)
        if isinstance(term, OrTerm):
            return any(self.decode(a, model) for a in term.args)
        if isinstance(term, XorTerm):
            return self.decode(term.left, model) != self.decode(term.right, model)
        if isinstance(term, IteTerm):
            if self.decode(term.cond, model):
                return self.decode(term.then, model)
            return self.decode(term.other, model)
        if isinstance(term, CardTerm):
            count = sum(1 for a in term.args if self.decode(a, model))
            return count <= term.k if term.at_most else count >= term.k
        raise TypeError(f"cannot decode term of type {type(term).__name__}")
