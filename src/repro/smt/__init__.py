"""SMT layer: Boolean/cardinality terms, Tseitin encoding, solver facade.

Together with :mod:`repro.sat` this package stands in for Z3 in the
paper's toolchain: the paper's constraint language (Boolean logic plus
counting sums over Booleans) maps onto terms here one-to-one.
"""

from ..sat.limits import LimitReason, Limits, ResourceLimitReached
from .cardinality import (
    CardinalityCounter,
    ClauseSink,
    SequentialCounter,
    Totalizer,
    encode_at_least_sequential,
    encode_at_most_sequential,
)
from .smtlib import term_to_sexpr, to_smtlib
from .solver import BudgetHandle, Model, Result, Solver, SolverStatistics
from .terms import (
    FALSE,
    TRUE,
    And,
    AtLeast,
    AtMost,
    Bool,
    Bools,
    BoolVal,
    BoolVar,
    CardTerm,
    Exactly,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Term,
    Xor,
    evaluate,
)
from .tseitin import Encoder

__all__ = [
    "And", "AtLeast", "AtMost", "Bool", "Bools", "BoolVal", "BoolVar",
    "BudgetHandle", "CardTerm", "CardinalityCounter", "ClauseSink",
    "Encoder", "Exactly", "FALSE", "Iff", "Implies", "Ite",
    "LimitReason", "Limits", "Model", "Not", "Or", "ResourceLimitReached",
    "Result", "SequentialCounter", "Solver",
    "SolverStatistics", "TRUE",
    "Term", "Totalizer", "Xor", "encode_at_least_sequential", "term_to_sexpr", "to_smtlib",
    "encode_at_most_sequential", "evaluate",
]
