"""A z3py-style solver facade over the CDCL engine.

This is the interface the SCADA Analyzer programs against, mirroring the
small slice of the z3py API the paper's implementation would have used:
``add``, ``check`` (with assumptions), ``model``, ``push``/``pop``, and
``unsat_core``.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, List, Optional

from ..sat.solver import SatSolver
from .terms import BoolVar, Term
from .tseitin import Encoder

__all__ = ["Result", "Model", "Solver", "SolverStatistics"]


class Result(enum.Enum):
    """Outcome of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        raise TypeError(
            "Result does not coerce to bool; compare with Result.SAT/UNSAT")


class Model:
    """A satisfying assignment, queryable by term."""

    def __init__(self, encoder: Encoder, raw_model: List[bool]) -> None:
        self._encoder = encoder
        self._raw = raw_model

    def value(self, term: Term) -> bool:
        """Evaluate *term* under this model."""
        return self._encoder.decode(term, self._raw)

    def __getitem__(self, term: Term) -> bool:
        return self.value(term)

    def true_variables(self) -> List[str]:
        """Names of all encoded variables assigned true."""
        return sorted(
            name for name, var in self._encoder.var_names.items()
            if var < len(self._raw) and self._raw[var]
        )

    def __repr__(self) -> str:
        sample = self.true_variables()[:8]
        return f"Model(true={sample}{'...' if len(sample) == 8 else ''})"


class SolverStatistics:
    """Sizes and timings of the encoded problem and the last check."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.num_clauses = 0
        self.check_time = 0.0
        self.checks = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def __repr__(self) -> str:
        return (f"SolverStatistics(vars={self.num_vars}, "
                f"clauses={self.num_clauses}, checks={self.checks}, "
                f"time={self.check_time:.3f}s)")


class Solver:
    """SMT-style solver for Boolean + cardinality terms.

    ``push``/``pop`` are implemented with activation literals: each level
    owns a selector variable, clauses added at that level are guarded by
    it, and ``check`` passes the live selectors as solver assumptions.
    """

    def __init__(self, card_encoding: str = "totalizer",
                 produce_proof: bool = False) -> None:
        self._sat = SatSolver()
        if produce_proof:
            self._sat.enable_proof()
        self._encoder = Encoder(self._sat, card_encoding=card_encoding)
        self._selectors: List[int] = []
        self._assertions: List[List[Term]] = [[]]
        self._model: Optional[Model] = None
        self._core_terms: List[Term] = []
        self.statistics = SolverStatistics()

    # ------------------------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert terms at the current scope level."""
        for term in terms:
            if not isinstance(term, Term):
                raise TypeError(f"expected Term, got {type(term).__name__}")
            self._assertions[-1].append(term)
            if self._selectors:
                lit = self._encoder.literal(term)
                self._sat.add_clause([-self._selectors[-1], lit])
            else:
                self._encoder.assert_term(term)

    def push(self) -> None:
        """Open a new assertion scope."""
        self._selectors.append(self._sat.new_var())
        self._assertions.append([])

    def pop(self) -> None:
        """Discard the most recent scope and its assertions."""
        if not self._selectors:
            raise RuntimeError("pop without matching push")
        selector = self._selectors.pop()
        self._assertions.pop()
        # Permanently disable the scope's clauses.
        self._sat.add_clause([-selector])

    def assertions(self) -> List[Term]:
        """All currently live assertions, outermost first."""
        return [t for level in self._assertions for t in level]

    # ------------------------------------------------------------------

    def check(self, *assumptions: Term,
              max_conflicts: Optional[int] = None) -> Result:
        """Solve the current assertions under optional assumption terms."""
        self._model = None
        self._core_terms = []
        assumption_lits: List[int] = list(self._selectors)
        lit_to_term: Dict[int, Term] = {}
        for term in assumptions:
            lit = self._encoder.literal(term)
            assumption_lits.append(lit)
            lit_to_term[lit] = term

        started = time.perf_counter()
        before = self._sat.stats.as_dict()
        outcome = self._sat.solve(assumptions=assumption_lits,
                                  max_conflicts=max_conflicts)
        after = self._sat.stats.as_dict()
        self.statistics.check_time += time.perf_counter() - started
        self.statistics.checks += 1
        self.statistics.num_vars = self._sat.num_vars
        self.statistics.num_clauses = self._sat.num_clauses_added
        for field in ("conflicts", "decisions", "propagations"):
            self.statistics.__dict__[field] += after[field] - before[field]

        if outcome is None:
            return Result.UNKNOWN
        if outcome:
            self._model = Model(self._encoder, list(self._sat.model))
            return Result.SAT
        self._core_terms = [
            lit_to_term[lit] for lit in self._sat.core() if lit in lit_to_term
        ]
        return Result.UNSAT

    def model(self) -> Model:
        """The model from the last sat check."""
        if self._model is None:
            raise RuntimeError("model() requires a preceding sat check")
        return self._model

    def unsat_core(self) -> List[Term]:
        """Assumption terms forming an unsat core of the last check."""
        return list(self._core_terms)

    # ------------------------------------------------------------------

    def bool_var(self, name: str) -> BoolVar:
        """Convenience constructor (parity with ``z3.Bool``)."""
        return BoolVar(name)

    @property
    def num_vars(self) -> int:
        return self._sat.num_vars

    @property
    def num_clauses(self) -> int:
        """Encoded clause count (before level-0 simplification)."""
        return self._sat.num_clauses_added

    def validate_unsat_proof(self) -> bool:
        """Re-check the last unsat answer with the independent RUP
        checker.  Only valid after an assumption-free UNSAT from a
        solver constructed with ``produce_proof=True``."""
        from ..sat.proof import check_unsat_proof

        proof = self._sat.proof
        if proof is None:
            raise RuntimeError("solver was not constructed with "
                               "produce_proof=True")
        if self._selectors:
            raise RuntimeError("proof validation is not supported with "
                               "open push/pop scopes")
        originals, learned = proof
        return check_unsat_proof(originals, learned,
                                 num_vars=self._sat.num_vars)
