"""A z3py-style solver facade over the CDCL engine.

This is the interface the SCADA Analyzer programs against, mirroring the
small slice of the z3py API the paper's implementation would have used:
``add``, ``check`` (with assumptions), ``model``, ``push``/``pop``, and
``unsat_core``.
"""

from __future__ import annotations

import contextlib
import enum
import time
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..sat.cnf import CNF
from ..sat.hooks import SolverHooks
from ..sat.limits import LimitReason, Limits
from ..sat.solver import SatSolver
from .terms import FALSE, TRUE, BoolVar, Term
from .tseitin import Encoder

__all__ = ["Result", "Model", "Solver", "SolverStatistics",
           "BudgetHandle"]

#: Per-check search-effort counters mirrored from the SAT substrate.
#: ``learned_clauses``/``deleted_clauses`` let incremental callers
#: report how much of the clause database each query retained; the
#: inprocessing counters attribute subsumption / self-subsuming
#: resolution / vivification work to individual queries.
_SEARCH_FIELDS = ("conflicts", "decisions", "propagations", "restarts",
                  "learned_clauses", "deleted_clauses",
                  "subsumed_clauses", "strengthened_clauses",
                  "vivified_clauses")


class Result(enum.Enum):
    """Outcome of a :meth:`Solver.check` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        raise TypeError(
            "Result does not coerce to bool; compare with Result.SAT/UNSAT")


class Model:
    """A satisfying assignment, queryable by term."""

    def __init__(self, encoder: Encoder, raw_model: List[bool]) -> None:
        self._encoder = encoder
        self._raw = raw_model

    def value(self, term: Term) -> bool:
        """Evaluate *term* under this model."""
        return self._encoder.decode(term, self._raw)

    def __getitem__(self, term: Term) -> bool:
        return self.value(term)

    def true_variables(self) -> List[str]:
        """Names of all encoded variables assigned true."""
        return sorted(
            name for name, var in self._encoder.var_names.items()
            if var < len(self._raw) and self._raw[var]
        )

    def __repr__(self) -> str:
        sample = self.true_variables()[:8]
        return f"Model(true={sample}{'...' if len(sample) == 8 else ''})"


class SolverStatistics:
    """Sizes and timings of the encoded problem and the last check."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.num_clauses = 0
        self.check_time = 0.0
        self.checks = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.subsumed_clauses = 0
        self.strengthened_clauses = 0
        self.vivified_clauses = 0
        # Populated only when the facade runs with preprocess=True.
        self.simplified_vars = 0
        self.simplified_clauses = 0
        self.preprocess_time = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def __repr__(self) -> str:
        return (f"SolverStatistics(vars={self.num_vars}, "
                f"clauses={self.num_clauses}, checks={self.checks}, "
                f"time={self.check_time:.3f}s)")


class BudgetHandle:
    """Assumption selectors over one persistent, extendable counter.

    A handle reifies the family of cardinality bounds over a fixed
    multiset of terms: :meth:`at_most` (and :meth:`at_least`) return a
    named selector *term* equivalent to the bound, meant to be passed as
    an assumption to :meth:`Solver.check`.  All bounds share one
    extendable unary counter, grown in place as larger bounds are
    requested, so a budget sweep re-encodes nothing — and because the
    bound is selected by an assumption rather than a scoped assertion,
    every learned clause survives from one budget to the next.

    Selector definitions are permanent (a selector is *defined* as
    equivalent to its bound, which constrains nothing until assumed),
    so handles may be created at any scope depth without being lost to
    a later ``pop``.  Handles are obtained from
    :meth:`Solver.budget_handle` and cached there by name.
    """

    def __init__(self, solver: "Solver", name: str,
                 terms: Sequence[Term]) -> None:
        self._solver = solver
        self.name = name
        self.terms = tuple(terms)
        self._lits = [solver._encoder.literal(t) for t in self.terms]
        self._at_most: Dict[int, Term] = {}
        self._at_least: Dict[int, Term] = {}

    @property
    def size(self) -> int:
        """Number of counted terms (with multiplicity)."""
        return len(self._lits)

    def at_most(self, k: int) -> Term:
        """A selector term: assuming it enforces ``count <= k``."""
        if k < 0:
            return FALSE
        if k >= len(self._lits):
            return TRUE
        sel = self._at_most.get(k)
        if sel is None:
            sel = self._define(k, at_most=True)
            self._at_most[k] = sel
        return sel

    def at_least(self, k: int) -> Term:
        """A selector term: assuming it enforces ``count >= k``."""
        if k <= 0:
            return TRUE
        if k > len(self._lits):
            return FALSE
        sel = self._at_least.get(k)
        if sel is None:
            sel = self._define(k, at_most=False)
            self._at_least[k] = sel
        return sel

    def _define(self, k: int, at_most: bool) -> Term:
        """Define (once) the selector variable for one bound.

        The counter's bidirectional output ``o_j`` is true iff at least
        ``j`` counted terms are true, so ``count <= k`` is exactly
        ``-o_{k+1}`` and ``count >= k`` is ``o_k``; the selector is a
        named variable defined equivalent to that output literal.
        """
        encoder = self._solver._encoder
        outputs = encoder.card_outputs(self._lits, k + 1 if at_most else k)
        gate = -outputs[k] if at_most else outputs[k - 1]
        op = "le" if at_most else "ge"
        var = BoolVar(f"__budget[{self.name}]::{op}{k}")
        sel = encoder.literal(var)
        self._solver._sink.add_clause([-sel, gate])
        self._solver._sink.add_clause([sel, -gate])
        return var


class Solver:
    """SMT-style solver for Boolean + cardinality terms.

    ``push``/``pop`` are implemented with activation literals: each level
    owns a selector variable, clauses added at that level are guarded by
    it, and ``check`` passes the live selectors as solver assumptions.

    For query sequences that differ only in a cardinality bound,
    :meth:`budget_handle` offers a cheaper alternative to push/pop:
    budget selection by assumption literal over a persistent counter,
    with no per-query encoding and full learned-clause reuse.
    """

    def __init__(self, card_encoding: str = "totalizer",
                 produce_proof: bool = False,
                 preprocess: bool = False,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        self._produce_proof = produce_proof
        self._preprocess = preprocess
        self._cnf: Optional[CNF] = None
        self._sat: Optional[SatSolver] = None
        #: Keyword arguments forwarded to every :class:`SatSolver` this
        #: facade constructs (``inprocess``, diversification ``seed`` /
        #: ``phase_init`` / ``restart_base``, ``interrupt_check``).
        #: The ``cube`` key is peeled off here: a list of DIMACS
        #: literals appended to every check's assumptions, which is how
        #: portfolio cube-and-conquer workers restrict their subspace.
        opts = dict(solver_opts or {})
        self._cube_lits: List[int] = [int(l) for l in opts.pop("cube", [])]
        self._solver_opts = opts
        if preprocess:
            # Buffer the encoding in a CNF so each check can run the
            # simplifier over the full current formula first.
            self._cnf = CNF()
            sink = self._cnf
        else:
            self._sat = SatSolver(**self._solver_opts)
            if produce_proof:
                self._sat.enable_proof()
            sink = self._sat
        self._sink = sink
        self._encoder = Encoder(sink, card_encoding=card_encoding)
        self._selectors: List[int] = []
        self._budget_handles: Dict[str, BudgetHandle] = {}
        self._assertions: List[List[Term]] = [[]]
        self._model: Optional[Model] = None
        self._core_terms: List[Term] = []
        self._last_unsat_proof: Optional[tuple] = None
        #: With ``preprocess=True`` the solving :class:`SatSolver` is a
        #: per-check throwaway; a reference is kept here so a
        #: cooperative :meth:`interrupt` from another thread reaches
        #: the search actually running.
        self._active_sat: Optional[SatSolver] = None
        self._interrupt_requested = False
        #: Event observer forwarded to the underlying CDCL search (and
        #: to each per-check throwaway solver when preprocessing).
        self._hooks: Optional[SolverHooks] = None
        #: Why the last :meth:`check` answered UNKNOWN (``None`` after
        #: a decided answer).
        self.last_limit_reason: Optional[LimitReason] = None
        self.statistics = SolverStatistics()
        #: Search-effort deltas of the most recent :meth:`check` call —
        #: conflicts, decisions, propagations, restarts, and time — so
        #: callers can report per-query statistics even on a shared
        #: incremental solver.
        self.last_check_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def add(self, *terms: Term) -> None:
        """Assert terms at the current scope level."""
        for term in terms:
            if not isinstance(term, Term):
                raise TypeError(f"expected Term, got {type(term).__name__}")
            self._assertions[-1].append(term)
            if self._selectors:
                lit = self._encoder.literal(term)
                self._sink.add_clause([-self._selectors[-1], lit])
            else:
                self._encoder.assert_term(term)

    def push(self) -> None:
        """Open a new assertion scope."""
        self._selectors.append(self._sink.new_var())
        self._assertions.append([])

    def pop(self) -> None:
        """Discard the most recent scope and its assertions."""
        if not self._selectors:
            raise RuntimeError("pop without matching push")
        selector = self._selectors.pop()
        self._assertions.pop()
        # Permanently disable the scope's clauses.
        self._sink.add_clause([-selector])

    @property
    def scope_depth(self) -> int:
        """Number of currently open push/pop scopes."""
        return len(self._selectors)

    def pop_all(self, base_depth: int = 0) -> None:
        """Pop every scope above *base_depth*.

        The cache-safe reset: a shared (cached) incremental solver must
        return to its base encoding even when a query aborts mid-scope
        (extraction error, conflict-budget exhaustion), otherwise the
        next query would inherit stale budget constraints.
        """
        if base_depth < 0:
            raise ValueError("base_depth must be non-negative")
        while len(self._selectors) > base_depth:
            self.pop()

    def budget_handle(self, terms: Sequence[Term],
                      name: str) -> BudgetHandle:
        """A named :class:`BudgetHandle` over *terms*.

        The handle is created on first use and cached by *name*;
        requesting an existing name with a different term multiset is an
        error.  Duplicated terms are counted with multiplicity, which is
        how weighted budgets (``Σ cost_i · x_i <= C``) are expressed.
        """
        existing = self._budget_handles.get(name)
        if existing is not None:
            if tuple(t.key() for t in terms) != tuple(
                    t.key() for t in existing.terms):
                raise ValueError(
                    f"budget handle {name!r} already exists over a "
                    f"different term multiset")
            return existing
        handle = BudgetHandle(self, name, terms)
        self._budget_handles[name] = handle
        return handle

    @contextlib.contextmanager
    def scope(self) -> Iterator["Solver"]:
        """``with solver.scope():`` — push now, always pop on exit."""
        depth = self.scope_depth
        self.push()
        try:
            yield self
        finally:
            self.pop_all(depth)

    def assertions(self) -> List[Term]:
        """All currently live assertions, outermost first."""
        return [t for level in self._assertions for t in level]

    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) :meth:`check`.

        Thread-safe in the cooperative sense: the underlying CDCL loop
        polls the flag and answers :data:`Result.UNKNOWN` with
        :attr:`last_limit_reason` ``INTERRUPT``.  Sticky until
        :meth:`clear_interrupt`.
        """
        self._interrupt_requested = True
        if self._sat is not None:
            self._sat.interrupt()
        elif self._active_sat is not None:
            self._active_sat.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the solver after an :meth:`interrupt`."""
        self._interrupt_requested = False
        if self._sat is not None:
            self._sat.clear_interrupt()
        if self._active_sat is not None:
            self._active_sat.clear_interrupt()

    def set_hooks(self, hooks: Optional[SolverHooks]) -> None:
        """Install (or clear, with ``None``) a solver event observer.

        Forwarded to the persistent CDCL engine immediately and to
        every per-check throwaway solver in preprocessing mode.  The
        disabled state costs the search one attribute check (see
        :mod:`repro.sat.hooks`).
        """
        self._hooks = hooks
        if self._sat is not None:
            self._sat.hooks = hooks

    def top_activity_vars(self, n: int) -> List[int]:
        """The hottest *n* internal SAT variables by VSIDS activity.

        Harvested by the portfolio backend after a conflict-limited
        probe solve to choose cube-and-conquer split variables.  The
        Tseitin emission is deterministic for a fixed encoder
        configuration, so these variable indices are meaningful in any
        sibling solver built from the same assertions.  Empty in
        preprocessing mode (the per-check solver is already gone).
        """
        if self._sat is None:
            return []
        return self._sat.top_active_vars(n)

    def check(self, *assumptions: Term,
              max_conflicts: Optional[int] = None,
              limits: Optional[Limits] = None) -> Result:
        """Solve the current assertions under optional assumption terms.

        *limits* (and/or the legacy *max_conflicts* shorthand) bound
        the solve; an expired budget yields :data:`Result.UNKNOWN` with
        :attr:`last_limit_reason` set — never a spurious sat/unsat.
        """
        self._model = None
        self._core_terms = []
        self.last_limit_reason = None
        effective = limits if limits is not None else Limits()
        if max_conflicts is not None:
            effective = effective.merged(Limits(max_conflicts=max_conflicts))
        assumption_lits: List[int] = list(self._selectors)
        # Cube literals are solver-level assumptions with no term
        # mapping: they restrict the search subspace but never appear
        # in reported cores (the portfolio layer owns their semantics).
        assumption_lits.extend(self._cube_lits)
        lit_to_term: Dict[int, Term] = {}
        for term in assumptions:
            lit = self._encoder.literal(term)
            assumption_lits.append(lit)
            lit_to_term[lit] = term

        if self._preprocess:
            return self._check_preprocessed(assumption_lits, lit_to_term,
                                            effective)

        assert self._sat is not None
        started = time.perf_counter()
        before = self._sat.stats.as_dict()
        outcome = self._sat.solve(assumptions=assumption_lits,
                                  limits=effective)
        delta = self._sat.stats.delta(before)
        elapsed = time.perf_counter() - started
        self.statistics.check_time += elapsed
        self.statistics.checks += 1
        self.statistics.num_vars = self._sat.num_vars
        self.statistics.num_clauses = self._sat.num_clauses_added
        for field in _SEARCH_FIELDS:
            self.statistics.__dict__[field] += delta[field]
        self.last_check_stats = {f: float(delta[f]) for f in _SEARCH_FIELDS}
        self.last_check_stats["check_time"] = elapsed
        # Instantaneous tier snapshot (gauges, not deltas): lets the
        # session layer show where a warm solver's learned clauses sit.
        core, mid, local = self._sat.tier_sizes
        self.last_check_stats["tier_core"] = float(core)
        self.last_check_stats["tier_mid"] = float(mid)
        self.last_check_stats["tier_local"] = float(local)

        if outcome is None:
            self.last_limit_reason = self._sat.limit_reason
            return Result.UNKNOWN
        if outcome:
            self._model = Model(self._encoder, list(self._sat.model))
            return Result.SAT
        self._core_terms = [
            lit_to_term[lit] for lit in self._sat.core() if lit in lit_to_term
        ]
        return Result.UNSAT

    def _check_preprocessed(self, assumption_lits: List[int],
                            lit_to_term: Dict[int, Term],
                            limits: Limits) -> Result:
        """Simplify the buffered formula, then solve it fresh.

        Frozen variables — every named model variable, scope selector,
        assumption variable, and the constant-true literal — survive
        simplification with their numbering intact, so models, cores,
        and incremental blocking clauses keep working.  The wall-clock
        budget covers the *whole* check: simplification time is
        deducted from what the sub-solve may spend.
        """
        from ..lint.preprocess import preprocess_cnf

        assert self._cnf is not None
        self._last_unsat_proof = None
        frozen: Set[int] = set(self._encoder.var_names.values())
        frozen.update(abs(lit) for lit in assumption_lits)
        true_lit = getattr(self._encoder, "_true_lit", None)
        if true_lit is not None:
            frozen.add(abs(true_lit))

        started = time.perf_counter()
        result = preprocess_cnf(self._cnf, frozen=frozen)
        preprocess_elapsed = time.perf_counter() - started
        self.statistics.preprocess_time += preprocess_elapsed
        if limits.max_time is not None:
            remaining = limits.max_time - preprocess_elapsed
            if remaining <= 0:
                self.statistics.checks += 1
                self.last_check_stats = {f: 0.0 for f in _SEARCH_FIELDS}
                self.last_check_stats["check_time"] = 0.0
                self.last_limit_reason = LimitReason.TIME
                return Result.UNKNOWN
            limits = limits.with_time(remaining)
        self.statistics.num_vars = self._cnf.num_vars
        self.statistics.num_clauses = len(self._cnf.clauses)
        self.statistics.simplified_vars = (
            self._cnf.num_vars - result.stats["eliminated_vars"])
        self.statistics.simplified_clauses = len(result.cnf.clauses)

        if result.unsat:
            self.statistics.checks += 1
            self.last_check_stats = {f: 0.0 for f in _SEARCH_FIELDS}
            self.last_check_stats["check_time"] = 0.0
            self._last_unsat_proof = (list(self._cnf.clauses),
                                      list(result.proof_additions),
                                      self._cnf.num_vars)
            return Result.UNSAT

        sub = SatSolver(**self._solver_opts)
        sub.hooks = self._hooks
        if self._produce_proof:
            sub.enable_proof()
        for clause in result.cnf.clauses:
            if not sub.add_clause(clause):
                break  # level-0 conflict; solve() will report unsat

        self._active_sat = sub
        if self._interrupt_requested:
            sub.interrupt()
        started = time.perf_counter()
        outcome = sub.solve(assumptions=assumption_lits, limits=limits)
        after = sub.stats.as_dict()
        elapsed = time.perf_counter() - started
        self.statistics.check_time += elapsed
        self.statistics.checks += 1
        for field in _SEARCH_FIELDS:
            self.statistics.__dict__[field] += after[field]
        self.last_check_stats = {f: float(after[f]) for f in _SEARCH_FIELDS}
        self.last_check_stats["check_time"] = elapsed

        if outcome is None:
            self.last_limit_reason = sub.limit_reason
            return Result.UNKNOWN
        if outcome:
            extended = result.extend_model(list(sub.model))
            self._model = Model(self._encoder, extended)
            return Result.SAT
        self._core_terms = [
            lit_to_term[lit] for lit in sub.core() if lit in lit_to_term
        ]
        if self._produce_proof and sub.proof is not None:
            _, learned = sub.proof
            self._last_unsat_proof = (
                list(self._cnf.clauses),
                list(result.proof_additions) + [list(c) for c in learned],
                self._cnf.num_vars)
        return Result.UNSAT

    def model(self) -> Model:
        """The model from the last sat check."""
        if self._model is None:
            raise RuntimeError("model() requires a preceding sat check")
        return self._model

    def unsat_core(self) -> List[Term]:
        """Assumption terms forming an unsat core of the last check."""
        return list(self._core_terms)

    # ------------------------------------------------------------------

    def bool_var(self, name: str) -> BoolVar:
        """Convenience constructor (parity with ``z3.Bool``)."""
        return BoolVar(name)

    @property
    def cnf(self) -> Optional[CNF]:
        """The buffered encoding (present only with ``preprocess=True``)."""
        return self._cnf

    def named_variables(self) -> Dict[str, int]:
        """Variable name → CNF variable for every declared Boolean."""
        return dict(self._encoder.var_names)

    @property
    def num_vars(self) -> int:
        return self._sink.num_vars

    @property
    def num_clauses(self) -> int:
        """Encoded clause count (before level-0 simplification)."""
        if self._cnf is not None:
            return len(self._cnf.clauses)
        assert self._sat is not None
        return self._sat.num_clauses_added

    def validate_unsat_proof(self) -> bool:
        """Re-check the last unsat answer with the independent RUP
        checker.  Only valid after an assumption-free UNSAT from a
        solver constructed with ``produce_proof=True``.

        With ``preprocess=True`` the proof covers the whole pipeline:
        the simplifier's additions (each RUP against the original
        encoding) followed by the sub-solver's learned clauses (RUP by
        monotonicity, since the simplified database is contained in the
        original clauses plus the additions).
        """
        from ..sat.proof import check_unsat_proof

        if self._selectors:
            raise RuntimeError("proof validation is not supported with "
                               "open push/pop scopes")
        if self._preprocess:
            if not self._produce_proof:
                raise RuntimeError("solver was not constructed with "
                                   "produce_proof=True")
            if self._last_unsat_proof is None:
                raise RuntimeError("no unsat answer to validate")
            originals, additions, num_vars = self._last_unsat_proof
            return check_unsat_proof(originals, additions,
                                     num_vars=num_vars)
        assert self._sat is not None
        proof = self._sat.proof
        if proof is None:
            raise RuntimeError("solver was not constructed with "
                               "produce_proof=True")
        originals, learned = proof
        return check_unsat_proof(originals, learned,
                                 num_vars=self._sat.num_vars)
