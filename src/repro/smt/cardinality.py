"""Cardinality-constraint encodings.

The paper's model contains counting constraints in three places: the
failure budget (``N - Σ Node_i ≤ k``), the unique-measurement count
(``Σ DelUMsr_E ≥ n``), and bad-data redundancy (``Σ SE_{X,Z} ≥ r + 1``).
These are compiled to CNF here.

Two encodings are provided:

* :class:`Totalizer` — Bailleux & Boulier's unary totalizer, truncated at
  the needed bound (*k-simplification*).  The encoding is
  *bidirectional*: output ``o_j`` is true **iff** at least ``j`` inputs
  are true (with ``o_bound`` meaning "at least bound").  Bidirectionality
  lets cardinality atoms appear under any polarity in a formula.
* :func:`encode_at_most_sequential` — Sinz's sequential counter, which
  directly asserts an at-most-k constraint.  Kept as the ablation
  baseline for the encoding-choice benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

from ..sat.cnf import CNF

__all__ = ["Totalizer", "SequentialCounter", "encode_at_most_sequential",
           "encode_at_least_sequential"]


class Totalizer:
    """A truncated, bidirectional unary counter over input literals.

    ``outputs[j-1]`` (1-based count *j*) is a variable that is true iff
    at least ``j`` of the inputs are true, for ``j < bound``; the last
    output (count ``bound``) is true iff at least ``bound`` inputs are
    true.  ``bound`` of ``min(len(lits), requested)`` outputs are built.
    """

    def __init__(self, cnf: CNF, lits: Sequence[int], bound: int) -> None:
        if bound < 1:
            raise ValueError("bound must be at least 1")
        self.cnf = cnf
        self.lits = list(lits)
        self.bound = min(bound, len(self.lits))
        if not self.lits:
            self.outputs: List[int] = []
        else:
            self.outputs = self._build(self.lits)

    def _build(self, lits: Sequence[int]) -> List[int]:
        if len(lits) == 1:
            return [lits[0]]
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: List[int], right: List[int]) -> List[int]:
        cnf = self.cnf
        size = min(len(left) + len(right), self.bound)
        out = [cnf.new_var() for _ in range(size)]

        # Forward: ≥i on the left and ≥j on the right imply
        # ≥min(i+j, size) overall.  (i = 0 / j = 0 impose no premise.)
        for i in range(len(left) + 1):
            for j in range(len(right) + 1):
                total = i + j
                if total == 0:
                    continue
                clause = [out[min(total, size) - 1]]
                if i > 0:
                    clause.append(-left[i - 1])
                if j > 0:
                    clause.append(-right[j - 1])
                cnf.add_clause(clause)

        # Backward: out_t implies that every split i + j = t - 1 has
        # ≥i+1 on the left or ≥j+1 on the right.  A positive literal is
        # omitted when its count is unreachable on that side (then the
        # other side alone must account for the total).
        for t in range(1, size + 1):
            for i in range(t):
                j = t - 1 - i
                clause = [-out[t - 1]]
                if i + 1 <= len(left):
                    clause.append(left[i])
                if j + 1 <= len(right):
                    clause.append(right[j])
                cnf.add_clause(clause)
        return out


def encode_at_most_sequential(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Assert ``sum(lits) <= k`` with Sinz's sequential counter.

    This *asserts* the constraint (adds clauses that are falsified by any
    assignment with more than *k* true inputs); it does not produce a
    reified literal, so it is only usable for top-level constraints.
    """
    n = len(lits)
    if k < 0:
        cnf.add_clause([])  # unsatisfiable
        return
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            cnf.add_clause([-lit])
        return
    # s[i][j] = at least j+1 of the first i+1 inputs are true.
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-lits[0], s[0][0]])
    for j in range(1, k):
        cnf.add_clause([-s[0][j]])
    for i in range(1, n):
        cnf.add_clause([-lits[i], s[i][0]])
        cnf.add_clause([-s[i - 1][0], s[i][0]])
        for j in range(1, k):
            cnf.add_clause([-lits[i], -s[i - 1][j - 1], s[i][j]])
            cnf.add_clause([-s[i - 1][j], s[i][j]])
        cnf.add_clause([-lits[i], -s[i - 1][k - 1]])


def encode_at_least_sequential(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Assert ``sum(lits) >= k`` via the dual at-most on negations."""
    n = len(lits)
    if k <= 0:
        return
    if k > n:
        cnf.add_clause([])
        return
    encode_at_most_sequential(cnf, [-lit for lit in lits], n - k)


class SequentialCounter:
    """A truncated, bidirectional sequential (Sinz-style) counter.

    Same contract as :class:`Totalizer` — ``outputs[j-1]`` is true iff
    at least ``j`` inputs are true (saturating at ``bound``) — but built
    as a linear register chain instead of a balanced merge tree.  Kept
    as the alternative encoding for the cardinality-ablation benchmark.
    """

    def __init__(self, cnf: CNF, lits: Sequence[int], bound: int) -> None:
        if bound < 1:
            raise ValueError("bound must be at least 1")
        self.cnf = cnf
        self.lits = list(lits)
        self.bound = min(bound, len(self.lits))
        if not self.lits:
            self.outputs: List[int] = []
            return
        k = self.bound
        # register[j-1] after input i: at least j of the first i inputs.
        register: List[int] = [self.lits[0]]
        for j in range(2, k + 1):
            register.append(None)  # unreachable counts start absent
        for i in range(1, len(self.lits)):
            x = self.lits[i]
            fresh: List[int] = []
            top = min(i + 1, k)
            for j in range(1, top + 1):
                s = cnf.new_var()
                prev_same = register[j - 1] if j - 1 < len(register) else None
                prev_less = register[j - 2] if j >= 2 else True
                # s ↔ prev_same ∨ (x ∧ prev_less)
                if prev_less is True:
                    # s ↔ prev_same ∨ x
                    if prev_same is None:
                        cnf.add_clause([-s, x])
                        cnf.add_clause([s, -x])
                    else:
                        cnf.add_clause([-s, prev_same, x])
                        cnf.add_clause([s, -prev_same])
                        cnf.add_clause([s, -x])
                elif prev_same is None:
                    # s ↔ x ∧ prev_less
                    cnf.add_clause([-s, x])
                    cnf.add_clause([-s, prev_less])
                    cnf.add_clause([s, -x, -prev_less])
                else:
                    # s ↔ prev_same ∨ (x ∧ prev_less)
                    cnf.add_clause([-s, prev_same, x])
                    cnf.add_clause([-s, prev_same, prev_less])
                    cnf.add_clause([s, -prev_same])
                    cnf.add_clause([s, -x, -prev_less])
                fresh.append(s)
            register = fresh
        self.outputs = list(register)
