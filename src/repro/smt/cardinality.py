"""Cardinality-constraint encodings.

The paper's model contains counting constraints in three places: the
failure budget (``N - Σ Node_i ≤ k``), the unique-measurement count
(``Σ DelUMsr_E ≥ n``), and bad-data redundancy (``Σ SE_{X,Z} ≥ r + 1``).
These are compiled to CNF here.

Two encodings are provided:

* :class:`Totalizer` — Bailleux & Boulier's unary totalizer, truncated at
  the needed bound (*k-simplification*).  The encoding is
  *bidirectional*: output ``o_j`` is true **iff** at least ``j`` inputs
  are true (with ``o_bound`` meaning "at least bound").  Bidirectionality
  lets cardinality atoms appear under any polarity in a formula.
* :class:`SequentialCounter` — Sinz's sequential counter built to the
  same bidirectional contract, kept as the ablation baseline for the
  encoding-choice benchmark.  (:func:`encode_at_most_sequential` /
  :func:`encode_at_least_sequential` are the assert-only variants.)

Both counters are **extendable**: :meth:`CardinalityCounter.raise_bound`
grows the output chain *in place*, reusing every existing merge node
and register cell, so a budget sweep (or a galloping search that
overshoots) never rebuilds the tree.  The clauses added while the bound
was lower stay in the formula — they are sound (a count that saturated
at the old top output still implies that output) and merely redundant
next to the sharper clauses added for the new outputs.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

__all__ = ["ClauseSink", "CardinalityCounter", "Totalizer",
           "SequentialCounter", "encode_at_most_sequential",
           "encode_at_least_sequential"]


class ClauseSink(Protocol):
    """What the encoders need from a clause receiver.

    Both :class:`repro.sat.CNF` and :class:`repro.sat.SatSolver`
    satisfy this protocol, so counters can write into a formula
    container or feed a solver incrementally.
    """

    def new_var(self) -> int:
        ...

    def add_clause(self, lits: Sequence[int]) -> object:
        ...


class CardinalityCounter:
    """Common contract of the unary counters.

    ``outputs[j-1]`` (1-based count *j*) is a literal that is true iff
    at least ``j`` of the inputs are true, for every ``j`` up to
    ``bound``; ``bound`` saturates at ``len(lits)``.  Subclasses
    implement :meth:`_build` (initial construction) and :meth:`_grow`
    (in-place extension to a larger bound).
    """

    def __init__(self, cnf: ClauseSink, lits: Sequence[int],
                 bound: int) -> None:
        if bound < 1:
            raise ValueError("bound must be at least 1")
        self.cnf = cnf
        self.lits = list(lits)
        self.bound = min(bound, len(self.lits))
        self.outputs: List[int] = []
        if self.lits:
            self._build()

    def _build(self) -> None:
        raise NotImplementedError

    def _grow(self, new_bound: int) -> None:
        raise NotImplementedError

    def raise_bound(self, new_bound: int) -> None:
        """Grow the output chain in place to ``min(new_bound, n)``.

        Existing merge nodes (register cells) and output literals are
        reused untouched — ``outputs[:old_bound]`` is unchanged — and
        only the defining clauses of the *new* outputs are added.
        Lowering the bound is a no-op: the counter already answers every
        query below its bound.
        """
        target = min(new_bound, len(self.lits))
        if target <= self.bound or not self.lits:
            return
        self._grow(target)
        self.bound = target


class _TotNode:
    """One merge node of the totalizer tree.

    Leaves carry a single input literal; internal nodes merge their
    children's unary counts.  ``width`` is the number of input literals
    below the node; ``outputs`` holds ``min(width, bound)`` literals.
    """

    __slots__ = ("left", "right", "width", "outputs")

    def __init__(self, left: Optional["_TotNode"],
                 right: Optional["_TotNode"],
                 width: int, outputs: List[int]) -> None:
        self.left = left
        self.right = right
        self.width = width
        self.outputs = outputs


class Totalizer(CardinalityCounter):
    """A truncated, bidirectional, extendable unary merge tree.

    The balanced tree built at construction is retained, so
    :meth:`raise_bound` extends each node's output chain in place:
    new output variables are allocated per node, forward/backward
    defining clauses are added only for count totals above the old
    bound, and every previously allocated variable keeps its meaning.
    """

    def _build(self) -> None:
        self._root = self._build_tree(self.lits)
        self._extend_node(self._root, self.bound)
        self.outputs = self._root.outputs

    def _grow(self, new_bound: int) -> None:
        self._extend_node(self._root, new_bound)
        self.outputs = self._root.outputs

    def _build_tree(self, lits: Sequence[int]) -> _TotNode:
        if len(lits) == 1:
            return _TotNode(None, None, 1, [lits[0]])
        mid = len(lits) // 2
        left = self._build_tree(lits[:mid])
        right = self._build_tree(lits[mid:])
        return _TotNode(left, right, left.width + right.width, [])

    def _extend_node(self, node: _TotNode, bound: int) -> None:
        """Bring *node* (and its subtree) up to ``min(width, bound)``
        outputs, adding only the clauses the new outputs need."""
        if node.left is None or node.right is None:
            return  # leaf: its output *is* the input literal
        target = min(node.width, bound)
        old = len(node.outputs)
        if old >= target:
            return
        self._extend_node(node.left, bound)
        self._extend_node(node.right, bound)
        cnf = self.cnf
        left = node.left.outputs
        right = node.right.outputs
        node.outputs.extend(cnf.new_var() for _ in range(target - old))
        out = node.outputs

        # Forward: ≥i on the left and ≥j on the right imply
        # ≥min(i+j, target) overall.  (i = 0 / j = 0 impose no premise.)
        # Totals at or below the old size already have their exact
        # clause; totals above it previously saturated into the old top
        # output (still sound) and now get their sharper clause.
        for i in range(len(left) + 1):
            for j in range(len(right) + 1):
                total = i + j
                if total <= old:
                    continue
                clause = [out[min(total, target) - 1]]
                if i > 0:
                    clause.append(-left[i - 1])
                if j > 0:
                    clause.append(-right[j - 1])
                cnf.add_clause(clause)

        # Backward: out_t implies that every split i + j = t - 1 has
        # ≥i+1 on the left or ≥j+1 on the right.  A positive literal is
        # omitted when its count is unreachable on that side (then the
        # other side alone must account for the total).
        for t in range(old + 1, target + 1):
            for i in range(t):
                j = t - 1 - i
                clause = [-out[t - 1]]
                if i < len(left):
                    clause.append(left[i])
                if j < len(right):
                    clause.append(right[j])
                cnf.add_clause(clause)


def encode_at_most_sequential(cnf: ClauseSink, lits: Sequence[int],
                              k: int) -> None:
    """Assert ``sum(lits) <= k`` with Sinz's sequential counter.

    This *asserts* the constraint (adds clauses that are falsified by any
    assignment with more than *k* true inputs); it does not produce a
    reified literal, so it is only usable for top-level constraints.
    """
    n = len(lits)
    if k < 0:
        cnf.add_clause([])  # unsatisfiable
        return
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            cnf.add_clause([-lit])
        return
    # s[i][j] = at least j+1 of the first i+1 inputs are true.
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-lits[0], s[0][0]])
    for j in range(1, k):
        cnf.add_clause([-s[0][j]])
    for i in range(1, n):
        cnf.add_clause([-lits[i], s[i][0]])
        cnf.add_clause([-s[i - 1][0], s[i][0]])
        for j in range(1, k):
            cnf.add_clause([-lits[i], -s[i - 1][j - 1], s[i][j]])
            cnf.add_clause([-s[i - 1][j], s[i][j]])
        cnf.add_clause([-lits[i], -s[i - 1][k - 1]])


def encode_at_least_sequential(cnf: ClauseSink, lits: Sequence[int],
                               k: int) -> None:
    """Assert ``sum(lits) >= k`` via the dual at-most on negations."""
    n = len(lits)
    if k <= 0:
        return
    if k > n:
        cnf.add_clause([])
        return
    encode_at_most_sequential(cnf, [-lit for lit in lits], n - k)


class SequentialCounter(CardinalityCounter):
    """A truncated, bidirectional, extendable sequential counter.

    Same contract as :class:`Totalizer` — ``outputs[j-1]`` is true iff
    at least ``j`` inputs are true — but built as a Sinz-style register
    grid instead of a balanced merge tree.  ``_rows[i][j-1]`` holds the
    literal for "at least *j* of the first *i+1* inputs"; unreachable
    counts (``j > i+1``) are simply absent from the row, and reads past
    a row's end come back as ``None`` (count impossible, treated as
    false).  The full grid is retained so :meth:`raise_bound` appends
    the missing high-count cells row by row without rebuilding.
    """

    def _build(self) -> None:
        self._rows: List[List[int]] = [[] for _ in self.lits]
        self._fill(self.bound)

    def _grow(self, new_bound: int) -> None:
        self._fill(new_bound)

    def _fill(self, bound: int) -> None:
        """Extend every row to ``min(i+1, bound)`` cells."""
        for i, row in enumerate(self._rows):
            top = min(i + 1, bound)
            for j in range(len(row) + 1, top + 1):
                row.append(self._define_cell(i, j))
        self.outputs = list(self._rows[-1])

    def _define_cell(self, i: int, j: int) -> int:
        """A literal for "at least *j* of the first *i+1* inputs"."""
        x = self.lits[i]
        if i == 0:
            return x  # j == 1: "at least one of the first one"
        cnf = self.cnf
        prev = self._rows[i - 1]
        # "at least j of the first i" — absent (False) when j > i.
        prev_same: Optional[int] = prev[j - 1] if j - 1 < len(prev) else None
        s = cnf.new_var()
        if j == 1:
            # "at least j-1 of the first i" is trivially true:
            # s ↔ prev_same ∨ x.
            assert prev_same is not None
            cnf.add_clause([-s, prev_same, x])
            cnf.add_clause([s, -prev_same])
            cnf.add_clause([s, -x])
            return s
        prev_less: int = prev[j - 2]  # reachable: j - 1 <= i
        if prev_same is None:
            # s ↔ x ∧ prev_less
            cnf.add_clause([-s, x])
            cnf.add_clause([-s, prev_less])
            cnf.add_clause([s, -x, -prev_less])
        else:
            # s ↔ prev_same ∨ (x ∧ prev_less)
            cnf.add_clause([-s, prev_same, x])
            cnf.add_clause([-s, prev_same, prev_less])
            cnf.add_clause([s, -prev_same])
            cnf.add_clause([s, -x, -prev_less])
        return s
