"""The verification engine facade.

:class:`VerificationEngine` is the single entry point every consumer —
the CLI, the sweep drivers, max-resiliency search, threat-space
enumeration, hardening, the audit report — programs against.  It owns

* the lint gate (run once per configuration, not per query),
* a shared :class:`~repro.core.reference.ReferenceEvaluator`,
* a pluggable backend (``fresh`` | ``incremental`` | ``assumption`` |
  ``preprocessed``),
* the encoding cache feeding the incremental backend, and
* the default parallelism for sweep executors spawned on its behalf.

Future scaling work (batching, sharding, portfolio solving) plugs in
here as new backends without touching any consumer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..core.analyzer import ConfigurationLintError, ScadaAnalyzer
from ..core.problem import ObservabilityProblem
from ..core.reference import ReferenceEvaluator
from ..core.results import Status, ThreatVector, VerificationResult
from ..core.search import SearchBounds, galloping_max_bounded
from ..core.specs import Property, ResiliencySpec
from ..obs.tracer import count as obs_count
from ..obs.tracer import event as obs_event
from ..obs.tracer import span as obs_span
from ..sat.limits import Limits, ResourceLimitReached
from ..scada.network import ScadaNetwork
from .backends import VerificationBackend, make_backend
from .cache import EncodingCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graphs.security_index import StructuralAnalysis

__all__ = ["VerificationEngine"]


class VerificationEngine:
    """Unified, backend-pluggable resiliency verification."""

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 backend: str = "fresh",
                 card_encoding: str = "totalizer",
                 lint: bool = True,
                 jobs: int = 1,
                 cache: Optional[EncodingCache] = None,
                 reference: Optional[ReferenceEvaluator] = None,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.problem = problem
        self.card_encoding = card_encoding
        self.jobs = jobs
        #: Forwarded to every SAT substrate any backend builds — e.g.
        #: ``{"inprocess": False}`` for ``--no-inprocess``.  Fixed for
        #: the engine's life and shared by with_backend siblings.
        self.solver_opts = dict(solver_opts or {})
        if lint:
            # Imported lazily: repro.lint imports core modules at module
            # level, so a top-level import here would be circular.
            from ..lint import lint_case

            report = lint_case(network, problem)
            if report.has_errors:
                raise ConfigurationLintError(report)
        self.reference = reference or ReferenceEvaluator(network, problem)
        self.cache = cache if cache is not None else EncodingCache()
        self._backend: VerificationBackend = make_backend(
            backend, network, problem, card_encoding=card_encoding,
            reference=self.reference, cache=self.cache, jobs=jobs,
            solver_opts=self.solver_opts)
        self._export_analyzer: Optional[ScadaAnalyzer] = None
        self._structural: Optional["StructuralAnalysis"] = None
        #: Lifetime solver-effort totals across every query this engine
        #: has answered (the service's per-session ``GET /sessions``
        #: accounting); tier keys are last-seen gauges, not sums.
        self.cumulative_stats: Dict[str, float] = {"queries": 0.0}

    # ------------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def backend(self) -> VerificationBackend:
        return self._backend

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query.

        Forwarded to the active backend; the query in flight answers
        UNKNOWN with limit reason ``interrupt`` (never a spurious
        verdict) and warm incremental/assumption contexts survive to
        serve the next query.  Sticky until :meth:`clear_interrupt` —
        the service's job layer arms it when a client cancels or
        disconnects, and re-arms the engine once the cancelled job has
        fully unwound.
        """
        self._backend.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the engine after an :meth:`interrupt`."""
        self._backend.clear_interrupt()

    def with_backend(self, backend: str) -> "VerificationEngine":
        """This engine, or a sibling running the named backend.

        The sibling shares the reference evaluator and encoding cache
        and skips the lint gate (this engine already ran it), so
        switching backends mid-analysis is cheap.  Returns ``self``
        when the backend already matches.
        """
        if backend == self.backend_name:
            return self
        return VerificationEngine(
            self.network, self.problem, backend=backend,
            card_encoding=self.card_encoding, lint=False,
            jobs=self.jobs, cache=self.cache, reference=self.reference,
            solver_opts=self.solver_opts)

    @classmethod
    def wrap(cls, subject: Union["VerificationEngine", ScadaAnalyzer]
             ) -> "VerificationEngine":
        """Adapt an existing analyzer (or pass an engine through).

        Lets the :mod:`repro.analysis` drivers accept either object
        while every verification still funnels through one engine.  The
        analyzer's reference evaluator (and its lint decision) is
        reused, so wrapping is cheap.
        """
        if isinstance(subject, cls):
            return subject
        backend = "preprocessed" if subject.preprocess else "fresh"
        return cls(subject.network, subject.problem, backend=backend,
                   card_encoding=subject.card_encoding, lint=False,
                   reference=subject.reference)

    # ------------------------------------------------------------------

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        """Verify one resiliency specification via the active backend.

        Semantics match :meth:`ScadaAnalyzer.verify
        <repro.core.analyzer.ScadaAnalyzer.verify>`; the result
        additionally records the producing backend and per-query solver
        statistics.  ``certify=True`` on the incremental backend falls
        back to a fresh solve (push/pop proofs are unsupported) and
        notes that in ``details["certify_fallback"]``.  ``limits``
        bounds the solve; an expired budget yields an UNKNOWN result,
        never a spurious verdict.
        """
        with obs_span("query", spec=spec.describe(),
                      backend=self.backend_name) as sp:
            result = self._backend.verify(spec, minimize=minimize,
                                          max_conflicts=max_conflicts,
                                          certify=certify, limits=limits)
            sp.attrs["status"] = result.status.value
            sp.attrs["conflicts"] = int(result.stats.get("conflicts", 0))
            sp.attrs["restarts"] = int(result.stats.get("restarts", 0))
            sp.attrs["decisions"] = int(result.stats.get("decisions", 0))
            sp.attrs["propagations"] = int(
                result.stats.get("propagations", 0))
        self._accumulate(result.stats)
        return result

    def _accumulate(self, stats: Dict[str, float]) -> None:
        """Fold one query's solver stats into the lifetime totals.

        Tier sizes are instantaneous snapshots, so they overwrite;
        everything else (conflicts, propagations, inprocessing work,
        check time) is a per-query delta and sums.
        """
        totals = self.cumulative_stats
        totals["queries"] = totals.get("queries", 0.0) + 1.0
        for key, value in stats.items():
            if key.startswith("tier_"):
                totals[key] = float(value)
            else:
                totals[key] = totals.get(key, 0.0) + float(value)

    def enumerate_threat_vectors(
        self,
        spec: ResiliencySpec,
        limit: Optional[int] = None,
        minimal: bool = True,
        max_conflicts: Optional[int] = None,
        limits: Optional[Limits] = None,
    ) -> List[ThreatVector]:
        """All (minimal) threat vectors within the budget.

        Each individual solve is bounded by *limits*; when one expires,
        :exc:`~repro.sat.ResourceLimitReached` is raised with the
        vectors found so far on its ``partial`` attribute.
        """
        return self._backend.enumerate(spec, limit=limit, minimal=minimal,
                                       max_conflicts=max_conflicts,
                                       limits=limits)

    # ------------------------------------------------------------------
    # Maximal-resiliency searches (galloping + binary, shared helper)
    # ------------------------------------------------------------------

    def structural(self) -> "StructuralAnalysis":
        """The polynomial structural pass over this configuration.

        Built lazily (see :mod:`repro.graphs`); shared by the screened
        searches below and available to callers wanting indices or
        attack brackets without any solving.
        """
        if self._structural is None:
            # Imported lazily: repro.graphs.crosscheck imports this
            # module, so a top-level import here would be circular.
            from ..graphs.security_index import StructuralAnalysis

            self._structural = StructuralAnalysis(self.network,
                                                  self.problem)
        return self._structural

    def _screen_seeds(self, prop: Property, r: int, fallback: int,
                      split: Optional[Tuple[str, int]] = None
                      ) -> Tuple[int, int]:
        """Bracket seeds for a max-resiliency search from the
        structural attack-cardinality bounds.

        For the total budget the translation is direct: max resiliency
        is the minimal attack cardinality minus one, so a witness of
        size ``u`` caps the search at ``u - 1`` and a certified floor
        ``l`` starts it at ``l - 1``.  For a split budget *split* names
        the searched axis (``"ied"`` or ``"rtu"``) and fixes the other
        axis's allowance: the witness caps the search only when its
        other-axis share fits that allowance, and the certified floor
        weakens to ``l - 1 - other`` (the other axis may spend its
        whole allowance toward the attack).
        """
        bounds = self.structural().attack_bounds(prop, r=r)
        if split is None:
            upper = bounds.resiliency_upper(fallback)
            lower = bounds.resiliency_lower() if bounds.certified else -1
        else:
            axis, other = split
            upper = fallback
            if bounds.upper is not None:
                witness = set(bounds.witness)
                ieds = len(witness & set(self.network.ied_ids))
                rtus = len(witness & set(self.network.rtu_ids))
                own, rest = ((ieds, rtus) if axis == "ied"
                             else (rtus, ieds))
                if rest <= other:
                    upper = min(fallback, own - 1)
            lower = (bounds.lower - 1 - other if bounds.certified
                     else -1)
        lower = max(-1, min(lower, upper))
        if lower > -1 or upper < fallback:
            obs_count("graphs.screen.searches_seeded")
            obs_event("graphs.screen", property=prop.value,
                      certified=bounds.certified, lower=lower,
                      upper=upper, fallback=fallback)
        return lower, upper

    def _probe(self, spec: ResiliencySpec,
               max_conflicts: Optional[int],
               limits: Optional[Limits]) -> Optional[bool]:
        """Three-valued monotone oracle: None when the budget expired."""
        result = self.verify(spec, minimize=False,
                             max_conflicts=max_conflicts, limits=limits)
        if result.status is Status.UNKNOWN:
            return None
        return result.is_resilient

    @staticmethod
    def _exact_max(bounds: SearchBounds, what: str) -> int:
        if not bounds.exact:
            raise ResourceLimitReached(
                f"solver budget exhausted during {what} search; "
                f"maximum {bounds.describe()}",
                bounds=bounds)
        return bounds.lower

    def max_total_resiliency_bounds(
            self,
            prop: Property = Property.OBSERVABILITY,
            r: int = 1,
            max_conflicts: Optional[int] = None,
            limits: Optional[Limits] = None,
            screen: bool = True) -> SearchBounds:
        """Sound bracket on the largest k-resilient total budget.

        With no limits the bracket is exact (``lower == upper``); an
        UNKNOWN probe stops refinement and the true maximum lies in
        ``[lower, upper]``.  With *screen* (the default) the structural
        pass seeds the search bracket, skipping probes it has already
        decided; pass ``screen=False`` for a solver-only answer (the
        cross-check does, to keep the two engines independent).
        """
        fallback = len(self.network.field_device_ids)
        lower, upper = (-1, fallback)
        if screen:
            lower, upper = self._screen_seeds(prop, r, fallback)
        return galloping_max_bounded(
            lambda k: self._probe(
                ResiliencySpec.for_property(prop, r=r, k=k),
                max_conflicts, limits),
            upper, lower=lower)

    def max_total_resiliency(self,
                             prop: Property = Property.OBSERVABILITY,
                             r: int = 1,
                             max_conflicts: Optional[int] = None,
                             limits: Optional[Limits] = None,
                             screen: bool = True) -> int:
        """Largest total k such that the k-resilient property holds.

        Raises :exc:`~repro.sat.ResourceLimitReached` (carrying the
        sound ``bounds`` bracket) if a probe's budget expires before
        the maximum is pinned down exactly.
        """
        return self._exact_max(
            self.max_total_resiliency_bounds(
                prop=prop, r=r, max_conflicts=max_conflicts,
                limits=limits, screen=screen),
            "max-total-resiliency")

    def max_ied_resiliency_bounds(
            self,
            prop: Property = Property.OBSERVABILITY,
            k2: int = 0, r: int = 1,
            max_conflicts: Optional[int] = None,
            limits: Optional[Limits] = None,
            screen: bool = True) -> SearchBounds:
        """Sound bracket on the largest (k1, k2)-resilient IED budget."""
        fallback = len(self.network.ied_ids)
        lower, upper = (-1, fallback)
        if screen:
            lower, upper = self._screen_seeds(prop, r, fallback,
                                              split=("ied", k2))
        return galloping_max_bounded(
            lambda k1: self._probe(
                ResiliencySpec.for_property(prop, r=r, k1=k1, k2=k2),
                max_conflicts, limits),
            upper, lower=lower)

    def max_ied_resiliency(self,
                           prop: Property = Property.OBSERVABILITY,
                           k2: int = 0, r: int = 1,
                           max_conflicts: Optional[int] = None,
                           limits: Optional[Limits] = None,
                           screen: bool = True) -> int:
        """Largest k1 with the (k1, k2)-resilient property holding."""
        return self._exact_max(
            self.max_ied_resiliency_bounds(
                prop=prop, k2=k2, r=r, max_conflicts=max_conflicts,
                limits=limits, screen=screen),
            "max-IED-resiliency")

    def max_rtu_resiliency_bounds(
            self,
            prop: Property = Property.OBSERVABILITY,
            k1: int = 0, r: int = 1,
            max_conflicts: Optional[int] = None,
            limits: Optional[Limits] = None,
            screen: bool = True) -> SearchBounds:
        """Sound bracket on the largest (k1, k2)-resilient RTU budget."""
        fallback = len(self.network.rtu_ids)
        lower, upper = (-1, fallback)
        if screen:
            lower, upper = self._screen_seeds(prop, r, fallback,
                                              split=("rtu", k1))
        return galloping_max_bounded(
            lambda k2: self._probe(
                ResiliencySpec.for_property(prop, r=r, k1=k1, k2=k2),
                max_conflicts, limits),
            upper, lower=lower)

    def max_rtu_resiliency(self,
                           prop: Property = Property.OBSERVABILITY,
                           k1: int = 0, r: int = 1,
                           max_conflicts: Optional[int] = None,
                           limits: Optional[Limits] = None,
                           screen: bool = True) -> int:
        """Largest k2 with the (k1, k2)-resilient property holding."""
        return self._exact_max(
            self.max_rtu_resiliency_bounds(
                prop=prop, k1=k1, r=r, max_conflicts=max_conflicts,
                limits=limits, screen=screen),
            "max-RTU-resiliency")

    # ------------------------------------------------------------------
    # Model export (always through a fresh encoding)
    # ------------------------------------------------------------------

    def _exporter(self) -> ScadaAnalyzer:
        analyzer = getattr(self._backend, "analyzer", None)
        if isinstance(analyzer, ScadaAnalyzer):
            return analyzer
        if self._export_analyzer is None:
            self._export_analyzer = ScadaAnalyzer(
                self.network, self.problem,
                card_encoding=self.card_encoding, lint=False,
                reference=self.reference)
        return self._export_analyzer

    def model_size(self, spec: ResiliencySpec) -> Dict[str, int]:
        """Encoded model size (vars/clauses) without solving."""
        return self._exporter().model_size(spec)

    def export_cnf(self, spec: ResiliencySpec) -> Tuple[object, set]:
        """The Tseitin CNF of the threat model plus frozen variables."""
        return self._exporter().export_cnf(spec)

    def export_smtlib(self, spec: ResiliencySpec) -> str:
        """The threat-verification model as an SMT-LIB 2 script."""
        return self._exporter().export_smtlib(spec)

    def __repr__(self) -> str:
        return (f"VerificationEngine({self.network.name!r}, "
                f"backend={self.backend_name!r}, jobs={self.jobs})")
