"""Parallel sweep execution with fault tolerance.

Sweep workloads — Fig. 5/6 bus-size and hierarchy scans, per-property
audit maxima — are embarrassingly parallel across *instances* (distinct
seeds, bus sizes, hierarchy levels): each task builds its own solver
state, so processes share nothing.  :class:`SweepExecutor` fans such
tasks over a process pool while keeping the results in task-submission
order, so ``jobs=1`` and ``jobs=N`` produce byte-identical sweep
outputs (property-tested in ``tests/engine``).

A long sweep must survive one bad instance.  Three failure classes are
handled distinctly:

* **Ordinary exceptions** raised by the task function are caught *inside
  the worker* and shipped back as values, so they carry exact task
  attribution and never take the pool down.
* **Worker crashes** (segfault, OOM-kill, ``os._exit``) surface as
  ``BrokenProcessPool``; the pool is unusable afterwards, so it is
  killed and every task without a result is re-run *alone* in a fresh
  single-worker pool — innocent tasks recover on their first solo
  attempt, and the culprit is isolated exactly.
* **Hangs** are cut off by the per-task ``timeout``; the pool's worker
  processes are killed (a hung worker ignores cooperative shutdown) and
  the same solo-recovery phase runs.

A task that still fails after its attempt budget becomes a
:class:`SweepTaskError` naming the task index and arguments; with
``on_error="return"`` the error object takes the failed task's slot in
the result list and every other task's result survives.

Tasks must be module-level callables with picklable arguments (the
standard :mod:`multiprocessing` contract).  Solver *state* never
crosses the pool — only task descriptions and result dataclasses do.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from ..obs.tracer import Tracer, activate, current_tracer
from ..obs.tracer import span as obs_span

__all__ = ["SweepExecutor", "SweepTaskError", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Error-handling policies for :meth:`SweepExecutor.map`.
_ON_ERROR = ("raise", "return")


def resolve_jobs(jobs: Optional[int], reserve: int = 0) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → usable cpu count.

    Prefers the scheduling affinity mask over the raw CPU count: in a
    cgroup-pinned container (CI runners, batch schedulers) the machine
    may report 64 CPUs while the process is allowed 2, and sizing the
    pool to 64 just thrashes the two it actually has.

    ``reserve`` holds back that many cores from the *auto* sizing (the
    result never drops below 1).  The service daemon reserves one core
    for its event loop: a pool sized to every core would starve the
    accept/dispatch loop exactly when the workers are busiest.  An
    explicit ``jobs`` value is always honored as given — the operator
    asked for that many.
    """
    if reserve < 0:
        raise ValueError("reserve must be non-negative")
    if jobs is None or jobs == 0:
        try:
            usable = len(os.sched_getaffinity(0)) or 1
        except (AttributeError, OSError):
            # Not POSIX (or the mask is unreadable): raw count fallback.
            usable = os.cpu_count() or 1
        return max(1, usable - reserve)
    if jobs < 0:
        raise ValueError("jobs must be positive (or 0/None for auto)")
    return jobs


class SweepTaskError(RuntimeError):
    """One sweep task failed after exhausting its attempt budget.

    Carries the submission ``index`` and original ``task`` arguments so
    a partial sweep can report — and a caller re-drive — exactly the
    work that was lost.  ``cause_type``/``cause_message`` describe the
    final failure; ``worker_traceback`` holds the in-worker traceback
    when the failure was an ordinary exception (empty for crashes and
    timeouts, where no Python frame survives).
    """

    def __init__(self, index: int, task: Any, attempts: int,
                 cause_type: str, cause_message: str,
                 worker_traceback: str = "") -> None:
        super().__init__(
            f"sweep task #{index} ({task!r}) failed after "
            f"{attempts} attempt(s): {cause_type}: {cause_message}")
        self.index = index
        self.task = task
        self.attempts = attempts
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.worker_traceback = worker_traceback


@dataclass
class _WorkerFailure:
    """Picklable record of a failure observed for one attempt."""

    exc_type: str
    message: str
    traceback: str = ""


@dataclass
class _TaskOutcome:
    """A task's result plus its worker-side telemetry, shipped back
    across the pool.  ``export`` is the worker tracer's
    :meth:`~repro.obs.tracer.Tracer.export` — plain dicts, picklable."""

    value: Any
    worker: int
    duration: float
    export: Dict[str, Any] = field(default_factory=dict)


class _TelemetryBoundary:
    """Picklable wrapper tracing one task inside a pool worker.

    The parent's tracer does not exist in the worker process, so the
    worker traces into a fresh in-memory :class:`~repro.obs.Tracer`
    (activated for the duration of the task, which is what the solver
    probes and spans inside *fn* see) and ships its export home inside
    a :class:`_TaskOutcome` for the parent to absorb with per-worker
    attribution.  Only used when the parent has an active tracer.
    """

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, task: Any) -> "_TaskOutcome":
        tracer = Tracer()
        started = time.perf_counter()
        with activate(tracer):
            value = self.fn(task)
        return _TaskOutcome(value, os.getpid(),
                            time.perf_counter() - started,
                            tracer.export())


class _FaultBoundary:
    """Picklable wrapper returning failures as values, not raises.

    An exception that escapes a pool worker is re-raised in the parent
    with no record of *which* task raised it; catching at the boundary
    keeps the pool alive and the attribution exact.
    """

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, task: Any) -> Any:
        try:
            return self.fn(task)
        except BaseException as exc:  # noqa: BLE001 — shipped, not hidden
            return _WorkerFailure(type(exc).__name__, str(exc),
                                  traceback.format_exc())


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly tear down a pool whose workers may be hung or dead.

    A cooperative ``shutdown(wait=True)`` would block forever behind a
    hung worker, so the processes are killed first.
    """
    for proc in getattr(pool, "_processes", {}).values():
        try:
            proc.kill()
        except Exception:  # pragma: no cover — racing process exit
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class SweepExecutor:
    """Deterministically-ordered, fault-tolerant process-pool fan-out.

    ``jobs=1`` runs inline in the calling process (no pool, no pickle
    round-trip) — the reference execution the parallel path must match.
    """

    def __init__(self, jobs: Optional[int] = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        #: Wall-clock duration of the last :meth:`map` call.
        self.last_wall_time = 0.0
        #: :class:`SweepTaskError` per task lost in the last :meth:`map`
        #: call (empty when everything succeeded).
        self.last_failures: List[SweepTaskError] = []
        #: Per-task attribution of the last :meth:`map` call when a
        #: tracer was active — dicts of ``index``, ``worker`` (pid),
        #: ``dur`` (seconds), ``ok``.  Empty with tracing off.
        self.last_telemetry: List[Dict[str, Any]] = []

    def map(self, fn: Callable[[_T], _R], tasks: Sequence[_T], *,
            timeout: Optional[float] = None,
            retries: int = 0,
            on_error: str = "raise") -> List[Any]:
        """Apply *fn* to every task; results follow task order.

        ``timeout`` bounds each task's wall-clock seconds (pooled runs
        only — the inline ``jobs=1`` path cannot preempt a call and
        documents hangs as the caller's to bound via solver
        :class:`~repro.sat.Limits`).  ``retries`` grants each *failed*
        task that many additional attempts, each in a fresh
        single-worker pool.  ``on_error="raise"`` (default) raises the
        first :class:`SweepTaskError`; ``"return"`` puts the error
        object in the failed task's result slot so the rest of the
        sweep survives — check ``last_failures`` afterwards.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(f"on_error must be one of {_ON_ERROR}, "
                             f"got {on_error!r}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        task_list = list(tasks)
        self.last_failures = []
        self.last_telemetry = []
        started = time.perf_counter()
        with obs_span("sweep", jobs=self.jobs,
                      tasks=len(task_list)) as sp:
            try:
                if self.jobs == 1 or len(task_list) <= 1:
                    return self._map_inline(fn, task_list, retries,
                                            on_error)
                return self._map_pool(fn, task_list, timeout, retries,
                                      on_error)
            finally:
                self.last_wall_time = time.perf_counter() - started
                sp.attrs["failures"] = len(self.last_failures)

    def starmap(self, fn: Callable[..., _R],
                tasks: Sequence[Sequence[Any]], *,
                timeout: Optional[float] = None,
                retries: int = 0,
                on_error: str = "raise") -> List[Any]:
        """Like :meth:`map` for argument tuples."""
        return self.map(_Star(fn), list(tasks), timeout=timeout,
                        retries=retries, on_error=on_error)

    # ------------------------------------------------------------------

    def _fail(self, err: SweepTaskError, on_error: str,
              results: List[Any], index: int) -> None:
        """Record a task's final failure per the *on_error* policy."""
        self.last_failures.append(err)
        tracer = current_tracer()
        if tracer is not None:
            entry: Dict[str, Any] = {"index": index, "ok": False,
                                     "error": err.cause_type}
            self.last_telemetry.append(entry)
            tracer.event("sweep.task", **entry)
        if on_error == "raise":
            raise err
        results[index] = err

    def _settle(self, value: Any, index: int) -> Any:
        """Unwrap a :class:`_TaskOutcome` from a traced pool worker:
        absorb its telemetry into the live tracer with per-worker (pid)
        attribution, record the task event, return the task's value.
        Non-outcome values (tracing off, or a failure) pass through."""
        if not isinstance(value, _TaskOutcome):
            return value
        entry: Dict[str, Any] = {"index": index, "worker": value.worker,
                                 "dur": value.duration, "ok": True}
        self.last_telemetry.append(entry)
        tracer = current_tracer()
        if tracer is not None:
            tracer.absorb(value.export, worker=value.worker)
            tracer.event("sweep.task", **entry)
        return value.value

    def _map_inline(self, fn: Callable[[_T], _R], tasks: List[_T],
                    retries: int, on_error: str) -> List[Any]:
        tracer = current_tracer()
        results: List[Any] = [None] * len(tasks)
        for idx, task in enumerate(tasks):
            attempt = 0
            task_started = time.perf_counter()
            ok = False
            while True:
                attempt += 1
                try:
                    results[idx] = fn(task)
                    ok = True
                    break
                except Exception as exc:
                    if attempt <= retries:
                        continue
                    err = SweepTaskError(idx, task, attempt,
                                         type(exc).__name__, str(exc),
                                         traceback.format_exc())
                    err.__cause__ = exc
                    self._fail(err, on_error, results, idx)
                    break
            if ok and tracer is not None:
                # Inline tasks trace straight into the live tracer; only
                # the per-task attribution event needs emitting here.
                entry: Dict[str, Any] = {
                    "index": idx, "worker": os.getpid(),
                    "dur": time.perf_counter() - task_started, "ok": True,
                }
                self.last_telemetry.append(entry)
                tracer.event("sweep.task", **entry)
        return results

    def _map_pool(self, fn: Callable[[_T], _R], tasks: List[_T],
                  timeout: Optional[float], retries: int,
                  on_error: str) -> List[Any]:
        # With a tracer active, each worker runs its task under a fresh
        # in-memory tracer whose export rides home in a _TaskOutcome;
        # _settle absorbs it.  The telemetry boundary sits *inside* the
        # fault boundary so a task exception still becomes a
        # _WorkerFailure value, exactly as with tracing off.
        traced_fn: Callable[[Any], Any] = (
            _TelemetryBoundary(fn) if current_tracer() is not None else fn)
        boundary = _FaultBoundary(traced_fn)
        n = len(tasks)
        results: List[Any] = [None] * n
        resolved = [False] * n
        attempts = [0] * n
        failures: Dict[int, _WorkerFailure] = {}

        # Phase 1: one shared pool, results drained in submission order.
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, n))
        pool_dead = False
        try:
            futures = [pool.submit(boundary, task) for task in tasks]
            for idx, fut in enumerate(futures):
                if pool_dead:
                    # The pool died while waiting on an earlier task;
                    # salvage whatever already finished before the kill.
                    if fut.done() and not fut.cancelled():
                        try:
                            results[idx] = self._settle(
                                fut.result(timeout=0), idx)
                            resolved[idx] = True
                            attempts[idx] = 1
                        except Exception:
                            pass
                    continue
                try:
                    results[idx] = self._settle(
                        fut.result(timeout=timeout), idx)
                    resolved[idx] = True
                    attempts[idx] = 1
                except _FuturesTimeout:
                    # Futures drain in submission order, so this task
                    # has provably been running for the full budget:
                    # the hang is *its* attempt, and it counts against
                    # its retry budget like any other failed attempt.
                    pool_dead = True
                    _kill_pool(pool)
                    attempts[idx] = 1
                    failures[idx] = _WorkerFailure(
                        "Timeout",
                        f"task exceeded its {timeout:g}s "
                        f"wall-clock budget")
                except BrokenProcessPool:
                    # A crash poisons the shared pool, but a neighbour
                    # sharing the pool may be the culprit — no attempt
                    # is charged to this task; solo recovery isolates
                    # the guilty one with a full budget.
                    pool_dead = True
                    _kill_pool(pool)
        except BaseException:
            # Anything unexpected (KeyboardInterrupt, a telemetry
            # failure in _settle) must still tear the pool down hard:
            # the cooperative shutdown below would block forever
            # behind a worker that is hung mid-task.
            if not pool_dead:
                pool_dead = True
                _kill_pool(pool)
            raise
        finally:
            if not pool_dead:
                pool.shutdown(wait=True)

        for idx in range(n):
            if resolved[idx] and isinstance(results[idx], _WorkerFailure):
                failures[idx] = results[idx]

        # Phase 2: solo recovery.  Each task without a clean result
        # re-runs alone in a fresh single-worker pool, so one culprit
        # cannot take neighbours down with it again.  Tasks that never
        # got an attempt (cancelled when the pool died, or starved
        # behind a hang) get a full budget; tasks whose attempt
        # genuinely failed have already spent one.
        for idx in range(n):
            clean = resolved[idx] and idx not in failures
            if clean:
                continue
            failure = failures.get(idx)
            while attempts[idx] < retries + 1:
                attempts[idx] += 1
                value = self._solo_attempt(boundary, tasks[idx], timeout)
                if isinstance(value, _WorkerFailure):
                    failure = value
                    continue
                results[idx] = self._settle(value, idx)
                resolved[idx] = True
                failures.pop(idx, None)
                failure = None
                break
            if failure is not None:
                err = SweepTaskError(idx, tasks[idx], attempts[idx],
                                     failure.exc_type, failure.message,
                                     failure.traceback)
                self._fail(err, on_error, results, idx)
        return results

    @staticmethod
    def _solo_attempt(boundary: "_FaultBoundary", task: Any,
                      timeout: Optional[float]) -> Any:
        """One isolated attempt; failures come back as values."""
        pool = ProcessPoolExecutor(max_workers=1)
        try:
            fut = pool.submit(boundary, task)
            try:
                value = fut.result(timeout=timeout)
            except _FuturesTimeout:
                _kill_pool(pool)
                return _WorkerFailure(
                    "Timeout",
                    f"task exceeded its {timeout:g}s wall-clock budget")
            except BrokenProcessPool as exc:
                _kill_pool(pool)
                return _WorkerFailure(
                    "WorkerCrash",
                    str(exc) or "worker process died abnormally")
            pool.shutdown(wait=True)
            return value
        except BaseException:
            _kill_pool(pool)
            raise


class _Star:
    """Picklable argument-tuple adapter (lambdas don't cross pools)."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
