"""Parallel sweep execution.

Sweep workloads — Fig. 5/6 bus-size and hierarchy scans, per-property
audit maxima — are embarrassingly parallel across *instances* (distinct
seeds, bus sizes, hierarchy levels): each task builds its own solver
state, so processes share nothing.  :class:`SweepExecutor` fans such
tasks over a process pool while keeping the results in task-submission
order, so ``jobs=1`` and ``jobs=N`` produce byte-identical sweep
outputs (property-tested in ``tests/engine``).

Tasks must be module-level callables with picklable arguments (the
standard :mod:`multiprocessing` contract).  Solver *state* never
crosses the pool — only task descriptions and result dataclasses do.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar

__all__ = ["SweepExecutor", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` → cpu count."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be positive (or 0/None for auto)")
    return jobs


class SweepExecutor:
    """Deterministically-ordered fan-out over a process pool.

    ``jobs=1`` runs inline in the calling process (no pool, no pickle
    round-trip) — the reference execution the parallel path must match.
    """

    def __init__(self, jobs: Optional[int] = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        #: Wall-clock duration of the last :meth:`map` call.
        self.last_wall_time = 0.0

    def map(self, fn: Callable[[_T], _R],
            tasks: Sequence[_T]) -> List[_R]:
        """Apply *fn* to every task; results follow task order.

        With ``jobs > 1`` tasks run in a process pool;
        ``ProcessPoolExecutor.map`` already yields results in submission
        order, which is what makes parallel sweeps reproducible.
        """
        started = time.perf_counter()
        try:
            if self.jobs == 1 or len(tasks) <= 1:
                return [fn(task) for task in tasks]
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, tasks))
        finally:
            self.last_wall_time = time.perf_counter() - started

    def starmap(self, fn: Callable[..., _R],
                tasks: Sequence[Sequence[Any]]) -> List[_R]:
        """Like :meth:`map` for argument tuples."""
        return self.map(_Star(fn), list(tasks))


class _Star:
    """Picklable argument-tuple adapter (lambdas don't cross pools)."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
