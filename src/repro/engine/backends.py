"""Pluggable verification backends.

Every backend answers the same two questions — "does a threat vector
exist within this spec's budgets?" and "enumerate them" — but trades
encoding work differently:

* ``fresh`` — re-encode the whole model into a new solver per query
  (the original :class:`~repro.core.analyzer.ScadaAnalyzer` path);
* ``incremental`` — encode the budget-independent part once per
  (property, r, link-modeling) key, scope budgets with push/pop, and
  reuse learned clauses across queries (backed by the engine's
  encoding cache);
* ``assumption`` — like ``incremental``, but budgets (and the bad-data
  ``r``) are selected by assumption literals over persistent extendable
  counters instead of push/pop scopes, so *all* learned clauses survive
  across budgets and one cached context serves every ``(k, r)``;
* ``preprocessed`` — buffer the encoding as CNF and run the lint
  subsystem's SatELite-style simplifier before each solve;
* ``portfolio`` — probe in-process, then race one hard query across a
  process pool of diversified solvers and cube-and-conquer splits,
  first decisive finisher wins (see :mod:`repro.engine.portfolio`).

All backends return :class:`~repro.core.results.VerificationResult`
objects carrying per-query solver statistics and are verdict-equivalent
by construction (property-tested in ``tests/engine``).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Protocol

from ..core.analyzer import ScadaAnalyzer
from ..core.incremental import IncrementalContext
from ..core.problem import ObservabilityProblem
from ..core.reference import ReferenceEvaluator
from ..core.results import ThreatVector, VerificationResult
from ..core.specs import ResiliencySpec
from ..obs.tracer import event as obs_event
from ..sat.limits import Limits, ResourceLimitReached
from ..scada.network import ScadaNetwork
from .cache import EncodingCache, EncodingKey

__all__ = [
    "BACKEND_NAMES",
    "AssumptionBackend",
    "FreshBackend",
    "IncrementalBackend",
    "PortfolioBackend",
    "PreprocessedBackend",
    "VerificationBackend",
    "make_backend",
]


class VerificationBackend(Protocol):
    """What the engine requires of a backend."""

    name: str

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        """Verify one spec; the result carries backend name + stats."""
        ...

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None,
                  limits: Optional[Limits] = None
                  ) -> List[ThreatVector]:
        """All (minimal) threat vectors within the spec's budgets."""
        ...

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query."""
        ...

    def clear_interrupt(self) -> None:
        """Re-arm the backend after an :meth:`interrupt`."""
        ...


class FreshBackend:
    """One fresh solver and full re-encode per query."""

    name = "fresh"
    _preprocess = False

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        # Lint runs once in the engine; backends never re-lint.
        self.analyzer = ScadaAnalyzer(
            network, problem, card_encoding=card_encoding, lint=False,
            preprocess=self._preprocess, reference=reference,
            solver_opts=solver_opts)

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        return self.analyzer.verify(spec, minimize=minimize,
                                    max_conflicts=max_conflicts,
                                    certify=certify, limits=limits)

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None,
                  limits: Optional[Limits] = None
                  ) -> List[ThreatVector]:
        return self.analyzer.enumerate_threat_vectors(
            spec, limit=limit, minimal=minimal,
            max_conflicts=max_conflicts, limits=limits)

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query."""
        self.analyzer.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the backend after an :meth:`interrupt`."""
        self.analyzer.clear_interrupt()


class PreprocessedBackend(FreshBackend):
    """Fresh encoding, simplified by the CNF preprocessor before solving."""

    name = "preprocessed"
    _preprocess = True


class IncrementalBackend:
    """Cached base encodings with per-query push/pop budget scopes."""

    name = "incremental"
    #: How cached contexts bind per-query budgets; the subclass flips it.
    _budget_mode = "scopes"

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None,
                 cache: Optional[EncodingCache] = None,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.problem = problem
        self.card_encoding = card_encoding
        self.reference = reference or ReferenceEvaluator(network, problem)
        self.cache = cache if cache is not None else EncodingCache()
        # Cached contexts are keyed by encoding shape, not solver
        # options; an engine carries one solver_opts value for life (and
        # shares it across with_backend siblings), so contexts built
        # under one opts value are never mixed with another's.
        self.solver_opts = dict(solver_opts or {})
        self._network_fp = network.fingerprint()
        self._problem_fp = problem.fingerprint()
        self._certify_fallback: Optional[FreshBackend] = None
        # Every context this backend has handed out, weakly held: an
        # interrupt must reach whichever context is solving right now
        # without pinning contexts the cache has already evicted.
        self._live_contexts: "weakref.WeakSet[IncrementalContext]" = \
            weakref.WeakSet()
        self._interrupt_requested = False

    def _context(
        self, spec: ResiliencySpec,
    ) -> "tuple[EncodingKey, IncrementalContext]":
        # In assumption mode r is query-selected, so every r shares one
        # context; the key uses a -1 sentinel in its place.
        key = EncodingKey(
            network_fingerprint=self._network_fp,
            problem_fingerprint=self._problem_fp,
            prop=spec.property,
            r=spec.r if self._budget_mode == "scopes" else -1,
            model_links=spec.link_k is not None,
            card_encoding=self.card_encoding,
        )
        def build() -> IncrementalContext:
            ctx = IncrementalContext(
                self.network, self.problem, prop=spec.property, r=spec.r,
                model_links=spec.link_k is not None,
                card_encoding=self.card_encoding,
                reference=self.reference,
                budget_mode=self._budget_mode,
                solver_opts=self.solver_opts)
            obs_event("backend.context_created", backend=self.name,
                      prop=spec.property.value,
                      base_encode_time=ctx.base_encode_time)
            return ctx

        ctx = self.cache.get_or_create(key, build)
        self._live_contexts.add(ctx)
        if self._interrupt_requested:
            ctx.interrupt()
        return key, ctx

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query.

        Reaches every live context's shared solver (the one actually
        searching answers UNKNOWN with limit reason ``interrupt`` and
        unwinds cleanly — cached base encodings stay warm) and stays
        armed for contexts built after the call.  Sticky until
        :meth:`clear_interrupt`.
        """
        self._interrupt_requested = True
        for ctx in list(self._live_contexts):
            ctx.interrupt()
        if self._certify_fallback is not None:
            self._certify_fallback.interrupt()

    def clear_interrupt(self) -> None:
        """Re-arm the backend after an :meth:`interrupt`."""
        self._interrupt_requested = False
        for ctx in list(self._live_contexts):
            ctx.clear_interrupt()
        if self._certify_fallback is not None:
            self._certify_fallback.clear_interrupt()

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        if certify:
            # RUP proof logging needs an assumption-free solver; run
            # certified queries through a fresh analyzer instead.
            if self._certify_fallback is None:
                self._certify_fallback = FreshBackend(
                    self.network, self.problem,
                    card_encoding=self.card_encoding,
                    reference=self.reference,
                    solver_opts=self.solver_opts)
            obs_event("backend.certify_fallback", backend=self.name)
            result = self._certify_fallback.verify(
                spec, minimize=minimize, max_conflicts=max_conflicts,
                certify=True, limits=limits)
            result.details["certify_fallback"] = "fresh"
            return result
        key, ctx = self._context(spec)
        try:
            return ctx.verify(spec, minimize=minimize,
                              max_conflicts=max_conflicts, limits=limits)
        except ResourceLimitReached:
            # A clean limit outcome unwinds the query scope; the cached
            # base encoding is still consistent and worth keeping.
            raise
        except Exception:
            # Anything else may have left the shared solver mid-scope
            # with partially-asserted budgets: evict the poisoned
            # context so the next query re-encodes from scratch instead
            # of inheriting corrupt state.
            self.cache.invalidate(key)
            raise

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None,
                  limits: Optional[Limits] = None
                  ) -> List[ThreatVector]:
        key, ctx = self._context(spec)
        try:
            return ctx.enumerate(
                spec, limit=limit, minimal=minimal,
                max_conflicts=max_conflicts, limits=limits)
        except ResourceLimitReached:
            raise
        except Exception:
            self.cache.invalidate(key)
            raise


class AssumptionBackend(IncrementalBackend):
    """Cached base encodings with assumption-selected budgets.

    Same caching structure as :class:`IncrementalBackend`, but each
    query's budgets are activated by assumption literals over
    persistent, extendable cardinality counters
    (:class:`~repro.smt.BudgetHandle`) instead of re-encoded inside a
    push/pop scope.  Learned clauses are never discarded between
    budgets, and bad-data contexts serve every ``r``.
    """

    name = "assumption"
    _budget_mode = "assumptions"


# Imported late: repro.engine.portfolio imports this module's siblings.
from .portfolio import PortfolioBackend  # noqa: E402

BACKEND_NAMES = ("fresh", "incremental", "assumption", "preprocessed",
                 "portfolio")

_CLASSES = {
    "fresh": FreshBackend,
    "incremental": IncrementalBackend,
    "assumption": AssumptionBackend,
    "preprocessed": PreprocessedBackend,
    "portfolio": PortfolioBackend,
}


def make_backend(name: str, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None,
                 cache: Optional[EncodingCache] = None,
                 jobs: int = 0,
                 solver_opts: Optional[Dict[str, object]] = None
                 ) -> VerificationBackend:
    """Instantiate a backend by name (``fresh`` | ``incremental`` |
    ``assumption`` | ``preprocessed`` | ``portfolio``).

    *jobs* sizes the portfolio's process pool (``0`` → usable CPU
    count; other backends ignore it).  *solver_opts* is forwarded to
    every SAT substrate the backend builds — e.g. ``{"inprocess":
    False}`` to disable inter-restart clause-database inprocessing.
    """
    try:
        cls = _CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}") from None
    if cls is PortfolioBackend:
        return cls(network, problem, card_encoding=card_encoding,
                   reference=reference, jobs=jobs,
                   solver_opts=solver_opts)
    if issubclass(cls, IncrementalBackend):
        return cls(network, problem, card_encoding=card_encoding,
                   reference=reference, cache=cache,
                   solver_opts=solver_opts)
    return cls(network, problem, card_encoding=card_encoding,
               reference=reference, solver_opts=solver_opts)
