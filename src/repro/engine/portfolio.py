"""In-query parallel portfolio solving.

Every other backend answers a query with one solver process; the
``portfolio`` backend splits one *hard* query across a process pool and
takes the first decisive answer:

* a cheap conflict- and propagation-limited **probe** runs first
  in-process — easy queries never pay for the pool, and the probe's
  VSIDS activities pick the cube-and-conquer split variables for the
  hard ones (the propagation cap matters: SCADA encodings are
  propagation-bound, so a conflict cap alone would never fan out);
* **full workers** each attack the whole query with a diversified
  solver (seed-perturbed activities, different phase initialization,
  restart cadence, and activity decay);
* **cube workers** partition the search space on the probe's
  top-activity variables: one worker per sign combination, so SAT from
  any cube is SAT, and UNSAT from *every* cube is UNSAT.

The first decisive finisher wins; the losers are cancelled through the
solver's cooperative ``interrupt_check`` polling a shared
:class:`multiprocessing.Event` (the cross-process face of the engine's
``interrupt()``), and the observed cancel latency is exported as a
metric.  Caller :class:`~repro.sat.Limits` budgets are apportioned:
wall-clock and memory pass through (workers run concurrently), while
conflict and propagation budgets — minus what the probe already spent
— are divided across workers so the portfolio never spends more total
search than the caller allowed.

Verdict soundness: a worker solving under cube assumptions reports
"resilient" *for its cube only*; the aggregation here promotes that to
a real RESILIENT verdict only when every cube of the covering family
returned UNSAT.  ``certify=True`` needs an assumption-free refutation,
so certified queries fall back to a fresh single-process solve (same
policy as the incremental backend, noted in
``details["certify_fallback"]``).

Workers are ordinary processes: they receive the (picklable) network,
problem, and spec, rebuild the encoding locally — Tseitin emission is
deterministic, so the probe's variable indices stay meaningful — and
ship a :class:`~repro.core.results.VerificationResult` home along with
their telemetry export for the parent tracer to absorb.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.analyzer import ScadaAnalyzer
from ..core.problem import ObservabilityProblem
from ..core.reference import ReferenceEvaluator
from ..core.results import Status, ThreatVector, VerificationResult
from ..core.specs import ResiliencySpec
from ..obs.tracer import Tracer, activate, count as obs_count
from ..obs.tracer import current_tracer, event as obs_event
from ..obs.tracer import observe as obs_observe, span as obs_span
from ..sat.limits import LimitReason, Limits
from ..smt.solver import Result
from ..scada.network import ScadaNetwork
from .sweep import resolve_jobs

__all__ = ["PortfolioBackend"]

#: Conflicts granted to the in-process probe before fanning out.
PROBE_CONFLICTS = 1500

#: Propagation budget for the probe.  SCADA encodings are propagation
#: bound — hard queries can burn hundreds of thousands of propagations
#: while staying under a hundred conflicts — so a conflict cap alone
#: would let the probe swallow exactly the queries the pool is for.
PROBE_PROPAGATIONS = 100_000

#: Diversification table for full workers, cycled by worker index.
#: ``seed`` is added per-worker; the probe itself runs undiversified,
#: so even worker 0 explores a (slightly) different order.  Random
#: phase initialisation is the highest-variance diversifier on the
#: witness-search (SAT) side, so it sits early enough for small pools.
_DIVERSIFY: Tuple[Dict[str, object], ...] = (
    {},
    {"phase_init": "random", "var_decay": 0.85},
    {"phase_init": True, "restart_base": 200},
    {"restart_base": 50},
    {"phase_init": "random", "restart_base": 400, "var_decay": 0.99},
    {"phase_init": True, "var_decay": 0.90},
)


def _probe_budget_hit(reason: LimitReason,
                      limits: Optional[Limits]) -> bool:
    """True when the probe stopped on *its own* cap — the caller still
    has budget left, so fanning out is worthwhile.  False when the
    caller's own (tighter) budget expired: time, memory, an interrupt,
    or a conflict/propagation ceiling at or below the probe's."""
    if reason is LimitReason.CONFLICTS:
        cap = limits.max_conflicts if limits else None
        return cap is None or cap > PROBE_CONFLICTS
    if reason is LimitReason.PROPAGATIONS:
        cap = limits.max_propagations if limits else None
        return cap is None or cap > PROBE_PROPAGATIONS
    return False


@dataclass(frozen=True)
class _WorkerSpec:
    """Picklable description of one portfolio worker."""

    index: int
    kind: str                    # "full" | "cube"
    solver_opts: Dict[str, object] = field(default_factory=dict)
    cube: Tuple[int, ...] = ()   # DIMACS literals, cube workers

    @property
    def label(self) -> str:
        if self.kind == "cube":
            return f"cube-{self.index}"
        return f"full-{self.index}"


@dataclass
class _WorkerReport:
    """What a worker ships home: its verdict plus telemetry."""

    index: int
    kind: str
    label: str
    result: VerificationResult
    elapsed: float
    pid: int
    export: Dict[str, Any] = field(default_factory=dict)


# -- worker-process side -----------------------------------------------

_CANCEL_EVENT = None


def _init_worker(event) -> None:
    """Pool initializer: stash the shared cancel event."""
    global _CANCEL_EVENT
    _CANCEL_EVENT = event


def _cancel_requested() -> bool:
    """The solver-facing ``interrupt_check``: poll the shared event."""
    event = _CANCEL_EVENT
    return event is not None and event.is_set()


def _run_worker(payload: Tuple) -> _WorkerReport:
    """Solve one diversified attack on the query (module-level so the
    pool can pickle it).  Never raises: a failure becomes an UNKNOWN
    result so one broken worker cannot poison the aggregation."""
    (worker, network, problem, spec, minimize, limits,
     card_encoding) = payload
    opts = dict(worker.solver_opts)
    if worker.cube:
        opts["cube"] = list(worker.cube)
    opts["interrupt_check"] = _cancel_requested
    tracer = Tracer()
    started = time.perf_counter()
    try:
        with activate(tracer):
            analyzer = ScadaAnalyzer(
                network, problem, card_encoding=card_encoding,
                lint=False, solver_opts=opts)
            result = analyzer.verify(spec, minimize=minimize,
                                     limits=limits)
    except Exception as exc:  # pragma: no cover — defensive boundary
        result = VerificationResult(
            spec=spec, status=Status.UNKNOWN, backend="portfolio",
            details={"worker_error": f"{type(exc).__name__}: {exc}"})
    return _WorkerReport(
        index=worker.index, kind=worker.kind, label=worker.label,
        result=result, elapsed=time.perf_counter() - started,
        pid=os.getpid(), export=tracer.export())


# -- parent side -------------------------------------------------------

def _split_workers(jobs: int) -> Tuple[int, int]:
    """``(full, cube_bits)`` worker split for a *jobs*-wide pool.

    Cube workers only help in powers of two (the sign combinations must
    cover the whole space), so small pools stay all-full: below four
    workers a cube pair would cost half the diversification for one
    binary split.
    """
    if jobs >= 8:
        return jobs - 4, 2
    if jobs >= 4:
        return jobs - 2, 1
    return jobs, 0


def _apportion(limits: Optional[Limits], workers: int, elapsed: float,
               spent_conflicts: int = 0,
               spent_propagations: int = 0) -> Optional[Limits]:
    """Per-worker share of the caller's *remaining* budget.

    Wall-clock (minus what the probe already spent) and memory pass
    through — workers run concurrently, each under the full clock.
    Conflict and propagation budgets first deduct the search the probe
    already consumed, then divide across workers, so the portfolio's
    *total* search effort stays within the caller's grant.
    """
    if limits is None or limits.unbounded:
        return limits
    max_time = limits.max_time
    if max_time is not None:
        max_time = max(0.05, max_time - elapsed)
    div = max(1, workers)
    conflicts = limits.max_conflicts
    if conflicts is not None:
        remaining = max(1, conflicts - max(0, spent_conflicts))
        conflicts = max(1, math.ceil(remaining / div))
    props = limits.max_propagations
    if props is not None:
        remaining = max(1, props - max(0, spent_propagations))
        props = max(1, math.ceil(remaining / div))
    return Limits(max_time=max_time, max_conflicts=conflicts,
                  max_propagations=props,
                  max_memory_mb=limits.max_memory_mb)


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """Pick a start method for the worker pool, or ``None`` for none.

    ``fork`` is the cheap default: workers inherit the loaded modules
    and start solving immediately.  Forking a *multi-threaded* parent
    is hazardous, though — the service solves jobs on HTTP worker
    threads, and a child forked while another thread holds a lock
    inherits that lock forever-held — so threaded parents prefer start
    methods that boot workers from a clean interpreter (``forkserver``
    exec's its server before any pool exists; ``spawn`` exec's every
    worker).  Workers are module-level functions and every payload
    already travels by pickle, so all start methods are equivalent up
    to startup cost.  Returns ``None`` when the platform supports no
    candidate, and the caller degrades to an inline solve.
    """
    methods = ("fork", "spawn")
    if threading.active_count() > 1:
        methods = ("forkserver", "spawn", "fork")
    for method in methods:
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover — platform-dependent
            continue
    return None  # pragma: no cover — no usable start method


class PortfolioBackend:
    """First-finisher-wins parallel portfolio over fresh encodings."""

    name = "portfolio"

    def __init__(self, network: ScadaNetwork,
                 problem: ObservabilityProblem,
                 card_encoding: str = "totalizer",
                 reference: Optional[ReferenceEvaluator] = None,
                 jobs: int = 0,
                 solver_opts: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.problem = problem
        self.card_encoding = card_encoding
        self.reference = reference or ReferenceEvaluator(network, problem)
        #: Pool width; ``0`` sizes to the usable CPU count.
        self.jobs = resolve_jobs(jobs or None)
        self.solver_opts = dict(solver_opts or {})
        # Probe / fallback analyzer: easy queries, enumeration, and
        # certified queries all run here, in-process.
        self.analyzer = ScadaAnalyzer(
            network, problem, card_encoding=card_encoding, lint=False,
            reference=self.reference, solver_opts=self.solver_opts)
        self._interrupt_requested = False
        self._live_event = None

    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the running (or next) query.

        Reaches the in-process probe through the analyzer and every
        pooled worker through the shared cancel event — the same
        mechanism that cancels portfolio losers.  Sticky until
        :meth:`clear_interrupt`.
        """
        self._interrupt_requested = True
        self.analyzer.interrupt()
        event = self._live_event
        if event is not None:
            event.set()

    def clear_interrupt(self) -> None:
        """Re-arm the backend after an :meth:`interrupt`."""
        self._interrupt_requested = False
        self.analyzer.clear_interrupt()

    # ------------------------------------------------------------------

    def _worker_specs(self, cube_vars: List[int]) -> List[_WorkerSpec]:
        full, cube_bits = _split_workers(self.jobs)
        cube_bits = min(cube_bits, len(cube_vars))
        specs: List[_WorkerSpec] = []
        for i in range(full):
            opts = dict(self.solver_opts)
            opts.update(_DIVERSIFY[i % len(_DIVERSIFY)])
            opts["seed"] = i + 1
            specs.append(_WorkerSpec(index=len(specs), kind="full",
                                     solver_opts=opts))
        # One cube worker per sign combination of the split variables:
        # combination ``bits`` asserts variable j positively when bit j
        # is clear and negatively when set.  The literals are DIMACS
        # (signed variable indices) — that is what the smt facade's
        # ``cube`` option appends to the solve's assumptions — so the
        # 2^cube_bits cubes form a covering family of the search space.
        for bits in range(1 << cube_bits):
            cube = tuple(
                -cube_vars[j] if (bits >> j) & 1 else cube_vars[j]
                for j in range(cube_bits))
            opts = dict(self.solver_opts)
            opts["seed"] = len(specs) + 1
            specs.append(_WorkerSpec(index=len(specs), kind="cube",
                                     solver_opts=opts, cube=cube))
        return specs

    def _probe(self, spec: ResiliencySpec, minimize: bool,
               limits: Optional[Limits]
               ) -> Tuple[Optional[VerificationResult], List[int], float,
                          Dict[str, float]]:
        """Conflict-limited in-process attempt; decides easy queries.

        Returns ``(result, cube_vars, encode_time, probe_stats)`` —
        *result* is the final answer when the probe decided (or the
        global budget already expired), else ``None`` with the
        harvested top-activity split variables.  *probe_stats* is the
        probe's own search-counter deltas, deducted from the caller's
        budget before the fan-out apportions it.
        """
        probe_limits = (limits or Limits()).merged(
            Limits(max_conflicts=PROBE_CONFLICTS,
                   max_propagations=PROBE_PROPAGATIONS))
        solver, encoder, encode_time = self.analyzer._build(spec)
        with obs_span("portfolio.probe", spec=spec.describe()) as sp:
            outcome = solver.check(limits=probe_limits)
            sp.attrs["result"] = outcome.value
        probe_stats = dict(solver.last_check_stats)
        result = VerificationResult(
            spec=spec, status=Status.UNKNOWN, encode_time=encode_time,
            solve_time=solver.statistics.check_time,
            num_vars=solver.num_vars, num_clauses=solver.num_clauses,
            backend=self.name, stats=dict(probe_stats))
        if outcome is Result.UNSAT:
            result.status = Status.RESILIENT
            return result, [], encode_time, probe_stats
        if outcome is Result.SAT:
            result.status = Status.THREAT_FOUND
            started = time.perf_counter()
            result.threat = self.analyzer._extract_threat(
                solver, encoder, spec, minimize)
            result.extract_time = time.perf_counter() - started
            return result, [], encode_time, probe_stats
        reason = solver.last_limit_reason
        if reason is not None and not _probe_budget_hit(reason, limits):
            # Not our probe cap: the caller's own budget (time, memory,
            # conflicts, propagations, an interrupt) expired, so
            # fanning out would only overspend it.
            result.limit_reason = reason.value
            return result, [], encode_time, probe_stats
        return None, solver.top_activity_vars(8), encode_time, probe_stats

    def verify(self, spec: ResiliencySpec, minimize: bool = True,
               max_conflicts: Optional[int] = None,
               certify: bool = False,
               limits: Optional[Limits] = None) -> VerificationResult:
        if certify:
            # A RUP refutation must be assumption-free and single-
            # process; certified queries take the fresh path whole.
            obs_event("backend.certify_fallback", backend=self.name)
            result = self.analyzer.verify(
                spec, minimize=minimize, max_conflicts=max_conflicts,
                certify=True, limits=limits)
            result.backend = self.name
            result.details["certify_fallback"] = "fresh"
            return result
        effective = limits if limits is not None else Limits()
        if max_conflicts is not None:
            effective = effective.merged(
                Limits(max_conflicts=max_conflicts))
        if self.jobs <= 1:
            # No pool to fan out to: solve inline on the analyzer.
            return self._solve_inline(spec, minimize, effective)
        started = time.perf_counter()
        probe_result, cube_vars, encode_time, probe_stats = self._probe(
            spec, minimize, effective)
        if probe_result is not None:
            obs_count("portfolio.probe_wins")
            probe_result.details["portfolio"] = {"mode": "probe",
                                                 "workers": 0}
            return probe_result
        result = self._fan_out(spec, minimize, effective, cube_vars,
                               time.perf_counter() - started, probe_stats)
        result.encode_time = encode_time
        return result

    def _solve_inline(self, spec: ResiliencySpec, minimize: bool,
                      limits: Optional[Limits]) -> VerificationResult:
        """Single-process fallback: no pool width, no usable start
        method, or the pool failed to come up."""
        result = self.analyzer.verify(spec, minimize=minimize,
                                      limits=limits)
        result.backend = self.name
        result.details["portfolio"] = {"mode": "inline", "workers": 0}
        return result

    def _fan_out(self, spec: ResiliencySpec, minimize: bool,
                 limits: Limits, cube_vars: List[int],
                 probe_elapsed: float,
                 probe_stats: Dict[str, float]) -> VerificationResult:
        specs = self._worker_specs(cube_vars)
        worker_limits = _apportion(
            limits if not limits.unbounded else None,
            len(specs), probe_elapsed,
            spent_conflicts=int(probe_stats.get("conflicts", 0)),
            spent_propagations=int(probe_stats.get("propagations", 0)))
        try:
            ctx = _pool_context()
            event = ctx.Event() if ctx is not None else None
        except OSError:  # pragma: no cover — no semaphore support
            event = None
        if event is None:  # pragma: no cover — no multiprocessing here
            return self._solve_inline(spec, minimize, limits or None)
        self._live_event = event
        if self._interrupt_requested:
            event.set()
        payloads = [
            (w, self.network, self.problem, spec, minimize,
             worker_limits, self.card_encoding)
            for w in specs
        ]
        started = time.perf_counter()
        obs_count("portfolio.queries")
        with obs_span("portfolio.fan_out", workers=len(specs),
                      cubes=sum(1 for w in specs if w.kind == "cube"),
                      spec=spec.describe()) as sp:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=len(specs), mp_context=ctx,
                    initializer=_init_worker, initargs=(event,))
            except (OSError, ValueError):  # pragma: no cover — no procs
                self._live_event = None
                return self._solve_inline(spec, minimize, limits or None)
            try:
                reports = self._drain(pool, payloads, specs, sp)
            finally:
                self._live_event = None
                pool.shutdown(wait=False, cancel_futures=True)
        result = self._aggregate(spec, specs, reports)
        result.solve_time = time.perf_counter() - started
        return result

    def _drain(self, pool: ProcessPoolExecutor, payloads: List[Tuple],
               specs: List[_WorkerSpec], sp) -> List[_WorkerReport]:
        """Collect worker reports, cancelling losers on first decision.

        Returns every report received up to (and including) the moment
        the race was decided and the stragglers unwound; the shared
        event is the one cancellation channel, and the time between
        setting it and the last straggler's return is the cancel
        latency exported to the metrics registry.
        """
        event = self._live_event
        futures = {pool.submit(_run_worker, payload): payload[0]
                   for payload in payloads}
        pending = set(futures)
        reports: List[_WorkerReport] = []
        cube_total = sum(1 for w in specs if w.kind == "cube")
        cube_unsat = 0
        decided = False
        while pending and not decided:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                try:
                    report = fut.result()
                except BrokenProcessPool:  # pragma: no cover — crash
                    pending = set()
                    break
                except Exception:  # pragma: no cover — crash
                    continue
                reports.append(report)
                self._absorb(report)
                status = report.result.status
                if status is Status.THREAT_FOUND:
                    decided = True
                elif status is Status.RESILIENT:
                    if report.kind == "full":
                        decided = True
                    else:
                        cube_unsat += 1
                        if cube_total and cube_unsat == cube_total:
                            decided = True
        if decided and pending:
            cancel_started = time.perf_counter()
            event.set()
            # Losers poll the event at the solver's 128-iteration
            # cadence; the straggler tail is the cancel latency.
            for fut in pending:
                try:
                    reports.append(fut.result())
                    self._absorb(reports[-1])
                except Exception:  # pragma: no cover — racing crash
                    pass
            latency_ms = (time.perf_counter() - cancel_started) * 1e3
            obs_observe("portfolio.cancel_latency_ms", latency_ms)
            sp.attrs["cancel_latency_ms"] = round(latency_ms, 3)
        return reports

    @staticmethod
    def _absorb(report: _WorkerReport) -> None:
        tracer = current_tracer()
        if tracer is not None and report.export:
            tracer.absorb(report.export, worker=report.pid)

    def _aggregate(self, spec: ResiliencySpec, specs: List[_WorkerSpec],
                   reports: List[_WorkerReport]) -> VerificationResult:
        """Normalize the race's outcome to one VerificationResult."""
        cube_total = sum(1 for w in specs if w.kind == "cube")
        sat_winner: Optional[_WorkerReport] = None
        unsat_winner: Optional[_WorkerReport] = None
        cube_unsat: List[_WorkerReport] = []
        for report in sorted(reports, key=lambda r: r.elapsed):
            status = report.result.status
            if status is Status.THREAT_FOUND and sat_winner is None:
                sat_winner = report
            elif status is Status.RESILIENT:
                if report.kind == "full" and unsat_winner is None:
                    unsat_winner = report
                elif report.kind == "cube":
                    cube_unsat.append(report)
        winner: Optional[_WorkerReport] = None
        win_kind: Optional[str] = None
        if sat_winner is not None:
            winner, win_kind = sat_winner, sat_winner.kind
        elif unsat_winner is not None:
            winner, win_kind = unsat_winner, "full"
        elif cube_total and len(cube_unsat) == cube_total:
            # Every cube of the covering family is UNSAT: the slowest
            # cube completed the refutation, so it is the "winner".
            winner = max(cube_unsat, key=lambda r: r.elapsed)
            win_kind = "cube-family"
        detail: Dict[str, object] = {
            "workers": len(specs),
            "cubes": cube_total,
            "reports": [
                {"worker": r.label, "status": r.result.status.value,
                 "elapsed": round(r.elapsed, 4),
                 "limit_reason": r.result.limit_reason}
                for r in sorted(reports, key=lambda r: r.index)
            ],
        }
        if winner is not None:
            result = winner.result
            result.backend = self.name
            detail["winner"] = winner.label
            detail["win_kind"] = win_kind
            result.details["portfolio"] = detail
            obs_count("portfolio.worker_wins")
            obs_event("portfolio.win", winner=winner.label,
                      status=result.status.value,
                      workers=len(specs), cubes=cube_total)
            return result
        # Nobody decided: report UNKNOWN with the most informative
        # expired budget (prefer a real resource over an interrupt).
        reasons = [r.result.limit_reason for r in reports
                   if r.result.limit_reason is not None]
        reason: Optional[str] = None
        if self._interrupt_requested:
            reason = LimitReason.INTERRUPT.value
        else:
            for candidate in reasons:
                if candidate != LimitReason.INTERRUPT.value:
                    reason = candidate
                    break
            if reason is None and reasons:
                reason = reasons[0]
        result = VerificationResult(
            spec=spec, status=Status.UNKNOWN, backend=self.name,
            limit_reason=reason)
        result.details["portfolio"] = detail
        if reports:
            # Charge the query with the pool's *total* search effort:
            # counters sum across workers; tier sizes are per-database
            # gauges that don't add, so keep the largest snapshot.
            totals: Dict[str, float] = {}
            for report in reports:
                for key, value in report.result.stats.items():
                    if key.startswith("tier_"):
                        totals[key] = max(totals.get(key, 0.0),
                                          float(value))
                    else:
                        totals[key] = totals.get(key, 0.0) + float(value)
            result.stats = totals
        return result

    # ------------------------------------------------------------------

    def enumerate(self, spec: ResiliencySpec,
                  limit: Optional[int] = None,
                  minimal: bool = True,
                  max_conflicts: Optional[int] = None,
                  limits: Optional[Limits] = None
                  ) -> List[ThreatVector]:
        """Enumeration is inherently sequential (each model blocks the
        next query), so it runs on the in-process analyzer."""
        return self.analyzer.enumerate_threat_vectors(
            spec, limit=limit, minimal=minimal,
            max_conflicts=max_conflicts, limits=limits)
