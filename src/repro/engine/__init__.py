"""Unified verification engine: pluggable backends, encoding cache,
parallel sweeps.

Public entry point: :class:`VerificationEngine` — the facade every
consumer (CLI, sweep drivers, audit report, hardening) verifies
through — plus :class:`SweepExecutor` for fanning independent instances
across a process pool.  See ``docs/ENGINE.md`` for the architecture.
"""

from .backends import (
    BACKEND_NAMES,
    AssumptionBackend,
    FreshBackend,
    IncrementalBackend,
    PortfolioBackend,
    PreprocessedBackend,
    VerificationBackend,
    make_backend,
)
from .cache import EncodingCache, EncodingKey
from .engine import VerificationEngine
from .sweep import SweepExecutor, SweepTaskError, resolve_jobs

__all__ = [
    "BACKEND_NAMES",
    "AssumptionBackend",
    "EncodingCache",
    "EncodingKey",
    "FreshBackend",
    "IncrementalBackend",
    "PortfolioBackend",
    "PreprocessedBackend",
    "SweepExecutor",
    "SweepTaskError",
    "VerificationBackend",
    "VerificationEngine",
    "make_backend",
    "resolve_jobs",
]
