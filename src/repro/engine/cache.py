"""The engine's encoding cache.

Budget sweeps ask many queries whose encodings differ only in the
cardinality constraint.  The cache maps an :class:`EncodingKey` —
(network fingerprint, problem fingerprint, property, r, link modeling,
cardinality encoding) — to a live
:class:`~repro.core.incremental.IncrementalContext` holding the
budget-independent encoding, so budget-only queries never re-encode the
delivery model.  Entries own a full solver each, so the cache is a small
LRU rather than unbounded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, NamedTuple, Optional

from ..core.incremental import IncrementalContext
from ..core.specs import Property
from ..obs.tracer import count as obs_count

__all__ = ["EncodingKey", "EncodingCache"]


class EncodingKey(NamedTuple):
    """What uniquely determines a budget-independent base encoding.

    The assumption backend stores ``-1`` in the ``r`` slot: its
    contexts gate the bad-data redundancy parameter per query with an
    assumption literal, so one encoding serves every ``r`` and the key
    must not split on it.
    """

    network_fingerprint: str
    problem_fingerprint: str
    prop: Property
    r: int
    model_links: bool
    card_encoding: str


class EncodingCache:
    """LRU cache of :class:`IncrementalContext` base encodings.

    All public operations are atomic under one re-entrant lock: the
    service layer shares a cache between its request threads, and an
    unlocked ``get_or_create`` racing ``invalidate_config`` is a
    check-then-act bug — the invalidation can run *between* a miss and
    its ``put``, silently resurrecting a context for a configuration
    the operator just declared stale.  ``get_or_create`` therefore
    holds the lock across the factory call too: an invalidation issued
    while an encode is in flight serializes after it and still wins.
    (Contexts are not safe for concurrent *use* anyway — each owns a
    solver — so serializing creation costs the service nothing.)
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[EncodingKey, IncrementalContext]" = \
            OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> "list[EncodingKey]":
        """The cached keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: EncodingKey) -> Optional[IncrementalContext]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs_count("cache.hits")
            else:
                self.misses += 1
                obs_count("cache.misses")
            return entry

    def put(self, key: EncodingKey, entry: IncrementalContext) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs_count("cache.evictions")

    def get_or_create(
        self, key: EncodingKey,
        factory: Callable[[], IncrementalContext],
    ) -> IncrementalContext:
        with self._lock:
            entry = self.get(key)
            if entry is None:
                entry = factory()
                self.put(key, entry)
            return entry

    def invalidate(self, key: EncodingKey) -> bool:
        """Drop one entry (if present); True when something was removed.

        Callers use this to evict a *poisoned* context — one whose
        shared solver may hold partially-asserted state after a backend
        exception escaped mid-query.  A clean resource-limit outcome
        (UNKNOWN verdict, :exc:`~repro.sat.ResourceLimitReached`) does
        not poison a context and must not evict it: the solver unwinds
        its scopes on the way out and the cached base encoding — often
        seconds of encoding work — stays reusable.
        """
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_config(self, network_fingerprint: str,
                          problem_fingerprint: str) -> int:
        """Drop every entry encoding one configuration.

        The service's session layer calls this when a session is
        explicitly invalidated (the operator knows the underlying grid
        changed): all warm contexts keyed on the configuration's
        fingerprints are released at once, whatever their property,
        ``r``, or cardinality encoding.  Returns the number of entries
        dropped.
        """
        with self._lock:
            doomed = [key for key in self._entries
                      if key.network_fingerprint == network_fingerprint
                      and key.problem_fingerprint == problem_fingerprint]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (f"EncodingCache(entries={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
