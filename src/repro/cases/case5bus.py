"""The paper's 5-bus case study (§IV, Table II, Figs. 3-4).

The case is a 5-bus subsystem of the IEEE 14-bus system with 14
measurements, 8 IEDs (ids 1-8), 4 RTUs (ids 9-12), one MTU (id 13) and
one router (id 14).

The published Table II is partially corrupted in the available scan, so
the inputs here are a *calibrated reconstruction*:

* the Jacobian uses the IEEE 14-bus branch susceptances the readable
  matrix fragments show (b₁₂ = 16.90, b₁₅ = 4.48, b₂₃ = 5.05,
  b₂₄ = 5.67, b₂₅ = 5.75, b₃₄ = 5.85, b₄₅ = 23.75), with injection
  diagonals matching the printed values 33.37 / 10.90 / 41.85 / 37.95
  (they include branches leaving the 5-bus cut, as in the paper);
* topology and security profiles follow the readable Table II entries;
* the measurement → IED map was chosen, by exhaustive search over
  assignments consistent with the readable fragments, to reproduce
  **all** results the paper reports for Scenarios 1 and 2:

  - Fig. 3, observability: (1,1)-resilient holds; (2,1) is violated with
    {IED 2, IED 7, RTU 11} among exactly 9 minimal threat vectors;
    tolerates 3 but not 4 IED-only failures;
  - Fig. 4, observability: RTU 12 alone is a threat ({IED 4, RTU 12} is
    the paper's reported sat model); maximally (3,0)-resilient;
  - Fig. 3, secured observability: (1,0) and (0,1) hold; (1,1) is
    violated with {IED 3, RTU 11} among exactly 5 minimal vectors;
  - Fig. 4, secured observability: exactly one single-RTU threat
    vector, {RTU 12}.

The tests in ``tests/cases`` assert each of these facts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.analyzer import ScadaAnalyzer
from ..core.problem import ObservabilityProblem
from ..scada.devices import CryptoProfile, Device, DeviceType
from ..scada.network import ScadaNetwork
from ..scada.topology import Link

__all__ = [
    "NUM_STATES", "JACOBIAN_ROWS", "MEASUREMENT_MAP", "SECURITY_PROFILES",
    "fig3_network", "fig4_network", "case_problem", "case_analyzer",
]

NUM_STATES = 5

# Branch susceptances of the 5-bus cut of the IEEE 14-bus system.
_B12, _B15, _B23 = 16.90, 4.48, 5.05
_B24, _B25, _B34, _B45 = 5.67, 5.75, 5.85, 23.75
# External contributions to the injection diagonals (branches leaving
# the 5-bus cut): bus 4 also feeds buses 7 and 9, bus 5 feeds bus 6.
_EXT4 = 4.78 + 1.80
_EXT5 = 3.97

#: Jacobian rows (measurement index → {bus: coefficient}).  Measurements
#: 1-9 are line flows (2 and 8 are the backward readings of lines 1-2
#: and 4-5), measurements 10-14 are bus injections.
JACOBIAN_ROWS: Dict[int, Dict[int, float]] = {
    1: {1: _B12, 2: -_B12},                      # P 1→2
    2: {1: -_B12, 2: _B12},                      # P 2→1 (same line)
    3: {2: _B23, 3: -_B23},                      # P 2→3
    4: {2: _B24, 4: -_B24},                      # P 2→4
    5: {2: _B25, 5: -_B25},                      # P 2→5
    6: {3: _B34, 4: -_B34},                      # P 3→4
    7: {4: _B45, 5: -_B45},                      # P 4→5
    8: {4: -_B45, 5: _B45},                      # P 5→4 (same line)
    9: {1: _B15, 5: -_B15},                      # P 1→5
    10: {1: _B12 + _B15, 2: -_B12, 5: -_B15},    # injection bus 1
    11: {1: -_B12, 2: _B12 + _B23 + _B24 + _B25,
         3: -_B23, 4: -_B24, 5: -_B25},          # injection bus 2 (33.37)
    12: {2: -_B23, 3: _B23 + _B34, 4: -_B34},    # injection bus 3 (10.90)
    13: {2: -_B24, 3: -_B34,
         4: _B24 + _B34 + _B45 + _EXT4, 5: -_B45},  # injection bus 4 (41.85)
    14: {1: -_B15, 2: -_B25, 4: -_B45,
         5: _B15 + _B25 + _B45 + _EXT5},         # injection bus 5 (37.95)
}

#: IED → measurements (``MsrSet_I``), calibrated as described above.
MEASUREMENT_MAP: Dict[int, List[int]] = {
    1: [1, 9],
    2: [3, 4, 5],
    3: [11],
    4: [12],
    5: [2, 10],
    6: [14],
    7: [6, 7, 13],
    8: [8],
}

IED_IDS = list(range(1, 9))
RTU_IDS = [9, 10, 11, 12]
MTU_ID = 13
ROUTER_ID = 14

#: Security profiles between communicating pairs (Table II).  The
#: (4, 10) pair has no entry — IED 4's data is delivered unprotected —
#: and the (1, 9) and (10, 11) pairs authenticate without integrity.
SECURITY_PROFILES: Dict[Tuple[int, int], str] = {
    (1, 9): "hmac 128",
    (2, 9): "chap 64 sha2 128",
    (3, 9): "chap 64 sha2 128",
    (5, 11): "chap 64 sha2 256",
    (6, 11): "chap 64 sha2 256",
    (7, 12): "chap 64 sha2 128",
    (8, 12): "chap 64 sha2 128",
    (9, 13): "rsa 2048 aes 256",
    (10, 11): "hmac 128",
    (11, 13): "rsa 4096 aes 256",
    (12, 13): "rsa 2048 aes 256",
}

_FIG3_LINKS: List[Tuple[int, int]] = [
    (1, 9), (2, 9), (3, 9), (4, 10), (5, 11), (6, 11), (7, 12), (8, 12),
    (9, 14), (10, 11), (11, 14), (12, 14), (14, 13),
]

# Fig. 4 moves RTU 9's uplink from the router to RTU 12.
_FIG4_LINKS: List[Tuple[int, int]] = [
    pair if pair != (9, 14) else (9, 12) for pair in _FIG3_LINKS
]


def _devices() -> List[Device]:
    devices = [Device(i, DeviceType.IED) for i in IED_IDS]
    devices += [Device(i, DeviceType.RTU) for i in RTU_IDS]
    devices.append(Device(MTU_ID, DeviceType.MTU))
    devices.append(Device(ROUTER_ID, DeviceType.ROUTER))
    return devices


def _security(extra: Dict[Tuple[int, int], str] = {}):
    profiles = dict(SECURITY_PROFILES)
    profiles.update(extra)
    return {pair: CryptoProfile.parse_many(text)
            for pair, text in profiles.items()}


def fig3_network() -> ScadaNetwork:
    """The Fig. 3 topology (RTU 9 uplinks to the control-center router)."""
    links = [Link(index=i, a=a, b=b)
             for i, (a, b) in enumerate(_FIG3_LINKS, start=1)]
    return ScadaNetwork(
        devices=_devices(),
        links=links,
        measurement_map=MEASUREMENT_MAP,
        pair_security=_security(),
        name="case5bus-fig3",
    )


def fig4_network() -> ScadaNetwork:
    """The Fig. 4 topology (RTU 9 uplinks to RTU 12).

    The paper does not print a security profile for the new (9, 12)
    pair; we give it the same control-center-grade profile as the other
    RTU uplinks (``rsa 2048 aes 256``), which is the only reading
    consistent with Scenario 2's "only one threat vector (RTU 12)"
    result.
    """
    links = [Link(index=i, a=a, b=b)
             for i, (a, b) in enumerate(_FIG4_LINKS, start=1)]
    return ScadaNetwork(
        devices=_devices(),
        links=links,
        measurement_map=MEASUREMENT_MAP,
        pair_security=_security({(9, 12): "rsa 2048 aes 256"}),
        name="case5bus-fig4",
    )


def case_problem() -> ObservabilityProblem:
    """The observability problem of Table II's Jacobian.

    Unique-measurement groups are derived with the paper's
    row-comparison rule, which pairs the forward/backward readings of
    lines 1-2 and 4-5.
    """
    indices = sorted(JACOBIAN_ROWS)
    rows = [JACOBIAN_ROWS[z] for z in indices]
    return ObservabilityProblem.from_rows(NUM_STATES, rows, indices)


def case_analyzer(topology: str = "fig3") -> ScadaAnalyzer:
    """A ready-to-use analyzer for either case-study topology."""
    if topology == "fig3":
        network = fig3_network()
    elif topology == "fig4":
        network = fig4_network()
    else:
        raise ValueError("topology must be 'fig3' or 'fig4'")
    return ScadaAnalyzer(network, case_problem())
