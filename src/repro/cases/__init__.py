"""Concrete case studies from the paper."""

from .case5bus import (
    JACOBIAN_ROWS,
    MEASUREMENT_MAP,
    NUM_STATES,
    SECURITY_PROFILES,
    case_analyzer,
    case_problem,
    fig3_network,
    fig4_network,
)

__all__ = [
    "JACOBIAN_ROWS",
    "MEASUREMENT_MAP",
    "NUM_STATES",
    "SECURITY_PROFILES",
    "case_analyzer",
    "case_problem",
    "fig3_network",
    "fig4_network",
]
