"""Reading and writing SCADA Analyzer configuration files.

The format mirrors the paper's Table II input: the Jacobian, the device
inventory, the communication links, the measurement-to-IED map, the
per-pair security profiles, and the resiliency requirement.  It is a
line-oriented format with ``[section]`` headers and ``#`` comments:

.. code-block:: text

    [system]
    states = 5

    [jacobian]
    # one row per measurement: dense coefficients
    16.9 -16.9 0 0 0
    ...

    [devices]
    ied = 1-8
    rtu = 9-12
    mtu = 13
    router = 14

    [links]
    1 9
    9 14
    ...

    [measurements]
    # IED: measurement indices
    1: 1 9
    2: 3 4 5

    [security]
    # device pair: algorithm/key-length list
    1 9: hmac 128
    2 9: chap 64 sha2 128

    [requirements]
    property = secured-observability
    k1 = 1
    k2 = 1
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple, Union

from ..core.problem import ObservabilityProblem
from ..core.specs import Property, ResiliencySpec
from .devices import CryptoProfile, Device, DeviceType
from .network import ScadaNetwork
from .topology import Link

__all__ = ["CaseConfig", "parse_config", "load_config", "dump_config"]


class ConfigError(ValueError):
    """Raised on malformed configuration input."""


@dataclass
class CaseConfig:
    """A parsed configuration: the verification inputs plus the spec."""

    network: ScadaNetwork
    problem: ObservabilityProblem
    spec: Optional[ResiliencySpec] = None


_SECTIONS = ("system", "jacobian", "devices", "links", "measurements",
             "security", "requirements")


def _parse_id_list(text: str) -> List[int]:
    """Parse ``1-8`` / ``9 10 11`` / ``1-3 7`` id lists."""
    out: List[int] = []
    for token in text.replace(",", " ").split():
        if "-" in token and not token.startswith("-"):
            lo, hi = token.split("-", 1)
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(token))
    return out


def parse_config(source: Union[str, TextIO],
                 strict: bool = True) -> CaseConfig:
    """Parse a configuration from a string or file object.

    With ``strict=False`` the network is built leniently: structural
    defects (duplicate devices, dangling references, missing MTU) are
    recorded on the network instead of raising, so the configuration
    linter can report all of them at once.
    """
    if isinstance(source, str):
        source = io.StringIO(source)

    sections: Dict[str, List[Tuple[int, str]]] = {name: []
                                                  for name in _SECTIONS}
    current: Optional[str] = None
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = line[1:-1].strip().lower()
            if current not in sections:
                raise ConfigError(f"line {lineno}: unknown section "
                                  f"[{current}]")
            continue
        if current is None:
            raise ConfigError(f"line {lineno}: content before any section")
        sections[current].append((lineno, line))

    # [system] -----------------------------------------------------------
    num_states = None
    for lineno, line in sections["system"]:
        key, _, value = line.partition("=")
        if key.strip() == "states":
            num_states = int(value)
    if num_states is None:
        raise ConfigError("[system] must define 'states'")

    # [jacobian] ----------------------------------------------------------
    rows: List[Dict[int, float]] = []
    for lineno, line in sections["jacobian"]:
        values = [float(tok) for tok in line.split()]
        if len(values) != num_states:
            raise ConfigError(
                f"line {lineno}: expected {num_states} coefficients, "
                f"got {len(values)}")
        rows.append({bus: coeff for bus, coeff in
                     enumerate(values, start=1) if coeff != 0.0})
    if not rows:
        raise ConfigError("[jacobian] is empty")
    problem = ObservabilityProblem.from_rows(num_states, rows)

    # [devices] -----------------------------------------------------------
    devices: List[Device] = []
    for lineno, line in sections["devices"]:
        kind, _, ids = line.partition("=")
        kind = kind.strip().lower()
        try:
            dtype = DeviceType(kind)
        except ValueError as exc:
            raise ConfigError(f"line {lineno}: unknown device type "
                              f"{kind!r}") from exc
        for device_id in _parse_id_list(ids):
            devices.append(Device(device_id, dtype))
    if not devices:
        raise ConfigError("[devices] is empty")

    # [links] -------------------------------------------------------------
    links: List[Link] = []
    for index, (lineno, line) in enumerate(sections["links"], start=1):
        parts = line.split()
        if len(parts) != 2:
            raise ConfigError(f"line {lineno}: a link is two device ids")
        links.append(Link(index=index, a=int(parts[0]), b=int(parts[1])))

    # [measurements] --------------------------------------------------------
    measurement_map: Dict[int, List[int]] = {}
    for lineno, line in sections["measurements"]:
        ied_text, _, msrs = line.partition(":")
        if not msrs:
            raise ConfigError(f"line {lineno}: expected 'ied: z1 z2 ...'")
        measurement_map[int(ied_text)] = [int(t) for t in msrs.split()]

    # [security] ------------------------------------------------------------
    pair_security: Dict[Tuple[int, int], Tuple[CryptoProfile, ...]] = {}
    for lineno, line in sections["security"]:
        pair_text, _, profiles = line.partition(":")
        parts = pair_text.split()
        if len(parts) != 2 or not profiles.strip():
            raise ConfigError(
                f"line {lineno}: expected 'a b: algo bits ...'")
        pair = (int(parts[0]), int(parts[1]))
        pair_security[pair] = CryptoProfile.parse_many(profiles)

    network = ScadaNetwork(
        devices=devices,
        links=links,
        measurement_map=measurement_map,
        pair_security=pair_security,
        strict=strict,
    )

    # [requirements] ----------------------------------------------------------
    spec = _parse_requirements(sections["requirements"])
    return CaseConfig(network=network, problem=problem, spec=spec)


def _parse_requirements(lines) -> Optional[ResiliencySpec]:
    if not lines:
        return None
    values: Dict[str, str] = {}
    for lineno, line in lines:
        key, sep, value = line.partition("=")
        if not sep:
            raise ConfigError(f"line {lineno}: expected 'key = value'")
        values[key.strip().lower()] = value.strip()
    try:
        prop = Property(values.get("property", "observability"))
    except ValueError as exc:
        raise ConfigError(f"unknown property "
                          f"{values.get('property')!r}") from exc
    r = int(values.get("r", 1))
    if "k" in values:
        budget = {"k": int(values["k"])}
    elif "k1" in values or "k2" in values:
        budget = {"k1": int(values.get("k1", 0)),
                  "k2": int(values.get("k2", 0))}
    else:
        budget = {"k": 1}
    if prop is Property.OBSERVABILITY:
        return ResiliencySpec.observability(**budget)
    if prop is Property.SECURED_OBSERVABILITY:
        return ResiliencySpec.secured_observability(**budget)
    return ResiliencySpec.bad_data_detectability(r=r, **budget)


def load_config(path: str, strict: bool = True) -> CaseConfig:
    """Load a configuration file from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_config(handle, strict=strict)


def dump_config(config: CaseConfig, rows: List[Dict[int, float]] = None,
                stream: Optional[TextIO] = None) -> str:
    """Serialize a :class:`CaseConfig` back to the text format.

    Jacobian rows are reconstructed from the problem's state sets when
    not given explicitly; coefficients are then only 0/1 indicators, so
    pass *rows* to preserve numeric values.
    """
    network = config.network
    problem = config.problem
    out = io.StringIO()
    out.write("[system]\n")
    out.write(f"states = {problem.num_states}\n\n")

    out.write("[jacobian]\n")
    indices = problem.measurement_indices
    for position, z in enumerate(indices):
        if rows is not None:
            row = rows[position]
        else:
            row = {bus: 1.0 for bus in problem.state_sets[z]}
        dense = [row.get(bus, 0.0) for bus in
                 range(1, problem.num_states + 1)]
        out.write(" ".join(f"{v:g}" for v in dense) + "\n")
    out.write("\n[devices]\n")
    by_type: Dict[DeviceType, List[int]] = {}
    for device in network.devices.values():
        by_type.setdefault(device.dtype, []).append(device.device_id)
    for dtype in (DeviceType.IED, DeviceType.RTU, DeviceType.MTU,
                  DeviceType.ROUTER):
        ids = sorted(by_type.get(dtype, []))
        if ids:
            out.write(f"{dtype.value} = " +
                      " ".join(str(i) for i in ids) + "\n")

    out.write("\n[links]\n")
    for link in network.topology.links:
        out.write(f"{link.a} {link.b}\n")

    out.write("\n[measurements]\n")
    for ied in sorted(network.measurement_map):
        msrs = " ".join(str(z) for z in network.measurement_map[ied])
        out.write(f"{ied}: {msrs}\n")

    out.write("\n[security]\n")
    for (a, b), profiles in sorted(network.pair_security.items()):
        text = " ".join(str(p) for p in profiles)
        out.write(f"{a} {b}: {text}\n")

    if config.spec is not None:
        out.write("\n[requirements]\n")
        out.write(f"property = {config.spec.property.value}\n")
        budget = config.spec.budget
        if budget.is_split:
            out.write(f"k1 = {budget.k1}\nk2 = {budget.k2}\n")
        else:
            out.write(f"k = {budget.k}\n")
        if config.spec.property is Property.BAD_DATA_DETECTABILITY:
            out.write(f"r = {config.spec.r}\n")

    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
