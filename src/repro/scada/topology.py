"""SCADA communication topology: links and path enumeration.

The paper abstracts a communication path as a sequence of links between
devices (``P_{I,z}``, the z-th forwarding path from IED *I* to the MTU),
with routers transparent to the security pairing: pairing applies
between consecutive *non-router* devices ("the communication among field
devices in SCADA can be abstracted as point to point", §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Link", "Topology", "logical_hops"]


@dataclass(frozen=True)
class Link:
    """A bidirectional communication link (``NodePair_l``)."""

    index: int
    a: int
    b: int
    up: bool = True
    medium: str = "ethernet"

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"link {self.index} is a self-loop")

    @property
    def node_pair(self) -> Tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))

    def other_end(self, device_id: int) -> int:
        if device_id == self.a:
            return self.b
        if device_id == self.b:
            return self.a
        raise ValueError(f"device {device_id} is not on link {self.index}")


class Topology:
    """The link graph over device ids.

    With ``strict=True`` (the default) structural defects raise
    ``ValueError``.  With ``strict=False`` — the mode the configuration
    linter uses to inspect malformed inputs — defective links are
    recorded on :attr:`dangling_links`, :attr:`parallel_links`, and
    :attr:`duplicate_link_indices` instead, and excluded from the
    adjacency so path enumeration stays well defined.
    """

    def __init__(self, device_ids: Iterable[int],
                 links: Sequence[Link],
                 strict: bool = True) -> None:
        self.device_ids: Set[int] = set(device_ids)
        self.links: List[Link] = list(links)
        self.dangling_links: List[Link] = []
        self.parallel_links: List[Link] = []
        self.duplicate_link_indices: List[Link] = []
        self._validate(strict)
        bad = {id(link) for link in
               self.dangling_links + self.parallel_links
               + self.duplicate_link_indices}
        self._adjacency: Dict[int, List[Link]] = {
            d: [] for d in self.device_ids}
        for link in self.links:
            if id(link) in bad:
                continue
            self._adjacency[link.a].append(link)
            self._adjacency[link.b].append(link)

    def _validate(self, strict: bool) -> None:
        seen_indices: Set[int] = set()
        seen_pairs: Set[Tuple[int, int]] = set()
        for link in self.links:
            if link.index in seen_indices:
                if strict:
                    raise ValueError(f"duplicate link index {link.index}")
                self.duplicate_link_indices.append(link)
            seen_indices.add(link.index)
            dangling = [end for end in (link.a, link.b)
                        if end not in self.device_ids]
            if dangling:
                if strict:
                    raise ValueError(
                        f"link {link.index} references unknown device "
                        f"{dangling[0]}")
                self.dangling_links.append(link)
                continue
            if link.node_pair in seen_pairs:
                if strict:
                    raise ValueError(
                        f"parallel link between {link.node_pair}")
                self.parallel_links.append(link)
            seen_pairs.add(link.node_pair)

    # ------------------------------------------------------------------

    def neighbors(self, device_id: int) -> List[int]:
        """Devices one live link away from *device_id*."""
        return [link.other_end(device_id)
                for link in self._adjacency[device_id] if link.up]

    def link_between(self, a: int, b: int) -> Link:
        for link in self._adjacency[a]:
            if link.other_end(a) == b:
                return link
        raise KeyError(f"no link between {a} and {b}")

    def reachable(self, src: int, dst: int) -> bool:
        """Graph reachability over live links (``Reachable_{i,j}``)."""
        if src == dst:
            return True
        seen = {src}
        frontier = [src]
        while frontier:
            current = frontier.pop()
            for nxt in self.neighbors(current):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def simple_paths(self, src: int, dst: int,
                     max_paths: int = 1000,
                     no_transit: Optional[Set[int]] = None,
                     max_length: Optional[int] = None
                     ) -> List[List[int]]:
        """All simple paths from *src* to *dst* over live links.

        Paths are device-id sequences including both endpoints.  Devices
        in *no_transit* may appear only as endpoints, never as
        intermediate hops (IEDs are data sources, not forwarders).
        *max_length* bounds the number of devices on a path — SCADA
        forwarding follows the RTU hierarchy, so overlong meanders are
        not real routes and would blow up the encoding on dense RTU
        meshes.  The enumeration is capped at *max_paths* (raising if
        exceeded).
        """
        blocked = no_transit or set()
        paths: List[List[int]] = []
        on_path: Set[int] = {src}
        path: List[int] = [src]

        def walk(current: int) -> None:
            if len(paths) > max_paths:
                return
            for nxt in self.neighbors(current):
                if nxt == dst:
                    if max_length is None or len(path) + 1 <= max_length:
                        paths.append(path + [dst])
                        if len(paths) > max_paths:
                            raise RuntimeError(
                                f"more than {max_paths} paths between "
                                f"{src} and {dst}")
                elif nxt not in on_path and nxt not in blocked:
                    if max_length is not None and \
                            len(path) + 2 > max_length:
                        continue
                    on_path.add(nxt)
                    path.append(nxt)
                    walk(nxt)
                    path.pop()
                    on_path.remove(nxt)

        if src == dst:
            return [[src]]
        walk(src)
        return paths

    def __repr__(self) -> str:
        return (f"Topology(devices={len(self.device_ids)}, "
                f"links={len(self.links)})")


def logical_hops(path: Sequence[int],
                 router_ids: Set[int]) -> List[Tuple[int, int]]:
    """Consecutive non-router device pairs along *path*.

    Security and protocol pairing are evaluated on these hops: a path
    ``IED → RTU → router → MTU`` pairs ``(IED, RTU)`` and ``(RTU, MTU)``
    with the router transparent, matching Table II's end-to-end security
    profile entries such as ``9 13 rsa 2048``.
    """
    endpoints = [d for d in path if d not in router_ids]
    return [(endpoints[i], endpoints[i + 1])
            for i in range(len(endpoints) - 1)]
