"""Cryptographic strength policy for secured delivery.

The paper's ``SecuredDelivery`` constraint requires each communicating
pair to be *Authenticated* and *IntegrityProtected*, judged against a
vulnerability-aware table: CHAP authenticates but gives no integrity,
DES is considered broken, HMAC with ≥128-bit keys authenticates, SHA-2
with ≥128-bit state protects integrity, and so on (§III-D).

The policy is data: two rule tables mapping algorithm → minimum key
length, plus a broken-algorithm list.  ``aes`` at ≥256 bits is treated
as authenticated encryption (confidentiality *and* integrity), which is
how Table II's ``rsa 2048 aes 256`` control-center links are evidently
meant to be read (Scenario 2 treats them as secured).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from .devices import CryptoProfile

__all__ = [
    "AUTHENTICATION_RULES", "INTEGRITY_RULES", "BROKEN_ALGORITHMS",
    "CryptoPolicy", "DEFAULT_POLICY",
]

#: algorithm → minimum key bits that count as authentication.
AUTHENTICATION_RULES: Dict[str, int] = {
    "hmac": 128,
    "chap": 0,       # CHAP authenticates at any key length (§III-D)
    "rsa": 2048,
    "dsa": 2048,
    "ecdsa": 256,
    "aes": 256,      # authenticated encryption modes
    "sha2": 128,     # an HMAC-SHA2 construction authenticates too
    "sha256": 128,
}

#: algorithm → minimum key bits that count as integrity protection.
INTEGRITY_RULES: Dict[str, int] = {
    "sha256": 128,
    "sha2": 128,
    "sha512": 128,
    "hmac": 256,     # plain HMAC tags need long keys to count (§III-D:
                     # "hmac 128" pairs are *not* integrity protected)
    "aes": 256,      # authenticated encryption modes
}

#: algorithms with known practical breaks; never count for anything.
BROKEN_ALGORITHMS: FrozenSet[str] = frozenset({"des", "3des", "md5", "rc4",
                                               "sha1"})


class CryptoPolicy:
    """Decides authentication/integrity from crypto profile sets."""

    def __init__(self,
                 authentication_rules: Dict[str, int] = AUTHENTICATION_RULES,
                 integrity_rules: Dict[str, int] = INTEGRITY_RULES,
                 broken: Iterable[str] = BROKEN_ALGORITHMS) -> None:
        self.authentication_rules = dict(authentication_rules)
        self.integrity_rules = dict(integrity_rules)
        self.broken = frozenset(a.lower() for a in broken)

    # ------------------------------------------------------------------

    def _satisfies(self, profile: CryptoProfile,
                   rules: Dict[str, int]) -> bool:
        if profile.algorithm in self.broken:
            return False
        minimum = rules.get(profile.algorithm)
        return minimum is not None and profile.key_bits >= minimum

    def profile_authenticates(self, profile: CryptoProfile) -> bool:
        """Whether one profile suffices for authentication."""
        return self._satisfies(profile, self.authentication_rules)

    def profile_protects_integrity(self, profile: CryptoProfile) -> bool:
        """Whether one profile suffices for integrity protection."""
        return self._satisfies(profile, self.integrity_rules)

    # ------------------------------------------------------------------

    def authenticated(self, profiles: Iterable[CryptoProfile]) -> bool:
        """``Authenticated_{i,j}``: some shared profile authenticates."""
        return any(self.profile_authenticates(p) for p in profiles)

    def integrity_protected(self, profiles: Iterable[CryptoProfile]) -> bool:
        """``IntegrityProtected_{i,j}``: some shared profile protects
        integrity."""
        return any(self.profile_protects_integrity(p) for p in profiles)

    def secured(self, profiles: Iterable[CryptoProfile]) -> bool:
        """Authenticated *and* integrity protected (SecuredDelivery's
        per-hop requirement)."""
        profiles = list(profiles)
        return (self.authenticated(profiles)
                and self.integrity_protected(profiles))

    # ------------------------------------------------------------------

    def shared_profiles(self, left: Iterable[CryptoProfile],
                        right: Iterable[CryptoProfile]
                        ) -> Tuple[CryptoProfile, ...]:
        """``CryptoPropPairing``: the profiles both parties support."""
        right_set = set(right)
        return tuple(p for p in left if p in right_set)


#: The policy used throughout unless a caller overrides it.
DEFAULT_POLICY = CryptoPolicy()
