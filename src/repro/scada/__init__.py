"""SCADA network substrate: devices, crypto policy, topology, generator."""

from .config_io import CaseConfig, dump_config, load_config, parse_config
from .crypto import (
    AUTHENTICATION_RULES,
    BROKEN_ALGORITHMS,
    DEFAULT_POLICY,
    INTEGRITY_RULES,
    CryptoPolicy,
)
from .devices import CryptoProfile, Device, DeviceType, make_device
from .generator import GeneratorConfig, SyntheticScada, generate_scada
from .network import ScadaNetwork
from .topology import Link, Topology, logical_hops

__all__ = [
    "AUTHENTICATION_RULES",
    "CaseConfig",
    "dump_config",
    "load_config",
    "parse_config",
    "BROKEN_ALGORITHMS",
    "CryptoPolicy",
    "CryptoProfile",
    "DEFAULT_POLICY",
    "Device",
    "DeviceType",
    "GeneratorConfig",
    "INTEGRITY_RULES",
    "Link",
    "ScadaNetwork",
    "SyntheticScada",
    "Topology",
    "generate_scada",
    "logical_hops",
    "make_device",
]
