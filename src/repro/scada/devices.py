"""SCADA device model: IEDs, RTUs, MTU, routers, and crypto profiles.

Devices carry the configuration the paper's formal model consumes: a
type (``Ied_i`` / ``Rtu_i``), the communication protocols they support
(``CommProto_i``), their cryptographic capabilities (``CryptType_{i,K}``
with algorithm ``CAlgo_K`` and key length ``CKey_K``), and an optional
address (``IpAddr_i``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence, Tuple

__all__ = ["DeviceType", "CryptoProfile", "Device"]

#: ICS protocols the model recognizes for ``CommProtoPairing``.
KNOWN_PROTOCOLS = frozenset({"modbus", "dnp3", "iec61850", "iccp"})


class DeviceType(enum.Enum):
    """The SCADA device classes of the paper's topology (Fig. 1)."""

    IED = "ied"
    RTU = "rtu"
    MTU = "mtu"
    ROUTER = "router"

    @property
    def is_field_device(self) -> bool:
        """IEDs and RTUs are the field devices that may fail in a
        contingency (they populate the failure budget ``k``)."""
        return self in (DeviceType.IED, DeviceType.RTU)


@dataclass(frozen=True, order=True)
class CryptoProfile:
    """A cryptographic capability: an algorithm and a key length."""

    algorithm: str
    key_bits: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", self.algorithm.lower())
        if self.key_bits < 0:
            raise ValueError("key_bits must be non-negative")

    @classmethod
    def parse(cls, text: str) -> "CryptoProfile":
        """Parse ``"hmac 128"``-style text (as in the paper's Table II)."""
        parts = text.split()
        if len(parts) != 2:
            raise ValueError(f"expected 'algorithm bits', got {text!r}")
        return cls(parts[0], int(parts[1]))

    @classmethod
    def parse_many(cls, text: str) -> Tuple["CryptoProfile", ...]:
        """Parse a flat ``"chap 64 sha2 128"`` list of profiles."""
        parts = text.split()
        if len(parts) % 2 != 0:
            raise ValueError(f"odd token count in profile list {text!r}")
        return tuple(cls(parts[i], int(parts[i + 1]))
                     for i in range(0, len(parts), 2))

    def __str__(self) -> str:
        return f"{self.algorithm} {self.key_bits}"


@dataclass(frozen=True)
class Device:
    """One SCADA device and its communication/security configuration."""

    device_id: int
    dtype: DeviceType
    protocols: FrozenSet[str] = frozenset({"dnp3"})
    crypto: Tuple[CryptoProfile, ...] = ()
    ip_address: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.device_id < 1:
            raise ValueError("device ids are positive integers")
        object.__setattr__(
            self, "protocols", frozenset(p.lower() for p in self.protocols))

    @property
    def is_ied(self) -> bool:
        return self.dtype is DeviceType.IED

    @property
    def is_rtu(self) -> bool:
        return self.dtype is DeviceType.RTU

    @property
    def is_mtu(self) -> bool:
        return self.dtype is DeviceType.MTU

    @property
    def is_router(self) -> bool:
        return self.dtype is DeviceType.ROUTER

    @property
    def is_field_device(self) -> bool:
        return self.dtype.is_field_device

    @property
    def label(self) -> str:
        """Human-readable identity, e.g. ``IED 3``."""
        if self.name:
            return self.name
        return f"{self.dtype.name} {self.device_id}"

    def __repr__(self) -> str:
        return f"Device({self.label})"


def make_device(device_id: int, dtype: DeviceType,
                protocols: Sequence[str] = ("dnp3",),
                crypto: Sequence[CryptoProfile] = (),
                ip_address: Optional[str] = None,
                name: str = "") -> Device:
    """Convenience constructor accepting plain sequences."""
    return Device(
        device_id=device_id,
        dtype=dtype,
        protocols=frozenset(protocols),
        crypto=tuple(crypto),
        ip_address=ip_address,
        name=name,
    )
