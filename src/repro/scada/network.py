"""The SCADA network container: devices + topology + measurement map.

This is the configuration object the SCADA Analyzer verifies.  It binds

* the device inventory (:mod:`repro.scada.devices`),
* the communication topology (:mod:`repro.scada.topology`),
* the IED → measurement mapping (``MsrSet_I``), and
* the security profiles of communicating pairs (Table II's
  "security profile between the communicating entities" section),

and exposes the *static* predicates of the formal model —
``CommProtoPairing``, ``CryptoPropPairing``, ``Authenticated``,
``IntegrityProtected`` — which the encoder folds into the path
constraints.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .crypto import DEFAULT_POLICY, CryptoPolicy
from .devices import CryptoProfile, Device
from .topology import Link, Topology, logical_hops

__all__ = ["ScadaNetwork"]


def _pair_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


class ScadaNetwork:
    """A complete SCADA configuration under analysis."""

    def __init__(
        self,
        devices: Sequence[Device],
        links: Sequence[Link],
        measurement_map: Mapping[int, Sequence[int]],
        pair_security: Optional[Mapping[Tuple[int, int],
                                        Sequence[CryptoProfile]]] = None,
        policy: CryptoPolicy = DEFAULT_POLICY,
        name: str = "scada",
        max_paths: int = 1000,
        max_path_length: Optional[int] = None,
        main_mtu: Optional[int] = None,
        strict: bool = True,
    ) -> None:
        self.name = name
        self.policy = policy
        self.max_paths = max_paths
        self.max_path_length = max_path_length
        self._main_mtu = main_mtu
        self.devices: Dict[int, Device] = {}
        #: Devices shadowed by an earlier definition of the same id
        #: (populated only with ``strict=False``; strict mode raises).
        self.duplicate_devices: List[Device] = []
        for device in devices:
            if device.device_id in self.devices:
                if strict:
                    raise ValueError(
                        f"duplicate device id {device.device_id}")
                self.duplicate_devices.append(device)
                continue
            self.devices[device.device_id] = device
        self.topology = Topology(self.devices.keys(), links, strict=strict)
        self.measurement_map: Dict[int, List[int]] = {
            ied: list(msrs) for ied, msrs in measurement_map.items()}
        self.pair_security: Dict[Tuple[int, int],
                                 Tuple[CryptoProfile, ...]] = {}
        for pair, profiles in (pair_security or {}).items():
            self.pair_security[_pair_key(*pair)] = tuple(profiles)
        self._validate(strict)
        self._path_cache: Dict[int, List[List[int]]] = {}

    def _validate(self, strict: bool) -> None:
        mtus = [d for d in self.devices.values() if d.is_mtu]
        if not mtus:
            if strict:
                raise ValueError("at least one MTU is required")
            self._main_mtu = None
        elif self._main_mtu is None:
            if len(mtus) == 1:
                self._main_mtu = mtus[0].device_id
            else:
                # Paper §III-B: with several MTUs, one is the main one
                # (the main control center); default to the lowest id.
                self._main_mtu = min(d.device_id for d in mtus)
        elif not self.devices.get(self._main_mtu, None) or \
                not self.devices[self._main_mtu].is_mtu:
            if strict:
                raise ValueError(f"main_mtu={self._main_mtu} is not an MTU")
            self._main_mtu = min(d.device_id for d in mtus)
        seen_msrs: Set[int] = set()
        for ied_id, msrs in self.measurement_map.items():
            device = self.devices.get(ied_id)
            if device is None:
                if strict:
                    raise ValueError(f"measurement map references unknown "
                                     f"device {ied_id}")
                continue
            if not device.is_ied:
                if strict:
                    raise ValueError(f"device {ied_id} carries measurements "
                                     "but is not an IED")
                continue
            for z in msrs:
                if z in seen_msrs:
                    if strict:
                        raise ValueError(f"measurement {z} assigned to "
                                         "multiple IEDs")
                    continue
                seen_msrs.add(z)
        if strict:
            for pair in self.pair_security:
                for end in pair:
                    if end not in self.devices:
                        raise ValueError(f"security profile references "
                                         f"unknown device {end}")

    # ------------------------------------------------------------------
    # Device views
    # ------------------------------------------------------------------

    @property
    def has_mtu(self) -> bool:
        """Whether any MTU exists (can be False only with strict=False)."""
        return self._main_mtu is not None

    @property
    def mtu_id(self) -> int:
        """The main MTU — the destination of all measurement paths."""
        if self._main_mtu is None:
            raise ValueError(f"network {self.name!r} has no MTU")
        return self._main_mtu

    @property
    def mtu_ids(self) -> List[int]:
        """All MTUs (main first)."""
        others = sorted(d.device_id for d in self.devices.values()
                        if d.is_mtu and d.device_id != self.mtu_id)
        return [self.mtu_id] + others

    @property
    def ied_ids(self) -> List[int]:
        return sorted(d.device_id for d in self.devices.values() if d.is_ied)

    @property
    def rtu_ids(self) -> List[int]:
        return sorted(d.device_id for d in self.devices.values() if d.is_rtu)

    @property
    def router_ids(self) -> Set[int]:
        return {d.device_id for d in self.devices.values() if d.is_router}

    @property
    def field_device_ids(self) -> List[int]:
        """IEDs and RTUs — the failure candidates of the k-budget."""
        return sorted(d.device_id for d in self.devices.values()
                      if d.is_field_device)

    def device(self, device_id: int) -> Device:
        return self.devices[device_id]

    def label(self, device_id: int) -> str:
        return self.devices[device_id].label

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def measurements_of(self, ied_id: int) -> List[int]:
        """``MsrSet_I``."""
        return list(self.measurement_map.get(ied_id, []))

    def ied_of_measurement(self, msr_index: int) -> int:
        for ied_id, msrs in self.measurement_map.items():
            if msr_index in msrs:
                return ied_id
        raise KeyError(f"measurement {msr_index} is not assigned to any IED")

    def assigned_measurements(self) -> List[int]:
        return sorted(z for msrs in self.measurement_map.values()
                      for z in msrs)

    # ------------------------------------------------------------------
    # Static pairing predicates
    # ------------------------------------------------------------------

    def comm_proto_pairing(self, a: int, b: int) -> bool:
        """``CommProtoPairing_{i,j}``: a shared communication protocol."""
        return bool(self.devices[a].protocols & self.devices[b].protocols)

    def security_profiles(self, a: int, b: int) -> Tuple[CryptoProfile, ...]:
        """The crypto profiles available between *a* and *b*.

        An explicit pair entry (Table II style) wins; otherwise the
        intersection of the two devices' own capabilities is used.
        """
        explicit = self.pair_security.get(_pair_key(a, b))
        if explicit is not None:
            return explicit
        return self.policy.shared_profiles(
            self.devices[a].crypto, self.devices[b].crypto)

    def crypto_pairing_ok(self, a: int, b: int) -> bool:
        """``CryptoPropPairing_{i,j}``: the handshake can succeed.

        True when the pair shares at least one profile, or when neither
        side requires cryptography at all.
        """
        if self.security_profiles(a, b):
            return True
        return not self.devices[a].crypto and not self.devices[b].crypto

    def hop_assured(self, a: int, b: int) -> bool:
        """Whether data can transit hop (a, b) at all."""
        return self.comm_proto_pairing(a, b) and self.crypto_pairing_ok(a, b)

    def hop_authenticated(self, a: int, b: int) -> bool:
        """``Authenticated_{i,j}``."""
        return self.policy.authenticated(self.security_profiles(a, b))

    def hop_integrity_protected(self, a: int, b: int) -> bool:
        """``IntegrityProtected_{i,j}``."""
        return self.policy.integrity_protected(self.security_profiles(a, b))

    def hop_secured(self, a: int, b: int) -> bool:
        """Authenticated and integrity protected (and deliverable)."""
        return (self.hop_assured(a, b)
                and self.hop_authenticated(a, b)
                and self.hop_integrity_protected(a, b))

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def forwarding_paths(self, device_id: int) -> List[List[int]]:
        """``P_I``: simple paths from a field device to the MTU.

        IEDs never appear as intermediate hops (they are data sources
        and command sinks, not forwarders).
        """
        cached = self._path_cache.get(device_id)
        if cached is None:
            other_ieds = {i for i in self.ied_ids if i != device_id}
            cached = self.topology.simple_paths(
                device_id, self.mtu_id, max_paths=self.max_paths,
                no_transit=other_ieds,
                max_length=self.max_path_length)
            self._path_cache[device_id] = cached
        return cached

    def assured_paths(self, device_id: int) -> List[List[int]]:
        """Paths whose every logical hop passes protocol/crypto pairing."""
        routers = self.router_ids
        return [
            path for path in self.forwarding_paths(device_id)
            if all(self.hop_assured(a, b)
                   for a, b in logical_hops(path, routers))
        ]

    def secured_paths(self, device_id: int) -> List[List[int]]:
        """Paths whose every logical hop is authenticated and integrity
        protected."""
        routers = self.router_ids
        return [
            path for path in self.forwarding_paths(device_id)
            if all(self.hop_secured(a, b)
                   for a, b in logical_hops(path, routers))
        ]

    def fingerprint(self) -> str:
        """A stable digest of everything the encoder reads.

        Two networks with equal fingerprints produce identical threat
        encodings for any spec, so the engine's encoding cache keys on
        this digest (plus property, ``r``, and cardinality encoding).
        Labels and IP addresses are excluded — they never reach the
        solver.
        """
        policy = self.policy
        parts: List[str] = [
            f"paths={self.max_paths}/{self.max_path_length}",
            f"policy=auth:{sorted(policy.authentication_rules.items())}"
            f"/integ:{sorted(policy.integrity_rules.items())}"
            f"/broken:{sorted(policy.broken)}",
        ]
        for device_id in sorted(self.devices):
            device = self.devices[device_id]
            protos = ",".join(sorted(device.protocols))
            crypto = ";".join(str(p) for p in device.crypto)
            parts.append(
                f"d{device_id}:{device.dtype.name}:{protos}:{crypto}")
        for link in sorted(self.topology.links,
                           key=lambda ln: (ln.a, ln.b, ln.index)):
            parts.append(f"l{link.a}-{link.b}")
        for ied_id in sorted(self.measurement_map):
            msrs = ",".join(map(str, self.measurement_map[ied_id]))
            parts.append(f"m{ied_id}:{msrs}")
        for pair in sorted(self.pair_security):
            profiles = ";".join(str(p) for p in self.pair_security[pair])
            parts.append(f"s{pair[0]}-{pair[1]}:{profiles}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()[:16]

    def __repr__(self) -> str:
        return (f"ScadaNetwork({self.name!r}, ieds={len(self.ied_ids)}, "
                f"rtus={len(self.rtu_ids)}, "
                f"links={len(self.topology.links)})")
