"""Synthetic SCADA system generator (paper §V-A).

The paper evaluates scalability on "arbitrarily created" SCADA networks
over IEEE bus systems, with this policy:

* one IED per two power-flow measurements, one IED per consumption
  (injection) measurement;
* RTU count proportional to the number of buses;
* each IED attached to an RTU; RTUs arranged in a hierarchy whose
  *hierarchy level* parameter sets the average number of intermediate
  RTUs on the path from an IED to the MTU;
* a control-center router in front of the MTU (Fig. 1 / Fig. 3).

Security profiles are drawn from pools modeled on Table II, with a
``secure_fraction`` knob controlling how many pairs get integrity-
protected profiles (used by the secured-observability experiments).
Everything is driven by one seeded RNG for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..grid.bus_system import BusSystem
from ..grid.jacobian import JacobianTable
from ..grid.measurements import (
    MeasurementPlan,
    sampled_measurement_plan,
)
from .devices import CryptoProfile, Device, DeviceType
from .network import ScadaNetwork
from .topology import Link

__all__ = ["GeneratorConfig", "SyntheticScada", "generate_scada"]

#: Profile pools modeled on Table II's entries.
STRONG_FIELD_PROFILE = CryptoProfile.parse_many("chap 64 sha2 256")
WEAK_FIELD_PROFILE = CryptoProfile.parse_many("hmac 128")
STRONG_BACKBONE_PROFILE = CryptoProfile.parse_many("rsa 2048 aes 256")
WEAK_BACKBONE_PROFILE = CryptoProfile.parse_many("rsa 2048")


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic SCADA generator."""

    measurement_fraction: float = 0.7
    hierarchy_level: int = 1
    secure_fraction: float = 0.8
    rtus_per_bus: float = 1 / 3
    extra_rtu_link_fraction: float = 0.2
    dual_home_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hierarchy_level < 1:
            raise ValueError("hierarchy_level must be at least 1")
        if not 0 < self.measurement_fraction <= 1:
            raise ValueError("measurement_fraction must be in (0, 1]")
        if not 0 <= self.secure_fraction <= 1:
            raise ValueError("secure_fraction must be in [0, 1]")
        if not 0 <= self.dual_home_fraction <= 1:
            raise ValueError("dual_home_fraction must be in [0, 1]")
        # `not x > 0` rather than `x <= 0`: rejects NaN too.
        if not self.rtus_per_bus > 0:
            raise ValueError(
                f"rtus_per_bus must be positive, got "
                f"{self.rtus_per_bus!r}: every SCADA system needs at "
                f"least one RTU tier between the IEDs and the MTU")
        if not 0 <= self.extra_rtu_link_fraction <= 1:
            raise ValueError(
                f"extra_rtu_link_fraction must be in [0, 1], got "
                f"{self.extra_rtu_link_fraction!r}")


@dataclass
class SyntheticScada:
    """A generated SCADA system ready for verification."""

    network: ScadaNetwork
    plan: MeasurementPlan
    table: JacobianTable
    config: GeneratorConfig
    bus_system: BusSystem

    @property
    def num_devices(self) -> int:
        """Field devices (IEDs + RTUs), the paper's device count."""
        return len(self.network.field_device_ids)


def generate_scada(bus_system: BusSystem,
                   config: Optional[GeneratorConfig] = None,
                   plan: Optional[MeasurementPlan] = None) -> SyntheticScada:
    """Generate a synthetic SCADA system over *bus_system*.

    A caller may pass an explicit measurement *plan*; otherwise one is
    sampled per ``config.measurement_fraction``.
    """
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    if plan is None:
        plan = sampled_measurement_plan(
            bus_system, config.measurement_fraction, seed=config.seed)
    table = JacobianTable(plan)

    flow_msrs = [m.index for m in plan.measurements if m.mtype.is_flow]
    injection_msrs = [m.index for m in plan.measurements
                      if not m.mtype.is_flow]

    # --- IEDs: one per two flow measurements, one per injection. ------
    measurement_map: Dict[int, List[int]] = {}
    next_id = 1
    rng.shuffle(flow_msrs)
    for start in range(0, len(flow_msrs), 2):
        measurement_map[next_id] = sorted(flow_msrs[start:start + 2])
        next_id += 1
    for z in injection_msrs:
        measurement_map[next_id] = [z]
        next_id += 1
    ied_ids = sorted(measurement_map)

    # --- RTUs in a hierarchy. ------------------------------------------
    num_rtus = max(2, round(bus_system.num_buses * config.rtus_per_bus))
    if config.hierarchy_level > num_rtus:
        raise ValueError(
            f"hierarchy_level={config.hierarchy_level} needs at least "
            f"one RTU per level, but rtus_per_bus="
            f"{config.rtus_per_bus:g} yields only {num_rtus} RTU(s) "
            f"over {bus_system.num_buses} buses; lower hierarchy_level "
            f"or raise rtus_per_bus")
    rtu_ids = list(range(next_id, next_id + num_rtus))
    next_id += num_rtus
    router_id = next_id
    mtu_id = next_id + 1

    levels = _assign_levels(rtu_ids, config.hierarchy_level, rng)
    max_level = max(levels.values())
    by_level: Dict[int, List[int]] = {}
    for rtu, level in levels.items():
        by_level.setdefault(level, []).append(rtu)

    links: List[Link] = []
    link_idx = 0

    def add_link(a: int, b: int) -> None:
        nonlocal link_idx
        link_idx += 1
        links.append(Link(index=link_idx, a=a, b=b))

    pair_security: Dict[Tuple[int, int], Tuple[CryptoProfile, ...]] = {}

    def set_security(a: int, b: int,
                     strong: Sequence[CryptoProfile],
                     weak: Sequence[CryptoProfile]) -> None:
        chosen = strong if rng.random() < config.secure_fraction else weak
        pair_security[(min(a, b), max(a, b))] = tuple(chosen)

    # RTU backbone: level-1 RTUs reach the MTU through the router; each
    # deeper RTU uplinks to a random RTU one level shallower.
    for rtu in by_level.get(1, []):
        add_link(rtu, router_id)
        set_security(rtu, mtu_id,
                     STRONG_BACKBONE_PROFILE, WEAK_BACKBONE_PROFILE)
    for level in range(2, max_level + 1):
        for rtu in by_level.get(level, []):
            parent = rng.choice(by_level[level - 1])
            add_link(rtu, parent)
            set_security(rtu, parent,
                         STRONG_BACKBONE_PROFILE, WEAK_FIELD_PROFILE)
    add_link(router_id, mtu_id)

    # Redundant RTU-RTU cross links.
    extra = int(config.extra_rtu_link_fraction * num_rtus)
    existing = {link.node_pair for link in links}
    attempts = 0
    while extra > 0 and attempts < 50 * num_rtus:
        attempts += 1
        a, b = rng.sample(rtu_ids, 2)
        pair = (min(a, b), max(a, b))
        if pair in existing or abs(levels[a] - levels[b]) > 1:
            continue
        existing.add(pair)
        add_link(a, b)
        set_security(a, b, STRONG_BACKBONE_PROFILE, WEAK_FIELD_PROFILE)
        extra -= 1

    # IEDs attach to RTUs, spread evenly but randomly.  A fraction of
    # IEDs is dual-homed to a second RTU for delivery redundancy.
    shuffled_rtus = list(rtu_ids)
    for pos, ied in enumerate(ied_ids):
        if pos % len(shuffled_rtus) == 0:
            rng.shuffle(shuffled_rtus)
        rtu = shuffled_rtus[pos % len(shuffled_rtus)]
        add_link(ied, rtu)
        set_security(ied, rtu, STRONG_FIELD_PROFILE, WEAK_FIELD_PROFILE)
        if len(rtu_ids) > 1 and rng.random() < config.dual_home_fraction:
            backup = rng.choice([r for r in rtu_ids if r != rtu])
            add_link(ied, backup)
            set_security(ied, backup,
                         STRONG_FIELD_PROFILE, WEAK_FIELD_PROFILE)

    devices = (
        [Device(i, DeviceType.IED) for i in ied_ids]
        + [Device(i, DeviceType.RTU) for i in rtu_ids]
        + [Device(router_id, DeviceType.ROUTER)]
        + [Device(mtu_id, DeviceType.MTU)]
    )
    # Forwarding follows the hierarchy: the longest sensible route is
    # IED → deepest RTU chain → router → MTU, plus slack for one
    # lateral cross-link hop.
    network = ScadaNetwork(
        devices=devices,
        links=links,
        measurement_map=measurement_map,
        pair_security=pair_security,
        name=f"synthetic-{bus_system.name}-h{config.hierarchy_level}"
             f"-s{config.seed}",
        max_path_length=max_level + 5,
    )
    return SyntheticScada(network=network, plan=plan, table=table,
                          config=config, bus_system=bus_system)


def _assign_levels(rtu_ids: Sequence[int], hierarchy_level: int,
                   rng: random.Random) -> Dict[int, int]:
    """Assign RTU depths with mean ≈ hierarchy_level.

    Depths are drawn uniformly from ``1..2h-1`` (mean ``h``); every depth
    from 1 up to the deepest drawn is guaranteed non-empty so uplinks
    always have a parent level.  The depth range is clamped to the RTU
    count: more levels than RTUs cannot all be inhabited, and an
    unclamped range would make the fill-missing-levels pass below
    allocate ``O(2h)`` scratch regardless of the actual system size.
    """
    top = max(1, min(2 * hierarchy_level - 1, len(rtu_ids)))
    levels = {rtu: rng.randint(1, top) for rtu in rtu_ids}
    # Guarantee all levels 1..max are inhabited.
    used = sorted(set(levels.values()))
    required = list(range(1, max(used) + 1))
    missing = [lvl for lvl in required if lvl not in used]
    rtus = list(rtu_ids)
    rng.shuffle(rtus)
    for lvl, rtu in zip(missing, rtus):
        levels[rtu] = lvl
    # Re-check: if reassignment emptied a level (tiny RTU counts), clamp
    # everything into a contiguous prefix.
    present = sorted(set(levels.values()))
    remap = {old: new for new, old in enumerate(present, start=1)}
    return {rtu: remap[lvl] for rtu, lvl in levels.items()}
