"""A CDCL SAT solver over a flat clause arena.

This is the solving engine that replaces Z3 for the paper's model (which
is purely Boolean once cardinality sums are encoded).  It implements the
standard conflict-driven clause-learning architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause minimization,
* VSIDS-style variable activities with phase saving,
* Luby-sequence restarts,
* LBD-tiered learned-clause retention (core / mid / local) with
  per-tier database-reduction policies,
* inter-restart inprocessing: learned-clause subsumption,
  self-subsuming resolution, and bounded vivification,
* solving under assumptions, with extraction of an unsatisfiable core
  over the assumption set (the ``analyzeFinal`` mechanism).

The public literal convention is DIMACS (signed integers); internally a
literal ``v``/``-v`` is encoded as ``2v``/``2v+1`` so flat lists can be
indexed by literal.

Clause storage
--------------
Clauses live in a :class:`ClauseArena`: one contiguous literal buffer
plus offset / length / LBD / activity side arrays, all indexed by an
integer *clause reference*.  Watch lists and implication reasons hold
references, never objects, so the hot propagation loop runs on flat
``list`` indexing with no attribute lookups, and the memory estimate
used by :class:`~repro.sat.limits.Limits` is O(1) (buffer lengths)
instead of a full database walk.  Deletion marks a reference dead and
counts the wasted buffer slots; when waste crosses a threshold the
arena is compacted in place.  References are *stable across
compaction* (only offsets move), so watch lists, reasons, and tier
lists never need remapping.
"""

from __future__ import annotations

from heapq import heappop, heappush
from random import Random
from time import monotonic
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .hooks import SolverHooks
from .limits import LimitReason, Limits
from .types import from_internal, to_internal

__all__ = ["SatSolver", "SolverStats", "ClauseArena"]

_UNDEF = -1

#: Sentinel clause reference meaning "no reason" (decision / assumption).
_NO_REASON = -1

#: Outer-loop iterations between wall-clock / memory polls.  Conflict,
#: propagation, and interrupt checks are plain integer/attribute reads
#: and run every iteration; ``monotonic()`` and the (O(1)) memory
#: estimate are only sampled at this cadence so an unbounded solve
#: pays (almost) nothing for the limit machinery.
_LIMIT_POLL_INTERVAL = 128

#: Learned clauses with LBD at or below this are *core*: kept forever.
_CORE_LBD = 2
#: ... at or below this are *mid*: reduced gently; the rest are *local*.
_MID_LBD = 6


class ClauseArena:
    """Flat int-array clause storage.

    A clause is addressed by an integer reference ``ref`` indexing the
    side arrays; its literals occupy ``lits[off[ref] : off[ref] +
    length[ref]]``.  The first two slots of every live clause are its
    watched literals.  ``flags`` packs the learned bit
    (:data:`LEARNED`) and the dead bit (:data:`DEAD`); ``lbd`` and
    ``act`` carry the learned-clause glue and VSIDS-style activity.

    Dead clauses leave their literal slots behind as waste (tracked in
    :attr:`wasted`, together with slots stranded by in-place
    strengthening); :meth:`compact` rewrites the buffer keeping
    references stable, and dead references are recycled through a free
    list so the side arrays stay bounded too.
    """

    LEARNED = 1
    DEAD = 2

    __slots__ = ("lits", "off", "length", "lbd", "act", "flags",
                 "free", "wasted", "compactions")

    def __init__(self) -> None:
        self.lits: List[int] = []
        self.off: List[int] = []
        self.length: List[int] = []
        self.lbd: List[int] = []
        self.act: List[float] = []
        self.flags: List[int] = []
        self.free: List[int] = []
        self.wasted = 0
        self.compactions = 0

    def alloc(self, lits: Sequence[int], learned: bool) -> int:
        """Store a clause; returns its reference."""
        flags = self.LEARNED if learned else 0
        if self.free:
            ref = self.free.pop()
            self.off[ref] = len(self.lits)
            self.length[ref] = len(lits)
            self.lbd[ref] = 0
            self.act[ref] = 0.0
            self.flags[ref] = flags
        else:
            ref = len(self.off)
            self.off.append(len(self.lits))
            self.length.append(len(lits))
            self.lbd.append(0)
            self.act.append(0.0)
            self.flags.append(flags)
        self.lits.extend(lits)
        return ref

    def free_clause(self, ref: int) -> None:
        """Mark *ref* dead and recycle it; its slots become waste."""
        self.wasted += self.length[ref]
        self.flags[ref] |= self.DEAD
        self.free.append(ref)

    def shrink(self, ref: int, new_lits: Sequence[int]) -> None:
        """Replace *ref*'s literals in place with a shorter list."""
        o = self.off[ref]
        n = len(new_lits)
        self.wasted += self.length[ref] - n
        self.lits[o:o + n] = new_lits
        self.length[ref] = n

    def clause_lits(self, ref: int) -> List[int]:
        """A copy of *ref*'s literals (cold paths only)."""
        o = self.off[ref]
        return self.lits[o:o + self.length[ref]]

    def is_dead(self, ref: int) -> bool:
        return bool(self.flags[ref] & self.DEAD)

    @property
    def live_clauses(self) -> int:
        return len(self.off) - len(self.free)

    def compact(self) -> int:
        """Rewrite the literal buffer without the dead/stranded slots.

        References are stable — only offsets change — so no watch list,
        reason, or tier list needs updating.  Returns the number of
        reclaimed slots.
        """
        old = self.lits
        off = self.off
        length = self.length
        flags = self.flags
        dead = self.DEAD
        new_lits: List[int] = []
        for ref in range(len(off)):
            if flags[ref] & dead:
                continue
            o = off[ref]
            off[ref] = len(new_lits)
            new_lits.extend(old[o:o + length[ref]])
        reclaimed = len(old) - len(new_lits)
        self.lits = new_lits
        self.wasted = 0
        self.compactions += 1
        return reclaimed


class SolverStats:
    """Counters describing the work a solve performed."""

    __slots__ = (
        "conflicts", "decisions", "propagations", "restarts",
        "learned_clauses", "deleted_clauses", "max_decision_level",
        "subsumed_clauses", "strengthened_clauses", "vivified_clauses",
        "arena_compactions",
    )

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.max_decision_level = 0
        self.subsumed_clauses = 0
        self.strengthened_clauses = 0
        self.vivified_clauses = 0
        self.arena_compactions = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot.

        Monotone counters are differenced; ``max_decision_level`` (a
        high-water mark, not a counter) is reported as its current
        value.  Incremental facades use this to attribute search effort
        to individual queries on a long-lived solver.
        """
        current = self.as_dict()
        out = {name: current[name] - before.get(name, 0)
               for name in self.__slots__}
        out["max_decision_level"] = current["max_decision_level"]
        return out

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({fields})"


def _luby(i: int) -> int:
    """The i-th element (0-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size = 1
    seq = 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i = i % size
    return 1 << seq


class SatSolver:
    """An incremental CDCL solver over DIMACS-style literals.

    The keyword arguments exist for the portfolio engine's worker
    diversification and the ``--no-inprocess`` CLI switch; the defaults
    reproduce the canonical configuration exactly.

    :param inprocess: run inter-restart inprocessing (subsumption,
        self-subsuming resolution, bounded vivification).
    :param seed: when set, perturbs initial variable activities with
        tiny pseudo-random epsilons so tie-breaks (and hence search
        trajectories) differ between portfolio workers.
    :param phase_init: initial saved phase for fresh variables —
        ``None`` (default: negative first, the historical behaviour),
        ``True``/``False``, or ``"random"`` (requires *seed* for
        reproducibility).
    :param restart_base: Luby restart unit in conflicts.
    :param var_decay: VSIDS decay factor (activities are bumped by a
        geometrically growing increment ``1/var_decay`` per conflict).
    :param interrupt_check: optional zero-argument callable polled at
        the wall-clock cadence; returning ``True`` abandons the solve
        with :data:`~repro.sat.limits.LimitReason.INTERRUPT`.  This is
        how portfolio workers observe the cross-process cancel event.
    """

    def __init__(self, inprocess: bool = True,
                 seed: Optional[int] = None,
                 phase_init: object = None,
                 restart_base: int = 100,
                 var_decay: float = 0.95,
                 interrupt_check: Optional[Callable[[], bool]] = None,
                 ) -> None:
        self.num_vars = 0
        # Indexed by internal literal: 1 true, 0 false, -1 unassigned.
        self._value: List[int] = [_UNDEF, _UNDEF]
        # Indexed by variable.
        self._level: List[int] = [0]
        self._reason: List[int] = [_NO_REASON]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [True]
        self._seen: List[int] = [0]
        # Indexed by internal literal: refs of clauses watching it.
        self._watches: List[List[int]] = [[], []]

        self._arena = ClauseArena()
        #: Original (problem) clause refs.
        self._clauses: List[int] = []
        #: Learned clause refs, tiered by LBD at learn time.
        self._tier_core: List[int] = []
        self._tier_mid: List[int] = []
        self._tier_local: List[int] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._var_inc = 1.0
        self._var_decay = 1.0 / var_decay
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order_heap: List[tuple] = []
        #: Activity value at each variable's freshest heap entry;
        #: ``-1.0`` means "no fresh entry in the heap".  Lets
        #: :meth:`_cancel_until` skip redundant pushes (the historical
        #: version re-pushed the whole trail on every backtrack, so
        #: duplicate entries accumulated without bound).
        self._heap_act: List[float] = [-1.0]

        self._restart_base = restart_base
        self._inprocess_enabled = inprocess
        #: Cumulative-conflict threshold for the next inprocessing
        #: round, and the (growing) gap between rounds.
        self._inprocess_next = 2000
        self._inprocess_interval = 2000
        #: Per-round vivification bounds: candidate clauses / extra
        #: propagations spent probing them.
        self._vivify_cap = 64
        self._vivify_prop_budget = 20_000
        self._reduce_calls = 0

        self._seed = seed
        self._rng = Random(seed if seed is not None else 0)
        self._phase_init = phase_init

        self._ok = True
        self._interrupted = False
        self.interrupt_check = interrupt_check
        #: Why the last :meth:`solve` returned ``None`` (UNKNOWN);
        #: ``None`` after a decided (sat/unsat) answer.
        self.limit_reason: Optional[LimitReason] = None
        self._clauses_added = 0
        self._proof_originals: Optional[List[List[int]]] = None
        self._proof_learned: Optional[List[List[int]]] = None
        #: DRUP-style deletion records (observability only: the RUP
        #: checker is monotone, so deletions never affect validity).
        self._proof_deleted: Optional[List[List[int]]] = None
        self._model: List[bool] = []
        self._core: List[int] = []
        self._assumption_set: set = set()
        self.stats = SolverStats()
        #: Optional event observer (see :mod:`repro.sat.hooks`).  With
        #: the default ``None`` every call site is one attribute check.
        self.hooks: Optional[SolverHooks] = None

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._value.extend((_UNDEF, _UNDEF))
        self._level.append(0)
        self._reason.append(_NO_REASON)
        if self._seed is not None:
            activity = self._rng.random() * 1e-6
        else:
            activity = 0.0
        self._activity.append(activity)
        if self._phase_init == "random":
            phase = self._rng.random() < 0.5
        elif self._phase_init is None:
            phase = False
        else:
            phase = bool(self._phase_init)
        self._phase.append(phase)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        heappush(self._order_heap, (-activity, self.num_vars))
        self._heap_act.append(activity)
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        top = 0
        for lit in lits:
            v = lit if lit > 0 else -lit
            if v > top:
                top = v
        while self.num_vars < top:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns ``False`` when the solver's clause set has become
        trivially unsatisfiable (an empty clause, possibly after level-0
        simplification); further calls are then no-ops.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause is only legal at decision level 0")
        self._clauses_added += 1
        if self._proof_originals is not None:
            self._proof_originals.append(list(lits))
        self._ensure_vars(lits)

        seen = set()
        simplified: List[int] = []
        value = self._value
        for lit in lits:
            ilit = to_internal(lit)
            if ilit in seen:
                continue
            if ilit ^ 1 in seen:
                return True  # tautology
            val = value[ilit]
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # already false at level 0: drop the literal
            seen.add(ilit)
            simplified.append(ilit)

        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], _NO_REASON):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True

        ref = self._arena.alloc(simplified, learned=False)
        self._clauses.append(ref)
        self._attach(ref)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Add every clause; returns ``False`` once unsatisfiable."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause)
            if not ok:
                break
        return ok

    def _attach(self, ref: int) -> None:
        # Convention: _watches[lit] holds the clauses in which `lit` is
        # one of the two watched literals; the list is visited when `lit`
        # becomes false.
        arena = self._arena
        o = arena.off[ref]
        self._watches[arena.lits[o]].append(ref)
        self._watches[arena.lits[o + 1]].append(ref)

    def _detach(self, ref: int) -> None:
        arena = self._arena
        o = arena.off[ref]
        self._watches[arena.lits[o]].remove(ref)
        self._watches[arena.lits[o + 1]].remove(ref)

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------

    def _enqueue(self, ilit: int, reason: int) -> bool:
        val = self._value[ilit]
        if val != _UNDEF:
            return val == 1
        var = ilit >> 1
        self._value[ilit] = 1
        self._value[ilit ^ 1] = 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = not (ilit & 1)
        self._trail.append(ilit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns the conflicting clause ref, if any."""
        value = self._value
        watches = self._watches
        trail = self._trail
        arena = self._arena
        buf = arena.lits
        offs = arena.off
        lens = arena.length
        while self._qhead < len(trail):
            ilit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = ilit ^ 1
            watchers = watches[false_lit]
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                ref = watchers[i]
                i += 1
                o = offs[ref]
                # Put the false literal in position 1.
                if buf[o] == false_lit:
                    buf[o] = buf[o + 1]
                    buf[o + 1] = false_lit
                first = buf[o]
                if value[first] == 1:
                    watchers[j] = ref
                    j += 1
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(o + 2, o + lens[ref]):
                    cand = buf[k]
                    if value[cand] != 0:
                        buf[o + 1] = cand
                        buf[k] = false_lit
                        watches[cand].append(ref)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = ref
                j += 1
                if value[first] == 0:
                    # Conflict: restore remaining watchers and bail out.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(trail)
                    return ref
                # Unit.
                var = first >> 1
                value[first] = 1
                value[first ^ 1] = 0
                self._level[var] = len(self._trail_lim)
                self._reason[var] = ref
                self._phase[var] = not (first & 1)
                trail.append(first)
            del watchers[j:]
        return None

    # ------------------------------------------------------------------
    # Decisions and backtracking
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        heap = self._order_heap
        value = self._value
        activity = self._activity
        heap_act = self._heap_act
        while heap:
            act, var = heappop(heap)
            if value[var << 1] == _UNDEF and -act == activity[var]:
                heap_act[var] = -1.0
                return var
            # Otherwise stale: the variable is assigned, or a fresher
            # entry (with its current activity) sits elsewhere.
        # Every fresh entry was consumed: rebuild from the unassigned
        # variables once, instead of the historical per-call O(n) scan.
        self._rebuild_heap()
        heap = self._order_heap
        if heap:
            act, var = heappop(heap)
            self._heap_act[var] = -1.0
            return var
        return None

    def _bump_var(self, var: int) -> None:
        act = self._activity[var] + self._var_inc
        self._activity[var] = act
        if act > 1e100:
            self._rescale_activities()
            return  # the rescale rebuilt the heap with fresh entries
        if self._value[var << 1] == _UNDEF:
            heappush(self._order_heap, (-act, var))
            self._heap_act[var] = act

    def _rebuild_heap(self) -> None:
        """Rebuild the order heap with exactly one entry per unassigned
        variable (at its current activity)."""
        activity = self._activity
        value = self._value
        heap_act = self._heap_act
        heap = []
        for var in range(1, self.num_vars + 1):
            if value[var << 1] == _UNDEF:
                heap.append((-activity[var], var))
                heap_act[var] = activity[var]
            else:
                heap_act[var] = -1.0
        heap.sort()  # a sorted list satisfies the heap invariant
        self._order_heap = heap

    def _rescale_activities(self) -> None:
        activity = self._activity
        for var in range(1, self.num_vars + 1):
            activity[var] *= 1e-100
        self._var_inc *= 1e-100
        self._rebuild_heap()
        if self.hooks is not None:
            self.hooks.on_rescale()

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        value = self._value
        trail = self._trail
        activity = self._activity
        heap_act = self._heap_act
        heap = self._order_heap
        for idx in range(len(trail) - 1, bound - 1, -1):
            ilit = trail[idx]
            var = ilit >> 1
            value[ilit] = _UNDEF
            value[ilit ^ 1] = _UNDEF
            self._reason[var] = _NO_REASON
            act = activity[var]
            if heap_act[var] != act:
                heappush(heap, (-act, var))
                heap_act[var] = act
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound
        # Lazy deletion still leaves stale entries behind; a rebuild
        # threshold keeps the heap linear in the variable count.
        if len(heap) > 2 * self.num_vars + 64:
            self._rebuild_heap()

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: int) -> tuple:
        """First-UIP analysis → (learned internal lits, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        arena = self._arena
        buf = arena.lits
        offs = arena.off
        lens = arena.length
        flags = arena.flags
        current_level = len(self._trail_lim)

        counter = 0
        p = -1
        idx = len(trail) - 1
        ref = conflict

        to_clear: List[int] = []
        while True:
            assert ref != _NO_REASON
            if flags[ref] & ClauseArena.LEARNED:
                self._bump_clause(ref)
            o = offs[ref]
            start = o if p == -1 else o + 1
            for k in range(start, o + lens[ref]):
                q = buf[k]
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = 1
                to_clear.append(var)
                self._bump_var(var)
                if level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Find the next literal to resolve on.
            while not seen[trail[idx] >> 1]:
                idx -= 1
            p = trail[idx]
            idx -= 1
            var = p >> 1
            ref = reason[var]
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
        learned[0] = p ^ 1

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for lit in learned[1:]:
            abstract_levels |= 1 << (level[lit >> 1] & 31)
        kept = [learned[0]]
        for lit in learned[1:]:
            if reason[lit >> 1] == _NO_REASON or not self._redundant(
                    lit, abstract_levels, to_clear):
                kept.append(lit)
        learned = kept

        for var in to_clear:
            seen[var] = 0

        if len(learned) == 1:
            back_level = 0
        else:
            # Move the literal with the highest level (below current) to
            # position 1.
            best = 1
            for k in range(2, len(learned)):
                if level[learned[k] >> 1] > level[learned[best] >> 1]:
                    best = k
            learned[1], learned[best] = learned[best], learned[1]
            back_level = level[learned[1] >> 1]
        return learned, back_level

    def _redundant(self, lit: int, abstract_levels: int,
                   to_clear: List[int]) -> bool:
        """Check whether *lit* is implied by other learned-clause literals."""
        seen = self._seen
        level = self._level
        reason = self._reason
        arena = self._arena
        buf = arena.lits
        offs = arena.off
        lens = arena.length
        stack = [lit]
        top = len(to_clear)
        while stack:
            current = stack.pop()
            ref = reason[current >> 1]
            if ref == _NO_REASON:
                # Shouldn't happen for stacked literals, but be safe.
                for var in to_clear[top:]:
                    seen[var] = 0
                del to_clear[top:]
                return False
            o = offs[ref]
            for k in range(o + 1, o + lens[ref]):
                q = buf[k]
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason[var] != _NO_REASON and (
                        (1 << (level[var] & 31)) & abstract_levels):
                    seen[var] = 1
                    to_clear.append(var)
                    stack.append(q)
                else:
                    for cleared in to_clear[top:]:
                        seen[cleared] = 0
                    del to_clear[top:]
                    return False
        return True

    def _compute_lbd(self, lits: Sequence[int]) -> int:
        levels = {self._level[lit >> 1] for lit in lits}
        levels.discard(0)
        return len(levels)

    def _bump_clause(self, ref: int) -> None:
        arena = self._arena
        arena.act[ref] += self._cla_inc
        if arena.act[ref] > 1e20:
            act = arena.act
            for tier in (self._tier_core, self._tier_mid, self._tier_local):
                for learned_ref in tier:
                    act[learned_ref] *= 1e-20
            self._cla_inc *= 1e-20

    # ------------------------------------------------------------------
    # Learned clause DB reduction (per-tier policies)
    # ------------------------------------------------------------------

    def _learned_tier(self, lbd: int) -> List[int]:
        if lbd <= _CORE_LBD:
            return self._tier_core
        if lbd <= _MID_LBD:
            return self._tier_mid
        return self._tier_local

    @property
    def tier_sizes(self) -> tuple:
        """Current (core, mid, local) learned-clause tier sizes."""
        return (len(self._tier_core), len(self._tier_mid),
                len(self._tier_local))

    def top_active_vars(self, n: int) -> List[int]:
        """The *n* root-unassigned variables of highest VSIDS activity.

        Used by the portfolio backend to pick cube-and-conquer split
        variables after a conflict-limited probe: the hottest variables
        are where the search is actually fighting, so branching the
        cube on them partitions the hard part of the space.
        """
        value = self._value
        ranked = sorted(
            (v for v in range(1, self.num_vars + 1)
             if value[v << 1] == _UNDEF),
            key=lambda v: -self._activity[v])
        return ranked[:n]

    def _reduce_db(self) -> None:
        """Per-tier retention: *core* (LBD ≤ 2) is never deleted;
        *local* halves by (LBD, activity) every call; *mid* sheds its
        least active quarter every other call."""
        arena = self._arena
        reason = self._reason
        locked = set()
        for var in range(1, self.num_vars + 1):
            ref = reason[var]
            if ref != _NO_REASON:
                locked.add(ref)
        act = arena.act
        lbd = arena.lbd
        before = (len(self._tier_core) + len(self._tier_mid)
                  + len(self._tier_local))
        removed: set = set()

        local = self._tier_local
        local.sort(key=lambda r: (lbd[r], -act[r]))
        keep_count = len(local) // 2
        kept: List[int] = []
        for index, ref in enumerate(local):
            if index < keep_count or ref in locked:
                kept.append(ref)
            else:
                removed.add(ref)
        self._tier_local = kept

        self._reduce_calls += 1
        if self._reduce_calls % 2 == 0:
            mid = self._tier_mid
            mid.sort(key=lambda r: -act[r])
            keep_count = (3 * len(mid)) // 4
            kept = []
            for index, ref in enumerate(mid):
                if index < keep_count or ref in locked:
                    kept.append(ref)
                else:
                    removed.add(ref)
            self._tier_mid = kept

        if removed:
            self.stats.deleted_clauses += len(removed)
            for watchlist in self._watches:
                watchlist[:] = [r for r in watchlist if r not in removed]
            if self._proof_deleted is not None:
                for ref in removed:
                    self._proof_deleted.append(
                        [from_internal(lit)
                         for lit in arena.clause_lits(ref)])
            for ref in removed:
                arena.free_clause(ref)
            self._maybe_compact()
        after = (len(self._tier_core) + len(self._tier_mid)
                 + len(self._tier_local))
        hooks = self.hooks
        if hooks is not None:
            hooks.on_reduce_db(before, after, self.stats.conflicts)
            on_tiers = getattr(hooks, "on_tiers", None)
            if on_tiers is not None:
                on_tiers(*self.tier_sizes)

    def _maybe_compact(self) -> None:
        arena = self._arena
        if arena.wasted > 2048 and arena.wasted * 2 > len(arena.lits):
            live = len(arena.lits) - arena.wasted
            reclaimed = arena.compact()
            self.stats.arena_compactions += 1
            hooks = self.hooks
            if hooks is not None:
                on_compact = getattr(hooks, "on_arena_compact", None)
                if on_compact is not None:
                    on_compact(live, reclaimed)

    # ------------------------------------------------------------------
    # Inter-restart inprocessing
    # ------------------------------------------------------------------

    def _clear_root_reasons(self) -> None:
        """Drop reason refs of root-level assignments.

        Safe because conflict analysis, minimization, and final-core
        extraction all skip level-0 variables before dereferencing
        their reasons; afterwards no learned clause is locked, so the
        whole learned database is fair game for inprocessing.
        """
        reason = self._reason
        for ilit in self._trail:
            reason[ilit >> 1] = _NO_REASON

    def _inprocess_round(self) -> None:
        """Subsumption / self-subsuming resolution, then bounded
        vivification, over the learned database.  Runs at decision
        level 0 between restarts; every strengthened clause is RUP
        against the database at that moment and is appended to the
        proof log, so RUP replay stays valid.  May set ``_ok`` False
        (inprocessing derived the empty clause)."""
        before = self.stats.as_dict()
        self._clear_root_reasons()
        self._subsume_learned()
        if self._ok:
            self._vivify_learned()
        arena = self._arena
        dead = ClauseArena.DEAD
        flags = arena.flags
        self._tier_core = [r for r in self._tier_core
                           if not flags[r] & dead]
        self._tier_mid = [r for r in self._tier_mid
                          if not flags[r] & dead]
        self._tier_local = [r for r in self._tier_local
                            if not flags[r] & dead]
        self._maybe_compact()
        hooks = self.hooks
        if hooks is not None:
            on_inprocess = getattr(hooks, "on_inprocess", None)
            if on_inprocess is not None:
                delta = self.stats.delta(before)
                on_inprocess(delta["subsumed_clauses"],
                             delta["strengthened_clauses"],
                             delta["vivified_clauses"],
                             self.stats.conflicts)
            on_tiers = getattr(hooks, "on_tiers", None)
            if on_tiers is not None:
                on_tiers(*self.tier_sizes)

    def _subsume_learned(self) -> None:
        """Forward subsumption and self-subsuming resolution over the
        learned tiers, via occurrence lists and variable signatures."""
        arena = self._arena
        flags = arena.flags
        dead = ClauseArena.DEAD
        refs = [r for tier in (self._tier_core, self._tier_mid,
                               self._tier_local) for r in tier
                if not flags[r] & dead]
        if len(refs) < 2:
            return
        refs.sort(key=lambda r: arena.length[r])
        lit_sets: Dict[int, set] = {}
        sigs: Dict[int, int] = {}
        occ: Dict[int, List[int]] = {}
        for ref in refs:
            lits = arena.clause_lits(ref)
            lit_sets[ref] = set(lits)
            sig = 0
            for lit in lits:
                sig |= 1 << ((lit >> 1) & 63)
                occ.setdefault(lit, []).append(ref)
            sigs[ref] = sig

        for ref in refs:
            if flags[ref] & dead:
                continue
            mine = lit_sets[ref]
            sig = sigs[ref]
            size = len(mine)
            # Scan the occurrence list of the rarest literal.
            best_lit = min(mine, key=lambda lit: len(occ.get(lit, ())))
            for other in occ.get(best_lit, ()):
                if other == ref or flags[other] & dead:
                    continue
                theirs = lit_sets[other]
                if (len(theirs) < size or sig & ~sigs[other]
                        or not mine <= theirs):
                    continue
                # `other` is subsumed: delete it (no proof entry
                # needed; the RUP checker is monotone).
                self._delete_learned(other)
                self.stats.subsumed_clauses += 1
            # Self-subsuming resolution: if this clause with one
            # literal flipped is contained in another clause, that
            # literal's negation can be removed from the other clause.
            for lit in tuple(mine):
                neg = lit ^ 1
                rest = mine - {lit}
                for other in occ.get(neg, ()):
                    if other == ref or flags[other] & dead:
                        continue
                    theirs = lit_sets[other]
                    if (neg not in theirs or len(theirs) < size
                            or not rest <= theirs):
                        continue
                    new_lits = [q for q in arena.clause_lits(other)
                                if q != neg]
                    self.stats.strengthened_clauses += 1
                    self._replace_clause(other, new_lits)
                    if not self._ok:
                        return
                    if not flags[other] & dead:
                        lit_sets[other] = set(new_lits)
                        new_sig = 0
                        for q in new_lits:
                            new_sig |= 1 << ((q >> 1) & 63)
                        sigs[other] = new_sig

    def _vivify_learned(self) -> None:
        """Bounded vivification: assert the negation of a clause's
        literals one at a time; a conflict (or an implied literal)
        proves a strictly shorter clause, which replaces it."""
        arena = self._arena
        flags = arena.flags
        dead = ClauseArena.DEAD
        value = self._value
        candidates = [r for tier in (self._tier_mid, self._tier_local)
                      for r in tier
                      if not flags[r] & dead and arena.length[r] >= 3]
        candidates.sort(key=lambda r: (arena.lbd[r], -arena.act[r]))
        start_props = self.stats.propagations
        for ref in candidates[:self._vivify_cap]:
            if (self.stats.propagations - start_props
                    > self._vivify_prop_budget):
                break
            if flags[ref] & dead:
                continue
            lits = arena.clause_lits(ref)
            self._detach(ref)
            new_lits: List[int] = []
            for lit in lits:
                val = value[lit]
                if val == 1:
                    # Implied true by the asserted prefix: the prefix
                    # plus this literal subsumes the clause.
                    new_lits.append(lit)
                    break
                if val == 0:
                    # Implied false: the literal is redundant.
                    continue
                new_lits.append(lit)
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit ^ 1, _NO_REASON)
                if self._propagate() is not None:
                    break
            self._cancel_until(0)
            if len(new_lits) < len(lits):
                self.stats.vivified_clauses += 1
                self._replace_clause(ref, new_lits)
                if not self._ok:
                    return
            else:
                self._attach(ref)

    def _delete_learned(self, ref: int) -> None:
        """Detach and free one learned clause (tier lists are filtered
        at the end of the inprocessing round)."""
        arena = self._arena
        if self._proof_deleted is not None:
            self._proof_deleted.append(
                [from_internal(lit) for lit in arena.clause_lits(ref)])
        self._detach(ref)
        arena.free_clause(ref)
        self.stats.deleted_clauses += 1

    def _replace_clause(self, ref: int, new_lits: List[int]) -> None:
        """Install a strengthened version of a *detached-or-about-to-be*
        clause: drop root-falsified literals, log the result to the
        proof, and re-attach / enqueue / conclude unsat as its new
        length dictates.  Callers pass ``ref`` detached except when the
        clause still sits in the watch lists (subsumption path), which
        is detected via membership of its current watches."""
        arena = self._arena
        value = self._value
        level = self._level
        # The subsumption path calls with the clause still attached.
        o = arena.off[ref]
        if ref in self._watches[arena.lits[o]]:
            self._detach(ref)
        kept: List[int] = []
        for lit in new_lits:
            val = value[lit]
            if val == 1 and level[lit >> 1] == 0:
                # Satisfied at the root: the clause is redundant.
                if self._proof_deleted is not None:
                    self._proof_deleted.append(
                        [from_internal(q)
                         for q in arena.clause_lits(ref)])
                arena.free_clause(ref)
                self.stats.deleted_clauses += 1
                return
            if val == 0 and level[lit >> 1] == 0:
                continue  # falsified at the root: drop
            kept.append(lit)
        if self._proof_learned is not None:
            self._proof_learned.append(
                [from_internal(lit) for lit in kept])
        if not kept:
            self._ok = False
            arena.free_clause(ref)
            return
        if len(kept) == 1:
            arena.free_clause(ref)
            if not self._enqueue(kept[0], _NO_REASON):
                self._ok = False
                return
            if self._propagate() is not None:
                self._ok = False
            return
        arena.shrink(ref, kept)
        arena.lbd[ref] = min(arena.lbd[ref], len(kept) - 1)
        self._attach(ref)

    # ------------------------------------------------------------------
    # Top-level search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              limits: Optional[Limits] = None) -> Optional[bool]:
        """Solve under *assumptions* (DIMACS literals).

        Returns ``True`` (sat: :attr:`model` is valid), ``False``
        (unsat: :meth:`core` holds a subset of the assumptions that is
        jointly unsatisfiable with the clauses), or ``None`` when a
        resource budget expired — *limits* (wall-clock, conflicts,
        propagations, estimated memory), the legacy *max_conflicts*
        shorthand, or a cooperative :meth:`interrupt`.  After a
        ``None`` answer :attr:`limit_reason` names the expired budget;
        a ``None`` answer is never a spurious verdict — the search was
        simply abandoned.

        Budgets are per-call deltas, so each query against a shared
        incremental solver gets the full budget.  Conflict and
        propagation counters are checked every loop iteration; the
        clock and the memory estimate are polled every
        ``_LIMIT_POLL_INTERVAL`` iterations to keep the hot loop cheap.
        """
        self._model = []
        self._core = []
        self.limit_reason = None
        if not self._ok:
            return False
        self._ensure_vars(assumptions)
        assumption_ilits = [to_internal(lit) for lit in assumptions]
        self._assumption_set = set(assumption_ilits)

        effective = limits if limits is not None else Limits()
        if max_conflicts is not None:
            effective = effective.merged(Limits(max_conflicts=max_conflicts))
        deadline = (monotonic() + effective.max_time
                    if effective.max_time is not None else None)
        conflict_budget = effective.max_conflicts
        propagation_ceiling = (
            self.stats.propagations + effective.max_propagations
            if effective.max_propagations is not None else None)
        memory_budget = effective.max_memory_mb
        poll_countdown = _LIMIT_POLL_INTERVAL

        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        restart_base = self._restart_base
        restart_idx = 0
        conflicts_this_solve = 0
        max_learnts = max(1000, len(self._clauses) // 3)

        budget = _luby(restart_idx) * restart_base
        while True:
            if self._interrupted:
                return self._abandon(LimitReason.INTERRUPT)
            if (propagation_ceiling is not None
                    and self.stats.propagations > propagation_ceiling):
                return self._abandon(LimitReason.PROPAGATIONS)
            poll_countdown -= 1
            if poll_countdown <= 0:
                poll_countdown = _LIMIT_POLL_INTERVAL
                if deadline is not None and monotonic() >= deadline:
                    return self._abandon(LimitReason.TIME)
                if (memory_budget is not None
                        and self._estimate_memory_mb() > memory_budget):
                    return self._abandon(LimitReason.MEMORY)
                if (self.interrupt_check is not None
                        and self.interrupt_check()):
                    return self._abandon(LimitReason.INTERRUPT)
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_solve += 1
                if conflict_budget is not None and \
                        conflicts_this_solve > conflict_budget:
                    return self._abandon(LimitReason.CONFLICTS)
                if not self._trail_lim:
                    self._ok = False
                    return False
                learned, back_level = self._analyze(conflict)
                if self._proof_learned is not None:
                    self._proof_learned.append(
                        [from_internal(lit) for lit in learned])
                hooks = self.hooks
                # Decision level at the conflict, read before backjumping.
                conflict_level = len(self._trail_lim)
                self._cancel_until(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], _NO_REASON):
                        self._ok = False
                        return False
                    lbd = 1
                else:
                    lbd = self._compute_lbd(learned)
                    ref = self._arena.alloc(learned, learned=True)
                    self._arena.lbd[ref] = lbd
                    self._learned_tier(lbd).append(ref)
                    self.stats.learned_clauses += 1
                    self._attach(ref)
                    self._enqueue(learned[0], ref)
                if hooks is not None:
                    hooks.on_learned(lbd, len(learned), conflict_level)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                budget -= 1
                if budget <= 0:
                    restart_idx += 1
                    budget = _luby(restart_idx) * restart_base
                    self.stats.restarts += 1
                    if hooks is not None:
                        hooks.on_restart(self.stats.restarts,
                                         self.stats.conflicts)
                    self._cancel_until(0)
                    if (self._inprocess_enabled
                            and self.stats.conflicts >= self._inprocess_next):
                        self._inprocess_round()
                        self._inprocess_next = (self.stats.conflicts
                                                + self._inprocess_interval)
                        self._inprocess_interval += 2000
                        if not self._ok:
                            return False
                if (len(self._tier_mid) + len(self._tier_local)
                        > max_learnts):
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            # No conflict: extend the assignment.
            next_lit = self._next_assumption(assumption_ilits)
            if next_lit == 0:
                return False  # an assumption is already falsified
            if next_lit is None:
                var = self._decide()
                if var is None:
                    self._store_model()
                    self._cancel_until(0)
                    return True
                self.stats.decisions += 1
                ilit = (var << 1) | (0 if self._phase[var] else 1)
                self._new_decision_level()
                self._enqueue(ilit, _NO_REASON)
            else:
                self._new_decision_level()
                self._enqueue(next_lit, _NO_REASON)

    # ------------------------------------------------------------------
    # Resource control
    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the current (or next) :meth:`solve`.

        Safe to call from another thread: the solver checks the flag at
        every outer-loop iteration and returns ``None`` with
        :attr:`limit_reason` ``INTERRUPT``.  The flag is sticky — a
        solve started after the call aborts immediately — until
        :meth:`clear_interrupt`.
        """
        self._interrupted = True

    def clear_interrupt(self) -> None:
        """Re-arm the solver after an :meth:`interrupt`."""
        self._interrupted = False

    @property
    def interrupted(self) -> bool:
        return self._interrupted

    def _abandon(self, reason: LimitReason) -> Optional[bool]:
        """Give up the current search: backtrack fully, record *reason*.

        The clause database (including everything learned so far) is
        kept — a later solve call resumes with all that work — but no
        verdict is reported for this call.  Always returns ``None``,
        the UNKNOWN outcome of :meth:`solve`.
        """
        self._cancel_until(0)
        self.limit_reason = reason
        return None

    def _estimate_memory_mb(self) -> float:
        """An O(1) estimate of the clause-database footprint in MB.

        Python offers no portable live-RSS probe without third-party
        dependencies, so the memory limit bounds an *estimate* derived
        from the arena buffer length (including not-yet-compacted
        waste, which is real memory), the per-clause side-array slots,
        and the per-variable bookkeeping arrays.  Historically this
        walked every clause on each 128-conflict poll; the arena keeps
        the totals as plain list lengths, so the poll is constant-time.
        """
        arena = self._arena
        approx_bytes = (96 * arena.live_clauses + 12 * len(arena.lits)
                        + 60 * self.num_vars)
        return approx_bytes / 1e6

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        if len(self._trail_lim) > self.stats.max_decision_level:
            self.stats.max_decision_level = len(self._trail_lim)

    def _next_assumption(self, assumption_ilits: List[int]):
        """Return the next unassigned assumption literal.

        Returns ``None`` when all assumptions hold, or ``0`` when an
        assumption is falsified (after computing the core).
        """
        for ilit in assumption_ilits[len(self._trail_lim):]:
            val = self._value[ilit]
            if val == 1:
                # Already satisfied: still open a level so indexing by
                # decision level keeps matching the assumption order.
                self._new_decision_level()
                continue
            if val == 0:
                self._analyze_final(ilit)
                self._cancel_until(0)
                return 0
            return ilit
        return None

    def _analyze_final(self, failed_ilit: int) -> None:
        """Compute an assumption core given a falsified assumption."""
        core = {from_internal(failed_ilit)}
        seen = [0] * (self.num_vars + 1)
        queue = [failed_ilit ^ 1]
        seen[failed_ilit >> 1] = 1
        arena = self._arena
        buf = arena.lits
        offs = arena.off
        lens = arena.length
        while queue:
            lit = queue.pop()
            var = lit >> 1
            if self._level[var] == 0:
                continue
            ref = self._reason[var]
            if ref == _NO_REASON:
                if lit in self._assumption_set:
                    core.add(from_internal(lit))
                continue
            o = offs[ref]
            for k in range(o + 1, o + lens[ref]):
                q = buf[k]
                if not seen[q >> 1]:
                    seen[q >> 1] = 1
                    queue.append(q ^ 1)
        self._core = sorted(core, key=abs)

    def _store_model(self) -> None:
        model = [False] * (self.num_vars + 1)
        for var in range(1, self.num_vars + 1):
            val = self._value[var << 1]
            model[var] = val == 1 if val != _UNDEF else self._phase[var]
        self._model = model

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def model(self) -> List[bool]:
        """The satisfying assignment from the last sat answer.

        Indexed by variable; entry 0 is unused.
        """
        if not self._model:
            raise RuntimeError("no model available (last solve was not sat)")
        return self._model

    def model_value(self, lit: int) -> bool:
        """Evaluate a DIMACS literal under the stored model."""
        model = self.model
        v = lit if lit > 0 else -lit
        value = model[v]
        return value if lit > 0 else not value

    def enable_proof(self) -> None:
        """Start recording an unsat proof (original + learned clauses).

        Must be called before any clause is added; the log can be
        validated with :func:`repro.sat.proof.check_unsat_proof` after an
        assumption-free unsat answer.  Inprocessing stays proof-valid:
        every strengthened (self-subsumed or vivified) clause is RUP
        against the database at derivation time and is appended to the
        learned stream; deletions are recorded separately (DRUP-style)
        in :attr:`proof_deletions` but do not participate in checking,
        because the additions-only checker is monotone.
        """
        if self._clauses_added:
            raise RuntimeError("enable_proof() before adding clauses")
        self._proof_originals = []
        self._proof_learned = []
        self._proof_deleted = []

    @property
    def proof(self) -> Optional[tuple]:
        """The recorded (originals, learned) clause lists, if enabled."""
        if self._proof_originals is None:
            return None
        return (self._proof_originals, self._proof_learned)

    @property
    def proof_deletions(self) -> Optional[List[List[int]]]:
        """DRUP-style deletion records (observability; not checked)."""
        return self._proof_deleted

    def core(self) -> List[int]:
        """Assumption literals forming an unsat core of the last solve."""
        return list(self._core)

    @property
    def num_clauses(self) -> int:
        """Clauses currently in the database (after level-0
        simplification)."""
        return len(self._clauses)

    @property
    def num_clauses_added(self) -> int:
        """Clauses submitted via :meth:`add_clause`, before level-0
        simplification — the *encoded* model size."""
        return self._clauses_added

    @property
    def num_learned(self) -> int:
        return (len(self._tier_core) + len(self._tier_mid)
                + len(self._tier_local))
