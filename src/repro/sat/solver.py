"""A CDCL SAT solver.

This is the solving engine that replaces Z3 for the paper's model (which
is purely Boolean once cardinality sums are encoded).  It implements the
standard conflict-driven clause-learning architecture:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause minimization,
* VSIDS-style variable activities with phase saving,
* Luby-sequence restarts,
* learned-clause database reduction keyed on LBD ("glue"),
* solving under assumptions, with extraction of an unsatisfiable core
  over the assumption set (the ``analyzeFinal`` mechanism).

The public literal convention is DIMACS (signed integers); internally a
literal ``v``/``-v`` is encoded as ``2v``/``2v+1`` so flat lists can be
indexed by literal.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import monotonic
from typing import Dict, Iterable, List, Optional, Sequence

from .hooks import SolverHooks
from .limits import LimitReason, Limits
from .types import from_internal, to_internal

__all__ = ["SatSolver", "SolverStats", "Clause"]

_UNDEF = -1

#: Outer-loop iterations between wall-clock / memory polls.  Conflict,
#: propagation, and interrupt checks are plain integer/attribute reads
#: and run every iteration; ``monotonic()`` and the clause-database
#: size estimate are only sampled at this cadence so an unbounded solve
#: pays (almost) nothing for the limit machinery.
_LIMIT_POLL_INTERVAL = 128


class Clause:
    """A clause in the solver's database.

    ``lits`` holds internal literal indices.  The first two positions are
    the watched literals.
    """

    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: List[int], learned: bool = False) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.lbd = 0

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:
        body = " ".join(str(from_internal(lit)) for lit in self.lits)
        kind = "L" if self.learned else "O"
        return f"Clause[{kind}]({body})"


class SolverStats:
    """Counters describing the work a solve performed."""

    __slots__ = (
        "conflicts", "decisions", "propagations", "restarts",
        "learned_clauses", "deleted_clauses", "max_decision_level",
    )

    def __init__(self) -> None:
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.max_decision_level = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot.

        Monotone counters are differenced; ``max_decision_level`` (a
        high-water mark, not a counter) is reported as its current
        value.  Incremental facades use this to attribute search effort
        to individual queries on a long-lived solver.
        """
        current = self.as_dict()
        out = {name: current[name] - before.get(name, 0)
               for name in self.__slots__}
        out["max_decision_level"] = current["max_decision_level"]
        return out

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolverStats({fields})"


def _luby(i: int) -> int:
    """The i-th element (0-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size = 1
    seq = 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i = i % size
    return 1 << seq


class SatSolver:
    """An incremental CDCL solver over DIMACS-style literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        # Indexed by internal literal: 1 true, 0 false, -1 unassigned.
        self._value: List[int] = [_UNDEF, _UNDEF]
        # Indexed by variable.
        self._level: List[int] = [0]
        self._reason: List[Optional[Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [True]
        self._seen: List[int] = [0]
        # Indexed by internal literal: clauses watching that literal.
        self._watches: List[List[Clause]] = [[], []]

        self._clauses: List[Clause] = []
        self._learned: List[Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0

        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order_heap: List[tuple] = []

        self._ok = True
        self._interrupted = False
        #: Why the last :meth:`solve` returned ``None`` (UNKNOWN);
        #: ``None`` after a decided (sat/unsat) answer.
        self.limit_reason: Optional[LimitReason] = None
        self._clauses_added = 0
        self._proof_originals: Optional[List[List[int]]] = None
        self._proof_learned: Optional[List[List[int]]] = None
        self._model: List[bool] = []
        self._core: List[int] = []
        self._assumption_set: set = set()
        self.stats = SolverStats()
        #: Optional event observer (see :mod:`repro.sat.hooks`).  With
        #: the default ``None`` every call site is one attribute check.
        self.hooks: Optional[SolverHooks] = None

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._value.extend((_UNDEF, _UNDEF))
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        heappush(self._order_heap, (0.0, self.num_vars))
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        top = 0
        for lit in lits:
            v = lit if lit > 0 else -lit
            if v > top:
                top = v
        while self.num_vars < top:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns ``False`` when the solver's clause set has become
        trivially unsatisfiable (an empty clause, possibly after level-0
        simplification); further calls are then no-ops.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("add_clause is only legal at decision level 0")
        self._clauses_added += 1
        if self._proof_originals is not None:
            self._proof_originals.append(list(lits))
        self._ensure_vars(lits)

        seen = set()
        simplified: List[int] = []
        value = self._value
        for lit in lits:
            ilit = to_internal(lit)
            if ilit in seen:
                continue
            if ilit ^ 1 in seen:
                return True  # tautology
            val = value[ilit]
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # already false at level 0: drop the literal
            seen.add(ilit)
            simplified.append(ilit)

        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True

        clause = Clause(simplified, learned=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Add every clause; returns ``False`` once unsatisfiable."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause)
            if not ok:
                break
        return ok

    def _attach(self, clause: Clause) -> None:
        # Convention: _watches[lit] holds the clauses in which `lit` is
        # one of the two watched literals; the list is visited when `lit`
        # becomes false.
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    # ------------------------------------------------------------------
    # Assignment and propagation
    # ------------------------------------------------------------------

    def _enqueue(self, ilit: int, reason: Optional[Clause]) -> bool:
        val = self._value[ilit]
        if val != _UNDEF:
            return val == 1
        var = ilit >> 1
        self._value[ilit] = 1
        self._value[ilit ^ 1] = 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = not (ilit & 1)
        self._trail.append(ilit)
        return True

    def _propagate(self) -> Optional[Clause]:
        """Unit propagation; returns the conflicting clause, if any."""
        value = self._value
        watches = self._watches
        trail = self._trail
        while self._qhead < len(trail):
            ilit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = ilit ^ 1
            watchers = watches[false_lit]
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Put the false literal in position 1.
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                if value[first] == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(lits)):
                    cand = lits[k]
                    if value[cand] != 0:
                        lits[1] = cand
                        lits[k] = false_lit
                        watches[cand].append(clause)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = clause
                j += 1
                if value[first] == 0:
                    # Conflict: restore remaining watchers and bail out.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(trail)
                    return clause
                # Unit.
                var = first >> 1
                value[first] = 1
                value[first ^ 1] = 0
                self._level[var] = len(self._trail_lim)
                self._reason[var] = clause
                self._phase[var] = not (first & 1)
                trail.append(first)
            del watchers[j:]
        return None

    # ------------------------------------------------------------------
    # Decisions and backtracking
    # ------------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        heap = self._order_heap
        value = self._value
        while heap:
            act, var = heappop(heap)
            if value[var << 1] == _UNDEF and -act == self._activity[var]:
                return var
            if value[var << 1] == _UNDEF and -act != self._activity[var]:
                # Stale entry; the fresh one is elsewhere in the heap.
                continue
        # Heap exhausted: fall back to a scan (rare; keeps correctness if
        # stale entries were all consumed).
        for var in range(1, self.num_vars + 1):
            if value[var << 1] == _UNDEF:
                return var
        return None

    def _bump_var(self, var: int) -> None:
        act = self._activity[var] + self._var_inc
        self._activity[var] = act
        if act > 1e100:
            self._rescale_activities()
            act = self._activity[var]
        if self._value[var << 1] == _UNDEF:
            heappush(self._order_heap, (-act, var))

    def _rescale_activities(self) -> None:
        activity = self._activity
        for var in range(1, self.num_vars + 1):
            activity[var] *= 1e-100
        self._var_inc *= 1e-100
        self._order_heap = [
            (-activity[var], var)
            for var in range(1, self.num_vars + 1)
            if self._value[var << 1] == _UNDEF
        ]
        self._order_heap.sort()
        if self.hooks is not None:
            self.hooks.on_rescale()

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        value = self._value
        trail = self._trail
        for idx in range(len(trail) - 1, bound - 1, -1):
            ilit = trail[idx]
            var = ilit >> 1
            value[ilit] = _UNDEF
            value[ilit ^ 1] = _UNDEF
            self._reason[var] = None
            heappush(self._order_heap, (-self._activity[var], var))
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: Clause) -> tuple:
        """First-UIP analysis → (learned internal lits, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        current_level = len(self._trail_lim)

        counter = 0
        p = -1
        idx = len(trail) - 1
        clause: Optional[Clause] = conflict

        to_clear: List[int] = []
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 0 if p == -1 else 1
            lits = clause.lits
            for k in range(start, len(lits)):
                q = lits[k]
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                seen[var] = 1
                to_clear.append(var)
                self._bump_var(var)
                if level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Find the next literal to resolve on.
            while not seen[trail[idx] >> 1]:
                idx -= 1
            p = trail[idx]
            idx -= 1
            var = p >> 1
            clause = reason[var]
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
        learned[0] = p ^ 1

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for lit in learned[1:]:
            abstract_levels |= 1 << (level[lit >> 1] & 31)
        kept = [learned[0]]
        for lit in learned[1:]:
            if reason[lit >> 1] is None or not self._redundant(
                    lit, abstract_levels, to_clear):
                kept.append(lit)
        learned = kept

        for var in to_clear:
            seen[var] = 0

        if len(learned) == 1:
            back_level = 0
        else:
            # Move the literal with the highest level (below current) to
            # position 1.
            best = 1
            for k in range(2, len(learned)):
                if level[learned[k] >> 1] > level[learned[best] >> 1]:
                    best = k
            learned[1], learned[best] = learned[best], learned[1]
            back_level = level[learned[1] >> 1]
        return learned, back_level

    def _redundant(self, lit: int, abstract_levels: int,
                   to_clear: List[int]) -> bool:
        """Check whether *lit* is implied by other learned-clause literals."""
        seen = self._seen
        level = self._level
        reason = self._reason
        stack = [lit]
        top = len(to_clear)
        while stack:
            current = stack.pop()
            clause = reason[current >> 1]
            if clause is None:
                # Shouldn't happen for stacked literals, but be safe.
                for var in to_clear[top:]:
                    seen[var] = 0
                del to_clear[top:]
                return False
            for q in clause.lits[1:]:
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason[var] is not None and (
                        (1 << (level[var] & 31)) & abstract_levels):
                    seen[var] = 1
                    to_clear.append(var)
                    stack.append(q)
                else:
                    for cleared in to_clear[top:]:
                        seen[cleared] = 0
                    del to_clear[top:]
                    return False
        return True

    def _compute_lbd(self, lits: Sequence[int]) -> int:
        levels = {self._level[lit >> 1] for lit in lits}
        levels.discard(0)
        return len(levels)

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._cla_inc *= 1e-20

    # ------------------------------------------------------------------
    # Learned clause DB reduction
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        learned = self._learned
        locked = set()
        for var in range(1, self.num_vars + 1):
            clause = self._reason[var]
            if clause is not None:
                locked.add(id(clause))
        learned.sort(key=lambda c: (c.lbd, -c.activity))
        keep_count = len(learned) // 2
        kept: List[Clause] = []
        removed = set()
        for index, clause in enumerate(learned):
            if index < keep_count or clause.lbd <= 2 or id(clause) in locked:
                kept.append(clause)
            else:
                removed.add(id(clause))
                self.stats.deleted_clauses += 1
        if removed:
            for watchlist in self._watches:
                watchlist[:] = [c for c in watchlist if id(c) not in removed]
        before = len(learned)
        self._learned = kept
        if self.hooks is not None:
            self.hooks.on_reduce_db(before, len(kept),
                                    self.stats.conflicts)

    # ------------------------------------------------------------------
    # Top-level search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              limits: Optional[Limits] = None) -> Optional[bool]:
        """Solve under *assumptions* (DIMACS literals).

        Returns ``True`` (sat: :attr:`model` is valid), ``False``
        (unsat: :meth:`core` holds a subset of the assumptions that is
        jointly unsatisfiable with the clauses), or ``None`` when a
        resource budget expired — *limits* (wall-clock, conflicts,
        propagations, estimated memory), the legacy *max_conflicts*
        shorthand, or a cooperative :meth:`interrupt`.  After a
        ``None`` answer :attr:`limit_reason` names the expired budget;
        a ``None`` answer is never a spurious verdict — the search was
        simply abandoned.

        Budgets are per-call deltas, so each query against a shared
        incremental solver gets the full budget.  Conflict and
        propagation counters are checked every loop iteration; the
        clock and the memory estimate are polled every
        ``_LIMIT_POLL_INTERVAL`` iterations to keep the hot loop cheap.
        """
        self._model = []
        self._core = []
        self.limit_reason = None
        if not self._ok:
            return False
        self._ensure_vars(assumptions)
        assumption_ilits = [to_internal(lit) for lit in assumptions]
        self._assumption_set = set(assumption_ilits)

        effective = limits if limits is not None else Limits()
        if max_conflicts is not None:
            effective = effective.merged(Limits(max_conflicts=max_conflicts))
        deadline = (monotonic() + effective.max_time
                    if effective.max_time is not None else None)
        conflict_budget = effective.max_conflicts
        propagation_ceiling = (
            self.stats.propagations + effective.max_propagations
            if effective.max_propagations is not None else None)
        memory_budget = effective.max_memory_mb
        poll_countdown = _LIMIT_POLL_INTERVAL

        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        restart_base = 100
        restart_idx = 0
        conflicts_this_solve = 0
        max_learnts = max(1000, len(self._clauses) // 3)

        budget = _luby(restart_idx) * restart_base
        while True:
            if self._interrupted:
                return self._abandon(LimitReason.INTERRUPT)
            if (propagation_ceiling is not None
                    and self.stats.propagations > propagation_ceiling):
                return self._abandon(LimitReason.PROPAGATIONS)
            poll_countdown -= 1
            if poll_countdown <= 0:
                poll_countdown = _LIMIT_POLL_INTERVAL
                if deadline is not None and monotonic() >= deadline:
                    return self._abandon(LimitReason.TIME)
                if (memory_budget is not None
                        and self._estimate_memory_mb() > memory_budget):
                    return self._abandon(LimitReason.MEMORY)
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_solve += 1
                if conflict_budget is not None and \
                        conflicts_this_solve > conflict_budget:
                    return self._abandon(LimitReason.CONFLICTS)
                if not self._trail_lim:
                    self._ok = False
                    return False
                learned, back_level = self._analyze(conflict)
                if self._proof_learned is not None:
                    self._proof_learned.append(
                        [from_internal(lit) for lit in learned])
                hooks = self.hooks
                # Decision level at the conflict, read before backjumping.
                conflict_level = len(self._trail_lim)
                self._cancel_until(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return False
                    lbd = 1
                else:
                    clause = Clause(learned, learned=True)
                    clause.lbd = lbd = self._compute_lbd(learned)
                    self._learned.append(clause)
                    self.stats.learned_clauses += 1
                    self._attach(clause)
                    self._enqueue(learned[0], clause)
                if hooks is not None:
                    hooks.on_learned(lbd, len(learned), conflict_level)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                budget -= 1
                if budget <= 0:
                    restart_idx += 1
                    budget = _luby(restart_idx) * restart_base
                    self.stats.restarts += 1
                    if hooks is not None:
                        hooks.on_restart(self.stats.restarts,
                                         self.stats.conflicts)
                    self._cancel_until(0)
                if len(self._learned) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            # No conflict: extend the assignment.
            next_lit = self._next_assumption(assumption_ilits)
            if next_lit == 0:
                return False  # an assumption is already falsified
            if next_lit is None:
                var = self._decide()
                if var is None:
                    self._store_model()
                    self._cancel_until(0)
                    return True
                self.stats.decisions += 1
                ilit = (var << 1) | (0 if self._phase[var] else 1)
                self._new_decision_level()
                self._enqueue(ilit, None)
            else:
                self._new_decision_level()
                self._enqueue(next_lit, None)

    # ------------------------------------------------------------------
    # Resource control
    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Cooperatively abort the current (or next) :meth:`solve`.

        Safe to call from another thread: the solver checks the flag at
        every outer-loop iteration and returns ``None`` with
        :attr:`limit_reason` ``INTERRUPT``.  The flag is sticky — a
        solve started after the call aborts immediately — until
        :meth:`clear_interrupt`.
        """
        self._interrupted = True

    def clear_interrupt(self) -> None:
        """Re-arm the solver after an :meth:`interrupt`."""
        self._interrupted = False

    @property
    def interrupted(self) -> bool:
        return self._interrupted

    def _abandon(self, reason: LimitReason) -> Optional[bool]:
        """Give up the current search: backtrack fully, record *reason*.

        The clause database (including everything learned so far) is
        kept — a later solve call resumes with all that work — but no
        verdict is reported for this call.  Always returns ``None``,
        the UNKNOWN outcome of :meth:`solve`.
        """
        self._cancel_until(0)
        self.limit_reason = reason
        return None

    def _estimate_memory_mb(self) -> float:
        """A cheap estimate of the clause-database footprint in MB.

        Python offers no portable live-RSS probe without third-party
        dependencies, so the memory limit bounds an *estimate*: per
        clause-object overhead plus per-literal list slots plus the
        per-variable bookkeeping arrays.  The constants approximate
        CPython's actual object sizes; the point is catching runaway
        clause learning, not accounting precision.
        """
        total_lits = sum(len(c.lits) for c in self._clauses)
        total_lits += sum(len(c.lits) for c in self._learned)
        num_clauses = len(self._clauses) + len(self._learned)
        approx_bytes = (96 * num_clauses + 12 * total_lits
                        + 60 * self.num_vars)
        return approx_bytes / 1e6

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        if len(self._trail_lim) > self.stats.max_decision_level:
            self.stats.max_decision_level = len(self._trail_lim)

    def _next_assumption(self, assumption_ilits: List[int]):
        """Return the next unassigned assumption literal.

        Returns ``None`` when all assumptions hold, or ``0`` when an
        assumption is falsified (after computing the core).
        """
        for ilit in assumption_ilits[len(self._trail_lim):]:
            val = self._value[ilit]
            if val == 1:
                # Already satisfied: still open a level so indexing by
                # decision level keeps matching the assumption order.
                self._new_decision_level()
                continue
            if val == 0:
                self._analyze_final(ilit)
                self._cancel_until(0)
                return 0
            return ilit
        return None

    def _analyze_final(self, failed_ilit: int) -> None:
        """Compute an assumption core given a falsified assumption."""
        core = {from_internal(failed_ilit)}
        seen = [0] * (self.num_vars + 1)
        queue = [failed_ilit ^ 1]
        seen[failed_ilit >> 1] = 1
        while queue:
            lit = queue.pop()
            var = lit >> 1
            if self._level[var] == 0:
                continue
            reason = self._reason[var]
            if reason is None:
                if lit in self._assumption_set:
                    core.add(from_internal(lit))
                continue
            for q in reason.lits[1:]:
                if not seen[q >> 1]:
                    seen[q >> 1] = 1
                    queue.append(q ^ 1)
        self._core = sorted(core, key=abs)

    def _store_model(self) -> None:
        model = [False] * (self.num_vars + 1)
        for var in range(1, self.num_vars + 1):
            val = self._value[var << 1]
            model[var] = val == 1 if val != _UNDEF else self._phase[var]
        self._model = model

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def model(self) -> List[bool]:
        """The satisfying assignment from the last sat answer.

        Indexed by variable; entry 0 is unused.
        """
        if not self._model:
            raise RuntimeError("no model available (last solve was not sat)")
        return self._model

    def model_value(self, lit: int) -> bool:
        """Evaluate a DIMACS literal under the stored model."""
        model = self.model
        v = lit if lit > 0 else -lit
        value = model[v]
        return value if lit > 0 else not value

    def enable_proof(self) -> None:
        """Start recording an unsat proof (original + learned clauses).

        Must be called before any clause is added; the log can be
        validated with :func:`repro.sat.proof.check_unsat_proof` after an
        assumption-free unsat answer.
        """
        if self._clauses_added:
            raise RuntimeError("enable_proof() before adding clauses")
        self._proof_originals = []
        self._proof_learned = []

    @property
    def proof(self) -> Optional[tuple]:
        """The recorded (originals, learned) clause lists, if enabled."""
        if self._proof_originals is None:
            return None
        return (self._proof_originals, self._proof_learned)

    def core(self) -> List[int]:
        """Assumption literals forming an unsat core of the last solve."""
        return list(self._core)

    @property
    def num_clauses(self) -> int:
        """Clauses currently in the database (after level-0
        simplification)."""
        return len(self._clauses)

    @property
    def num_clauses_added(self) -> int:
        """Clauses submitted via :meth:`add_clause`, before level-0
        simplification — the *encoded* model size."""
        return self._clauses_added

    @property
    def num_learned(self) -> int:
        return len(self._learned)
