"""DIMACS CNF reading and writing.

The standard interchange format lets the substrate be exercised against
external benchmark files, and lets encodings produced by the SMT layer be
dumped for offline inspection.
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from .cnf import CNF

__all__ = ["parse_dimacs", "write_dimacs", "loads", "dumps"]


class DimacsError(ValueError):
    """Raised for malformed DIMACS input."""


def parse_dimacs(stream: Union[TextIO, str]) -> CNF:
    """Parse DIMACS CNF text from a file object or string."""
    if isinstance(stream, str):
        stream = io.StringIO(stream)

    declared_vars = None
    declared_clauses = None
    cnf = CNF()
    pending: list[int] = []

    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {lineno}: bad problem line {line!r}")
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: {exc}") from exc
            continue
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {lineno}: bad literal {token!r}") from exc
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)

    if pending:
        # Tolerate a final clause without the trailing 0, as many
        # generators emit it.
        cnf.add_clause(pending)

    if declared_vars is not None and declared_vars > cnf.num_vars:
        cnf.num_vars = declared_vars
    if declared_clauses is not None and declared_clauses != len(cnf.clauses):
        # Tautologies are dropped by CNF.add_clause, so a mismatch is
        # possible for legal input; only a larger-than-declared count is
        # suspicious enough to reject.
        if len(cnf.clauses) > declared_clauses:
            raise DimacsError(
                f"more clauses ({len(cnf.clauses)}) than declared "
                f"({declared_clauses})"
            )
    return cnf


def write_dimacs(cnf: CNF, stream: TextIO, comment: str = "") -> None:
    """Serialize *cnf* in DIMACS format onto *stream*."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {cnf.num_vars} {len(cnf.clauses)}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(lit) for lit in clause))
        stream.write(" 0\n")


def loads(text: str) -> CNF:
    """Parse DIMACS text into a :class:`CNF`."""
    return parse_dimacs(text)


def dumps(cnf: CNF, comment: str = "") -> str:
    """Serialize *cnf* to a DIMACS string."""
    buf = io.StringIO()
    write_dimacs(cnf, buf, comment=comment)
    return buf.getvalue()
