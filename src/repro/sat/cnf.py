"""A mutable CNF formula container.

:class:`CNF` is the interchange format between the SMT layer, the DIMACS
reader/writer, and the CDCL solver.  It stores clauses as lists of DIMACS
literals and tracks the number of allocated variables.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .types import TautologyError, normalize_clause

__all__ = ["CNF"]


class CNF:
    """A CNF formula: a bag of clauses over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0,
                 clauses: Optional[Iterable[Sequence[int]]] = None) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        #: Tautological clauses silently dropped by :meth:`add_clause`;
        #: the encoding linter reports this count (rule CNF002).
        self.tautologies_dropped = 0
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate *count* fresh variables and return them."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause, silently dropping tautologies.

        Variables mentioned by the clause beyond ``num_vars`` grow the
        variable count, so clauses can be added before declaring
        variables explicitly.
        """
        try:
            clause = normalize_clause(lits)
        except TautologyError:
            self.tautologies_dropped += 1
            return
        for lit in clause:
            v = lit if lit > 0 else -lit
            if v > self.num_vars:
                self.num_vars = v
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Sequence[int]]) -> None:
        """Add every clause from *clauses*."""
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[List[int]]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(num_vars={self.num_vars}, clauses={len(self.clauses)})"

    def copy(self) -> "CNF":
        """Return an independent copy of this formula."""
        dup = CNF(self.num_vars)
        dup.clauses = [list(c) for c in self.clauses]
        dup.tautologies_dropped = self.tautologies_dropped
        return dup

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a full assignment.

        *assignment* is indexed by variable (entry 0 unused).  Raises
        :class:`IndexError` if the assignment is too short.
        """
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                v = lit if lit > 0 else -lit
                if assignment[v] == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True
