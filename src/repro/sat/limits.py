"""Resource limits for solving.

Exact security-index / resiliency queries are NP-hard, and the paper's
own measurements (§VI) show solver time growing sharply with bus size
and budget ``k`` — so a production analyzer must *bound* every solve
rather than hope it finishes.  This module defines the vocabulary used
across the whole stack:

* :class:`Limits` — a declarative resource budget (wall-clock time,
  conflicts, propagations, and an optional memory estimate) accepted by
  :meth:`repro.sat.SatSolver.solve`, :meth:`repro.smt.Solver.check`,
  and every verification entry point above them;
* :class:`LimitReason` — *which* budget expired, reported alongside an
  ``UNKNOWN`` verdict;
* :exc:`ResourceLimitReached` — raised by drivers (searches,
  enumerations) that cannot return a sound answer once a query came
  back ``UNKNOWN``; carries the reason plus any partial results so a
  bounded run still yields its completed work.

An expired limit never produces a spurious ``SAT``/``UNSAT``: the
solver abandons the search and answers ``UNKNOWN``, and no consumer
treats ``UNKNOWN`` as a certificate (see ``docs/FORMAL_MODEL.md``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Optional

__all__ = ["LimitReason", "Limits", "ResourceLimitReached"]


class LimitReason(enum.Enum):
    """Which resource budget ended a solve early."""

    #: The wall-clock budget (``Limits.max_time``) expired.
    TIME = "time"
    #: The conflict budget (``Limits.max_conflicts``) was exhausted.
    CONFLICTS = "conflicts"
    #: The propagation budget (``Limits.max_propagations``) was
    #: exhausted.
    PROPAGATIONS = "propagations"
    #: The estimated clause-database memory exceeded
    #: ``Limits.max_memory_mb``.
    MEMORY = "memory"
    #: :meth:`~repro.sat.SatSolver.interrupt` was called.
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class Limits:
    """A resource budget for one (or a sequence of) solver calls.

    Every field is optional; ``None`` means unbounded.  Instances are
    immutable and picklable, so a single ``Limits`` value can be
    shipped to sweep workers unchanged.

    ``max_time`` is wall-clock seconds *per solver call*.
    ``max_conflicts`` and ``max_propagations`` count per-call deltas,
    not lifetime totals, so a shared incremental solver gives every
    query the same budget.  ``max_memory_mb`` bounds a cheap *estimate*
    of the clause-database footprint (the solver cannot observe real
    RSS portably); it is polled at the same cadence as the clock.
    """

    max_time: Optional[float] = None
    max_conflicts: Optional[int] = None
    max_propagations: Optional[int] = None
    max_memory_mb: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_time", "max_conflicts",
                     "max_propagations", "max_memory_mb"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, "
                                 f"got {value!r}")

    @property
    def unbounded(self) -> bool:
        """True when no budget is set at all."""
        return (self.max_time is None and self.max_conflicts is None
                and self.max_propagations is None
                and self.max_memory_mb is None)

    def merged(self, other: Optional["Limits"]) -> "Limits":
        """The tighter of two budgets, field by field."""
        if other is None:
            return self

        def tight(a: Optional[float], b: Optional[float]) -> Any:
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Limits(
            max_time=tight(self.max_time, other.max_time),
            max_conflicts=tight(self.max_conflicts, other.max_conflicts),
            max_propagations=tight(self.max_propagations,
                                   other.max_propagations),
            max_memory_mb=tight(self.max_memory_mb, other.max_memory_mb),
        )

    def with_time(self, max_time: Optional[float]) -> "Limits":
        """This budget with the wall-clock field replaced."""
        return replace(self, max_time=max_time)

    def describe(self) -> str:
        parts = []
        if self.max_time is not None:
            parts.append(f"time<={self.max_time:g}s")
        if self.max_conflicts is not None:
            parts.append(f"conflicts<={self.max_conflicts}")
        if self.max_propagations is not None:
            parts.append(f"propagations<={self.max_propagations}")
        if self.max_memory_mb is not None:
            parts.append(f"memory<={self.max_memory_mb:g}MB")
        return ", ".join(parts) if parts else "unbounded"


class ResourceLimitReached(RuntimeError):
    """A driver could not complete because a solve came back UNKNOWN.

    Raised by multi-query drivers — maximal-resiliency search, threat
    enumeration, cheapest-attack search — whose overall answer would be
    unsound with a hole in it.  The exception carries everything the
    caller can still use:

    * ``reason`` — the :class:`LimitReason` of the offending query;
    * ``partial`` — results completed before the budget expired
      (e.g. the threat vectors already enumerated), or ``None``;
    * ``bounds`` — for searches, a
      :class:`~repro.core.search.SearchBounds` bracketing the true
      answer.
    """

    def __init__(self, message: str,
                 reason: Optional[LimitReason] = None,
                 partial: Optional[Any] = None,
                 bounds: Optional[Any] = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.partial = partial
        self.bounds = bounds
