"""From-scratch SAT substrate: CNF, DIMACS I/O, a CDCL solver, AllSAT.

This package replaces the Z3 dependency of the original paper; the
paper's verification model is Boolean once its counting sums are
translated to cardinality encodings (see :mod:`repro.smt`).
"""

from .cnf import CNF
from .dimacs import dumps, loads, parse_dimacs, write_dimacs
from .enumeration import count_models, drive_enumeration, enumerate_models
from .hooks import SolverHooks
from .limits import LimitReason, Limits, ResourceLimitReached
from .solver import ClauseArena, SatSolver, SolverStats
from .types import TautologyError, neg, normalize_clause, var_of

__all__ = [
    "CNF",
    "ClauseArena",
    "LimitReason",
    "Limits",
    "ResourceLimitReached",
    "SatSolver",
    "SolverHooks",
    "SolverStats",
    "TautologyError",
    "count_models",
    "drive_enumeration",
    "dumps",
    "enumerate_models",
    "loads",
    "neg",
    "normalize_clause",
    "parse_dimacs",
    "var_of",
    "write_dimacs",
]
