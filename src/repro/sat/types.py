"""Core literal and clause types for the SAT substrate.

Literals follow the DIMACS convention at the public API: a variable is a
positive integer ``v`` (1-based) and its negation is ``-v``.  The solver
internally re-encodes literals as non-negative indices (``2*v`` for the
positive literal, ``2*v + 1`` for the negative one) so that lists can be
indexed directly; the helpers here convert between the two forms.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "neg",
    "var_of",
    "to_internal",
    "from_internal",
    "internal_neg",
    "normalize_clause",
    "TautologyError",
]


class TautologyError(ValueError):
    """Raised when a clause contains a literal and its negation."""


def neg(lit: int) -> int:
    """Return the negation of a DIMACS literal."""
    return -lit


def var_of(lit: int) -> int:
    """Return the (positive) variable underlying a DIMACS literal."""
    return lit if lit > 0 else -lit


def to_internal(lit: int) -> int:
    """Convert a DIMACS literal to the internal index encoding."""
    if lit > 0:
        return lit << 1
    return ((-lit) << 1) | 1


def from_internal(ilit: int) -> int:
    """Convert an internal literal index back to DIMACS form."""
    v = ilit >> 1
    return -v if ilit & 1 else v


def internal_neg(ilit: int) -> int:
    """Negate an internal literal index."""
    return ilit ^ 1


def normalize_clause(lits: Iterable[int]) -> List[int]:
    """Deduplicate a clause and detect tautologies.

    Returns the sorted, duplicate-free clause.  Raises
    :class:`TautologyError` when the clause contains complementary
    literals (such a clause is always true and should be dropped by the
    caller), and :class:`ValueError` on a zero literal.
    """
    seen = set()
    out: List[int] = []
    for lit in lits:
        if lit == 0:
            raise ValueError("0 is not a valid DIMACS literal")
        if lit in seen:
            continue
        if -lit in seen:
            raise TautologyError(f"clause contains both {lit} and {-lit}")
        seen.add(lit)
        out.append(lit)
    out.sort(key=abs)
    return out


def max_var(clauses: Sequence[Sequence[int]]) -> int:
    """Return the largest variable index mentioned by *clauses*."""
    best = 0
    for clause in clauses:
        for lit in clause:
            v = lit if lit > 0 else -lit
            if v > best:
                best = v
    return best
