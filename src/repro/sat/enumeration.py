"""Model enumeration (AllSAT) with projection.

Threat-space analysis (Fig. 7(b) of the paper) needs *all* threat
vectors, not just one.  This module enumerates satisfying assignments of
a solver projected onto a chosen variable set, blocking each found
projection with a clause so it is not reported twice.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from .solver import SatSolver

__all__ = ["enumerate_models", "count_models"]


def enumerate_models(
    solver: SatSolver,
    projection: Sequence[int],
    limit: Optional[int] = None,
    assumptions: Sequence[int] = (),
    max_conflicts_per_model: Optional[int] = None,
) -> Iterator[List[int]]:
    """Yield models projected onto *projection* (positive variable ids).

    Each yielded model is the list of DIMACS literals over the projection
    variables (``v`` if true, ``-v`` if false).  After each model, a
    blocking clause over the projection is added to *solver*, so the
    enumeration has the side effect of permanently excluding the found
    projections.

    ``limit`` bounds the number of models; ``None`` enumerates all.
    Raises :class:`RuntimeError` if a per-model conflict budget expires.
    """
    produced = 0
    while limit is None or produced < limit:
        result = solver.solve(assumptions=assumptions,
                              max_conflicts=max_conflicts_per_model)
        if result is None:
            raise RuntimeError("conflict budget exhausted during enumeration")
        if not result:
            return
        cube = [v if solver.model_value(v) else -v for v in projection]
        yield list(cube)
        produced += 1
        if not solver.add_clause([-lit for lit in cube]):
            return


def count_models(
    solver: SatSolver,
    projection: Sequence[int],
    assumptions: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """Count the projected models (up to *limit*, if given)."""
    return sum(1 for _ in enumerate_models(
        solver, projection, limit=limit, assumptions=assumptions))


def enumerate_filtered(
    solver: SatSolver,
    projection: Sequence[int],
    keep: Callable[[List[int]], bool],
    limit: Optional[int] = None,
) -> List[List[int]]:
    """Enumerate projected models, retaining those accepted by *keep*."""
    out: List[List[int]] = []
    for cube in enumerate_models(solver, projection, limit=limit):
        if keep(cube):
            out.append(cube)
    return out
