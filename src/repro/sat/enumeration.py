"""Model enumeration (AllSAT) with projection.

Threat-space analysis (Fig. 7(b) of the paper) needs *all* threat
vectors, not just one.  This module enumerates satisfying assignments of
a solver projected onto a chosen variable set, blocking each found
projection with a clause so it is not reported twice.

The check / extract / block loop is the same at every level of the
stack — raw projected cubes here, decoded
:class:`~repro.core.results.ThreatVector` objects in
:mod:`repro.core.incremental` and :mod:`repro.core.analyzer` — so the
loop itself is factored into :func:`drive_enumeration`.  It follows the
three-valued convention of :mod:`repro.sat.limits`: an expired budget
raises :exc:`~repro.sat.limits.ResourceLimitReached` carrying every
result found before the limit (*partial-model salvage*) and the
:class:`~repro.sat.limits.LimitReason` naming the spent budget, never a
bare ``RuntimeError`` that discards completed work.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

from .limits import LimitReason, Limits, ResourceLimitReached
from .solver import SatSolver

__all__ = ["drive_enumeration", "enumerate_models", "count_models"]

T = TypeVar("T")


def drive_enumeration(
    check: Callable[[], Optional[bool]],
    extract: Callable[[], T],
    block: Callable[[T], bool],
    limit: Optional[int] = None,
    what: str = "model",
    limit_reason: Optional[Callable[[], Optional[LimitReason]]] = None,
) -> Iterator[T]:
    """The generic AllSAT loop: check, extract, block, repeat.

    *check* runs one (bounded) satisfiability query and returns the
    three-valued answer — ``True`` (a model is loaded), ``False``
    (space exhausted), ``None`` (budget expired).  *extract* decodes
    the loaded model into a result; *block* excludes it from future
    checks and returns ``False`` to end the enumeration early (e.g.
    when nothing more minimal can exist).  *limit* bounds the number of
    results; ``None`` enumerates all.

    On a ``None`` check the driver raises
    :exc:`~repro.sat.limits.ResourceLimitReached` whose ``partial``
    holds every result produced so far (they were also already yielded)
    and whose ``reason`` comes from *limit_reason*, so a bounded run
    still salvages its completed work.
    """
    found: List[T] = []
    while limit is None or len(found) < limit:
        result = check()
        if result is None:
            reason = limit_reason() if limit_reason is not None else None
            raise ResourceLimitReached(
                f"solver budget exhausted during {what} enumeration "
                f"({len(found)} result(s) found before the limit)",
                reason=reason,
                partial=list(found))
        if not result:
            return
        item = extract()
        found.append(item)
        yield item
        if not block(item):
            return


def enumerate_models(
    solver: SatSolver,
    projection: Sequence[int],
    limit: Optional[int] = None,
    assumptions: Sequence[int] = (),
    max_conflicts_per_model: Optional[int] = None,
    limits: Optional[Limits] = None,
) -> Iterator[List[int]]:
    """Yield models projected onto *projection* (positive variable ids).

    Each yielded model is the list of DIMACS literals over the projection
    variables (``v`` if true, ``-v`` if false).  After each model, a
    blocking clause over the projection is added to *solver*, so the
    enumeration has the side effect of permanently excluding the found
    projections.

    ``limit`` bounds the number of models; ``None`` enumerates all.
    *limits* (and the legacy *max_conflicts_per_model* shorthand) bound
    each individual solve; an expired budget raises
    :exc:`~repro.sat.limits.ResourceLimitReached` carrying the models
    already found and the expired budget's
    :class:`~repro.sat.limits.LimitReason`.
    """

    def check() -> Optional[bool]:
        return solver.solve(assumptions=assumptions,
                            max_conflicts=max_conflicts_per_model,
                            limits=limits)

    def extract() -> List[int]:
        return [v if solver.model_value(v) else -v for v in projection]

    def block(cube: List[int]) -> bool:
        return solver.add_clause([-lit for lit in cube])

    return drive_enumeration(check, extract, block, limit=limit,
                             what="projected model",
                             limit_reason=lambda: solver.limit_reason)


def count_models(
    solver: SatSolver,
    projection: Sequence[int],
    assumptions: Sequence[int] = (),
    limit: Optional[int] = None,
) -> int:
    """Count the projected models (up to *limit*, if given)."""
    return sum(1 for _ in enumerate_models(
        solver, projection, limit=limit, assumptions=assumptions))


def enumerate_filtered(
    solver: SatSolver,
    projection: Sequence[int],
    keep: Callable[[List[int]], bool],
    limit: Optional[int] = None,
) -> List[List[int]]:
    """Enumerate projected models, retaining those accepted by *keep*."""
    out: List[List[int]] = []
    for cube in enumerate_models(solver, projection, limit=limit):
        if keep(cube):
            out.append(cube)
    return out
