"""The solver event-hook protocol.

:class:`SatSolver` exposes a ``hooks`` attribute; when it is not
``None`` the search calls these methods at its rare structural points.
The protocol lives in :mod:`repro.sat` (not :mod:`repro.obs`) so the
solver never imports the telemetry layer — observers depend on the
solver, never the reverse.  The concrete tracing implementation is
:class:`repro.obs.tracer.SolverProbe`.

Overhead discipline: with ``hooks is None`` (the default) every call
site is a single attribute check.  ``on_learned`` is the only hook on
a per-conflict path; the others fire per restart / clause-DB reduction
/ activity rescale, which are orders of magnitude rarer.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["SolverHooks"]


@runtime_checkable
class SolverHooks(Protocol):
    """What a solver observer implements.  All methods must be cheap."""

    def on_learned(self, lbd: int, size: int, level: int) -> None:
        """A clause was learned from a conflict.

        *lbd* is its literal-block distance (1 for unit clauses),
        *size* its literal count, and *level* the decision level at
        which the conflict occurred (before backjumping).
        """

    def on_restart(self, restarts: int, conflicts: int) -> None:
        """The search restarted (*restarts* so far, at *conflicts*)."""

    def on_reduce_db(self, before: int, after: int,
                     conflicts: int) -> None:
        """The learned-clause DB was reduced from *before* to *after*
        clauses, at *conflicts* total conflicts."""

    def on_rescale(self) -> None:
        """VSIDS activities were rescaled to avoid overflow."""

    # The hooks below were added with the clause-arena solver.  The
    # solver dispatches them through ``getattr`` so observer classes
    # written against the original four-method protocol keep working
    # unchanged; implement them to see inprocessing and arena events.

    def on_inprocess(self, subsumed: int, strengthened: int,
                     vivified: int, conflicts: int) -> None:
        """An inter-restart inprocessing round finished, having
        *subsumed* / *strengthened* (self-subsuming resolution) /
        *vivified* that many learned clauses, at *conflicts* total."""

    def on_arena_compact(self, live: int, reclaimed: int) -> None:
        """The clause arena was compacted: *live* literal slots kept,
        *reclaimed* waste slots released."""

    def on_tiers(self, core: int, mid: int, local: int) -> None:
        """Learned-clause tier sizes after a reduction or an
        inprocessing round."""
