"""Unsat-proof checking (DRUP-style, additions only).

When the analyzer certifies a system resilient, that certificate is an
*unsat* answer — the most consequential result the tool produces and
the one a buggy solver could silently get wrong.  With proof logging
enabled, the CDCL solver records every learned clause; this module
re-validates the run independently: each learned clause must be a
**reverse unit propagation (RUP)** consequence of the original clauses
plus the previously checked ones, and unit propagation on the final
database must yield a conflict (the empty clause).

The checker shares no code with the solver's propagation loop — it is a
from-scratch two-watched-literal propagator — so a bug would have to be
made twice, in different code, to go unnoticed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .types import to_internal

__all__ = ["ProofChecker", "check_unsat_proof", "ProofError"]

_UNDEF = -1


class ProofError(ValueError):
    """Raised when a proof step is not a RUP consequence."""


class ProofChecker:
    """Incremental RUP checker over DIMACS clauses."""

    def __init__(self, num_vars: int) -> None:
        self.num_vars = 0
        self._value: List[int] = [_UNDEF, _UNDEF]
        self._watches: List[List[List[int]]] = [[], []]
        self._trail: List[int] = []
        self._units: List[int] = []
        self._contradiction = False
        self._ensure(num_vars)

    def _ensure(self, num_vars: int) -> None:
        while self.num_vars < num_vars:
            self.num_vars += 1
            self._value.extend((_UNDEF, _UNDEF))
            self._watches.append([])
            self._watches.append([])

    # ------------------------------------------------------------------

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause to the database (no RUP check)."""
        ilits = [to_internal(l) for l in lits]
        top = max((abs(l) for l in lits), default=0)
        self._ensure(top)
        if not ilits:
            self._contradiction = True
            return
        if len(ilits) == 1:
            self._units.append(ilits[0])
            return
        clause = list(ilits)
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    def _assign(self, ilit: int, trail: List[int]) -> bool:
        """Assign ilit true; False on immediate contradiction."""
        val = self._value[ilit]
        if val == 1:
            return True
        if val == 0:
            return False
        self._value[ilit] = 1
        self._value[ilit ^ 1] = 0
        trail.append(ilit)
        return True

    def _propagate(self, queue: List[int], trail: List[int]) -> bool:
        """Unit propagation; returns False when a conflict arises."""
        head = 0
        while head < len(queue):
            ilit = queue[head]
            head += 1
            false_lit = ilit ^ 1
            watchers = self._watches[false_lit]
            i = 0
            j = 0
            n = len(watchers)
            value = self._value
            while i < n:
                clause = watchers[i]
                i += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if value[first] == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    cand = clause[k]
                    if value[cand] != 0:
                        clause[1] = cand
                        clause[k] = false_lit
                        self._watches[cand].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                watchers[j] = clause
                j += 1
                if value[first] == 0:
                    while i < n:
                        watchers[j] = watchers[i]
                        i += 1
                        j += 1
                    del watchers[j:]
                    return False
                # Unit: assign first.
                value[first] = 1
                value[first ^ 1] = 0
                trail.append(first)
                queue.append(first)
            del watchers[j:]
        return True

    def _unwind(self, trail: List[int]) -> None:
        for ilit in trail:
            self._value[ilit] = _UNDEF
            self._value[ilit ^ 1] = _UNDEF

    # ------------------------------------------------------------------

    def is_rup(self, lits: Sequence[int]) -> bool:
        """Whether *lits* is a RUP consequence of the current database."""
        if self._contradiction:
            return True
        top = max((abs(l) for l in lits), default=0)
        self._ensure(top)
        trail: List[int] = []
        queue: List[int] = []
        ok = True
        # Assert the standing units first.
        for unit in self._units:
            if not self._assign(unit, trail):
                ok = False
                break
            queue.append(unit)
        if ok:
            # Assume the negation of the candidate clause.
            for lit in lits:
                ilit = to_internal(lit) ^ 1
                if not self._assign(ilit, trail):
                    ok = False
                    break
                queue.append(ilit)
        if ok:
            ok = not self._propagate(queue, trail)
        else:
            ok = True  # contradiction while assuming: RUP holds
        self._unwind(trail)
        return ok

    def check_and_add(self, lits: Sequence[int]) -> None:
        """Verify one proof step and admit it to the database."""
        if not self.is_rup(lits):
            raise ProofError(f"clause {list(lits)} is not RUP")
        self.add_clause(lits)


def check_unsat_proof(original_clauses: Sequence[Sequence[int]],
                      learned_clauses: Sequence[Sequence[int]],
                      num_vars: Optional[int] = None) -> bool:
    """Validate a full unsat proof.

    Returns ``True`` iff every learned clause is RUP in order and the
    final database propagates to a conflict (empty clause).  Raises
    :class:`ProofError` on the first failing step.
    """
    top = num_vars or 0
    checker = ProofChecker(top)
    for clause in original_clauses:
        checker.add_clause(clause)
    for clause in learned_clauses:
        checker.check_and_add(clause)
    if not checker.is_rup([]):
        raise ProofError("final database does not propagate to a conflict")
    return True
