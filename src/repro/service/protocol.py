"""The service wire protocol: payload parsing and result shaping.

Everything the daemon reads from or writes to a client lives here, so
the HTTP layer stays a thin transport and the session/job layers work
with the same typed objects (:class:`~repro.core.specs.ResiliencySpec`,
:class:`~repro.sat.Limits`) as the rest of the engine.

Verdict payloads carry an ``exit_code`` field mirroring the CLI
convention exactly — **0** the property holds, **1** a threat vector
exists, **3** UNKNOWN (a resource budget expired or the job was
cancelled via cooperative interrupt) — so a script driving the service
and a script driving ``repro verify`` branch on the same values.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.results import Status, ThreatVector, VerificationResult
from ..core.search import SearchBounds
from ..core.specs import Property, ResiliencySpec
from ..sat.limits import Limits

__all__ = [
    "EXIT_HOLDS",
    "EXIT_THREAT",
    "EXIT_UNKNOWN",
    "JobKind",
    "JobState",
    "ServiceError",
    "bounds_payload",
    "cancelled_payload",
    "limits_from_payload",
    "limits_key",
    "max_resiliency_payload",
    "result_payload",
    "spec_from_payload",
    "threat_payload",
    "vectors_payload",
]

#: Exit-code convention shared with the CLI (see :mod:`repro.cli`).
EXIT_HOLDS = 0
EXIT_THREAT = 1
EXIT_UNKNOWN = 3


class ServiceError(Exception):
    """A client-visible error with an HTTP status and stable code.

    The daemon maps it to ``{"error": {"code": ..., "message": ...}}``
    with the carried status; anything *not* a ``ServiceError`` escaping
    a handler is a 500 with the exception type as the code.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


class JobKind(enum.Enum):
    """What a job asks the engine to do."""

    VERIFY = "verify"
    ENUMERATE = "enumerate"
    MAX_RESILIENCY = "max-resiliency"


def _positive_int(payload: Mapping[str, Any], field: str,
                  allow_zero: bool = True) -> Optional[int]:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < 0 or (value == 0 and not allow_zero):
        raise ServiceError(400, "bad-spec",
                           f"field {field!r} must be a non-negative "
                           f"integer, got {value!r}")
    return value


def spec_from_payload(payload: Mapping[str, Any]) -> ResiliencySpec:
    """Build a :class:`ResiliencySpec` from a request's ``spec`` object.

    Accepted fields: ``property`` (default ``observability``), either
    ``k`` or both ``k1``/``k2``, ``r`` (bad data, default 1), and
    ``link_k``.  Raises :class:`ServiceError` (400) on anything
    malformed, with a message the client can act on.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError(400, "bad-spec", "'spec' must be an object")
    prop_value = payload.get("property", Property.OBSERVABILITY.value)
    try:
        prop = Property(prop_value)
    except ValueError:
        raise ServiceError(
            400, "bad-spec",
            f"unknown property {prop_value!r}; expected one of "
            f"{', '.join(p.value for p in Property)}") from None
    k = _positive_int(payload, "k")
    k1 = _positive_int(payload, "k1")
    k2 = _positive_int(payload, "k2")
    r = _positive_int(payload, "r")
    link_k = _positive_int(payload, "link_k")
    try:
        return ResiliencySpec.for_property(
            prop, r=1 if r is None else r, k=k, k1=k1, k2=k2,
            link_k=link_k)
    except ValueError as exc:
        raise ServiceError(400, "bad-spec", str(exc)) from None


def limits_from_payload(
        payload: Optional[Mapping[str, Any]]) -> Optional[Limits]:
    """Build :class:`Limits` from a request's ``limits`` object.

    Accepted fields: ``max_time`` (seconds), ``max_conflicts``,
    ``max_propagations``, ``max_memory_mb``.  ``None``/absent means the
    request asks for no budget of its own (the tenant policy may still
    impose one).
    """
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ServiceError(400, "bad-limits", "'limits' must be an object")
    known = ("max_time", "max_conflicts", "max_propagations",
             "max_memory_mb")
    unknown = set(payload) - set(known)
    if unknown:
        raise ServiceError(400, "bad-limits",
                           f"unknown limit field(s): "
                           f"{', '.join(sorted(unknown))}")
    values: Dict[str, Any] = {}
    for field in known:
        value = payload.get(field)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            raise ServiceError(400, "bad-limits",
                               f"limit {field!r} must be a non-negative "
                               f"number, got {value!r}")
        values[field] = value
    if not values:
        return None
    if "max_conflicts" in values:
        values["max_conflicts"] = int(values["max_conflicts"])
    if "max_propagations" in values:
        values["max_propagations"] = int(values["max_propagations"])
    return Limits(**values)


def limits_key(limits: Optional[Limits]) -> Tuple[Any, ...]:
    """A hashable identity for a budget, for request coalescing.

    Two requests coalesce only when their *effective* budgets match —
    a 1-second query and an unbounded query must not share a solve, or
    the unbounded client would inherit the other's UNKNOWN.
    """
    if limits is None:
        return ()
    return (limits.max_time, limits.max_conflicts,
            limits.max_propagations, limits.max_memory_mb)


# ----------------------------------------------------------------------
# Result shaping
# ----------------------------------------------------------------------

def threat_payload(threat: ThreatVector) -> Dict[str, Any]:
    """A threat vector as a JSON-able object."""
    return {
        "ieds": sorted(threat.failed_ieds),
        "rtus": sorted(threat.failed_rtus),
        "links": [list(pair) for pair in sorted(threat.failed_links)],
        "undelivered_measurements":
            sorted(threat.undelivered_measurements),
        "uncovered_states": sorted(threat.uncovered_states),
        "minimal": threat.minimal,
        "size": threat.size,
    }


def result_payload(result: VerificationResult) -> Dict[str, Any]:
    """One verification verdict as the job's JSON result."""
    if result.status is Status.RESILIENT:
        exit_code = EXIT_HOLDS
    elif result.status is Status.THREAT_FOUND:
        exit_code = EXIT_THREAT
    else:
        exit_code = EXIT_UNKNOWN
    return {
        "status": result.status.value,
        "exit_code": exit_code,
        "spec": result.spec.describe(),
        "threat": (threat_payload(result.threat)
                   if result.threat is not None else None),
        "limit_reason": result.limit_reason,
        "backend": result.backend,
        "num_vars": result.num_vars,
        "num_clauses": result.num_clauses,
        "times": dict(result.phase_times),
        "stats": dict(result.stats),
    }


def vectors_payload(spec: ResiliencySpec, vectors: List[ThreatVector],
                    incomplete: bool = False,
                    limit_reason: Optional[str] = None) -> Dict[str, Any]:
    """An enumeration outcome as the job's JSON result."""
    if incomplete:
        exit_code = EXIT_UNKNOWN
    else:
        exit_code = EXIT_THREAT if vectors else EXIT_HOLDS
    return {
        "status": "incomplete" if incomplete else "complete",
        "exit_code": exit_code,
        "spec": spec.describe(),
        "count": len(vectors),
        "vectors": [threat_payload(vec) for vec in vectors],
        "limit_reason": limit_reason,
    }


def bounds_payload(bounds: SearchBounds) -> Dict[str, Any]:
    """A search bracket as a JSON-able object."""
    return {
        "lower": bounds.lower,
        "upper": bounds.upper,
        "exact": bounds.exact,
        "unknown_budgets": list(bounds.unknown_budgets),
        "describe": bounds.describe(),
    }


def max_resiliency_payload(prop_value: str, total: SearchBounds,
                           ied: SearchBounds,
                           rtu: SearchBounds) -> Dict[str, Any]:
    """The three maximal-resiliency brackets as the job's JSON result.

    Exit code 0 when every bracket is exact; 3 (UNKNOWN) when a probe
    budget expired and a bracket is sound but not tight — mirroring
    ``repro max-resiliency``.
    """
    exact = total.exact and ied.exact and rtu.exact
    return {
        "status": "complete" if exact else "incomplete",
        "exit_code": EXIT_HOLDS if exact else EXIT_UNKNOWN,
        "property": prop_value,
        "total": bounds_payload(total),
        "ied": bounds_payload(ied),
        "rtu": bounds_payload(rtu),
        "limit_reason": None if exact else "budget",
    }


def cancelled_payload(spec_text: str, reason: str) -> Dict[str, Any]:
    """The exit-code-3-equivalent payload of a cancelled job.

    A cancelled or disconnected request gets exactly what an expired
    budget would produce: UNKNOWN with ``limit_reason`` ``interrupt``,
    certifying nothing.
    """
    return {
        "status": Status.UNKNOWN.value,
        "exit_code": EXIT_UNKNOWN,
        "spec": spec_text,
        "threat": None,
        "limit_reason": "interrupt",
        "cancelled": True,
        "cancel_reason": reason,
    }
