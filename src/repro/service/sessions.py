"""The session layer: warm engine state keyed by config fingerprint.

A *session* is everything the engine accumulates for one SCADA
configuration that is worth keeping between requests: the lint verdict
(run once, at session creation), the shared
:class:`~repro.core.reference.ReferenceEvaluator`, and — through the
session-owned :class:`~repro.engine.EncodingCache` — the warm
:class:`~repro.core.incremental.IncrementalContext`\\ s whose base
encodings and learned clauses make repeat traffic cheap.  Before the
service existed this state was constructed inline per CLI process and
thrown away on exit; here it is extracted into an LRU-managed pool the
daemon owns.

Sessions are keyed by a digest of the configuration's *semantic*
fingerprints (network + problem, plus the backend and cardinality
encoding that shape the cached contexts), so two clients POSTing
byte-different but semantically identical configs land on the same
warm session.

Eviction drops a session *cleanly*: its encoding cache is cleared so
every warm context (each owning a full solver) is released in one step,
and in-flight jobs holding a reference to the session's engine finish
against their own reference — the LRU only forgets the *routing* entry.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.analyzer import ConfigurationLintError
from ..engine.cache import EncodingCache
from ..engine.engine import VerificationEngine
from ..scada.config_io import CaseConfig, ConfigError, parse_config
from .protocol import ServiceError

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One configuration's warm verification state."""

    session_id: str
    config: CaseConfig
    engine: VerificationEngine
    network_fingerprint: str
    problem_fingerprint: str
    backend: str
    created: float
    last_used: float
    queries: int = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()
        self.queries += 1

    def describe(self) -> Dict[str, Any]:
        # Lifetime solver-effort totals for this session's engine —
        # how the warm state earned its keep.  Tier keys are last-seen
        # gauges; inprocessing counters show DB maintenance work.
        solver = {
            key: (round(value, 4) if key == "check_time"
                  else int(value))
            for key, value in sorted(
                self.engine.cumulative_stats.items())
        }
        return {
            "session": self.session_id,
            "backend": self.backend,
            "queries": self.queries,
            "devices": len(self.config.network.devices),
            "states": self.config.problem.num_states,
            "warm_contexts": len(self.engine.cache),
            "cache": {
                "hits": self.engine.cache.hits,
                "misses": self.engine.cache.misses,
                "evictions": self.engine.cache.evictions,
            },
            "solver": solver,
            "age_s": round(time.monotonic() - self.created, 3),
            "idle_s": round(time.monotonic() - self.last_used, 3),
        }


class SessionManager:
    """LRU pool of warm sessions, safe to share across threads.

    ``maxsize`` bounds the number of *sessions*; each session's own
    :class:`EncodingCache` (``contexts_per_session``) bounds the warm
    contexts — and therefore live solvers — it may hold.  Session
    creation (parse + lint + engine construction) happens on executor
    threads, so every public method takes the manager lock.
    """

    def __init__(self, maxsize: int = 8,
                 backend: str = "assumption",
                 card_encoding: str = "totalizer",
                 contexts_per_session: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.backend = backend
        self.card_encoding = card_encoding
        self.contexts_per_session = contexts_per_session
        self.created = 0
        self.reused = 0
        self.evicted = 0
        self.invalidated = 0
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------

    def fingerprint(self, config: CaseConfig,
                    backend: Optional[str] = None) -> Tuple[str, str, str]:
        """(session id, network fp, problem fp) for a configuration."""
        network_fp = config.network.fingerprint()
        problem_fp = config.problem.fingerprint()
        digest = hashlib.sha256()
        for part in (network_fp, problem_fp, backend or self.backend,
                     self.card_encoding):
            digest.update(part.encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()[:16], network_fp, problem_fp

    def parse(self, config_text: str) -> CaseConfig:
        """Parse config text, mapping defects to client-visible errors."""
        try:
            # Lenient parse: structural defects reach the lint gate in
            # open(), which reports all of them at once.
            return parse_config(config_text, strict=False)
        except (ConfigError, ValueError) as exc:
            raise ServiceError(400, "bad-config", str(exc)) from None

    def open(self, config: CaseConfig,
             backend: Optional[str] = None,
             lint: bool = True) -> Tuple[Session, bool]:
        """The warm session for *config*, creating it if needed.

        Returns ``(session, created)``.  A create runs the lint gate
        (unless ``lint=False``) and may evict the least-recently-used
        session to stay within ``maxsize``.  Raises
        :class:`ServiceError` (422) when the configuration fails lint.
        """
        backend = backend or self.backend
        session_id, network_fp, problem_fp = self.fingerprint(
            config, backend)
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                self._sessions.move_to_end(session_id)
                session.last_used = time.monotonic()
                self.reused += 1
                return session, False
        # Engine construction (and lint) runs outside the lock: it can
        # take seconds on a large grid, and other requests must not
        # stall behind it.  A racing create of the same session is
        # resolved below — first insert wins, the loser's engine is
        # dropped before it ever solved anything.
        try:
            engine = VerificationEngine(
                config.network, config.problem, backend=backend,
                card_encoding=self.card_encoding, lint=lint,
                cache=EncodingCache(maxsize=self.contexts_per_session))
        except ConfigurationLintError as exc:
            raise ServiceError(
                422, "lint-failed",
                f"configuration fails lint: {exc}") from None
        except ValueError as exc:
            raise ServiceError(400, "bad-config", str(exc)) from None
        now = time.monotonic()
        session = Session(
            session_id=session_id, config=config, engine=engine,
            network_fingerprint=network_fp, problem_fingerprint=problem_fp,
            backend=backend, created=now, last_used=now)
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:
                self._sessions.move_to_end(session_id)
                self.reused += 1
                return existing, False
            self._sessions[session_id] = session
            self.created += 1
            while len(self._sessions) > self.maxsize:
                _, victim = self._sessions.popitem(last=False)
                self._drop(victim)
                self.evicted += 1
            return session, True

    def get(self, session_id: str) -> Session:
        """The session by id; raises :class:`ServiceError` (404)."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise ServiceError(404, "no-such-session",
                                   f"unknown session {session_id!r} "
                                   f"(expired from the LRU, or never "
                                   f"created)")
            self._sessions.move_to_end(session_id)
            return session

    def invalidate(self, session_id: str) -> bool:
        """Explicitly drop one session and its warm contexts.

        The operator's signal that the underlying grid changed: the
        session's encoding cache is cleared (releasing every warm
        solver) and the id forgotten, so the next request with the same
        configuration builds a fresh session.  True when something was
        dropped.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                return False
            self._drop(session)
            self.invalidated += 1
            return True

    def clear(self) -> None:
        with self._lock:
            for session in self._sessions.values():
                self._drop(session)
            self._sessions.clear()

    @staticmethod
    def _drop(session: Session) -> None:
        # Clearing the session-owned cache releases every warm context
        # (each holding a full solver) in one step.  The engine object
        # itself may still be referenced by an in-flight job, which
        # finishes against its own reference and is then collected.
        session.engine.cache.clear()

    # ------------------------------------------------------------------

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [session.describe()
                    for session in self._sessions.values()]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "open": len(self._sessions),
                "created": self.created,
                "reused": self.reused,
                "evicted": self.evicted,
                "invalidated": self.invalidated,
            }
