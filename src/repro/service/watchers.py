"""Service-hosted watchers: streaming re-verification in the daemon.

A *watch* wraps one :class:`~repro.stream.watcher.Watcher` in the
service: clients attach a floor (``POST /watch``), feed it timestamped
events (``POST /watch/{id}/events``), and long-poll the structured
alarms (``GET /watch/{id}/alarms``) the watcher raises when resiliency
drops below the floor.  The :class:`WatcherManager` owns the pool —
bounded, id-addressed, safe under the daemon's single event loop.

Threading contract: all bookkeeping here runs on the event loop; the
actual solver work (watcher construction's baseline pass, and each
event's re-verification) runs on :class:`ExecutorBridge` worker
threads under a per-call :class:`~repro.obs.tracer.Tracer`.  Each
watch keeps a long-lived in-memory tracer of its own; per-call
telemetry is absorbed into it (one ``meta``, one ``metrics``, exactly
like a sweep worker's records), so ``GET /watch/{id}/trace`` serves a
schema-valid trace of the watch's whole life, and the ``stream.*``
counters also fold into the service registry behind ``/metrics``.

Ingest is serialized per watch with an :class:`asyncio.Lock` — events
mutate live solver state, so two batches must never interleave — while
different watches proceed in parallel on separate worker threads.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.specs import ResiliencySpec
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, thread_activate
from ..sat.limits import Limits
from ..scada.config_io import CaseConfig
from ..stream import Alarm, StreamError, StreamEvent, Watcher, WatchUpdate
from .executor import ExecutorBridge
from .protocol import ServiceError

__all__ = ["LiveWatch", "WatcherManager"]


class LiveWatch:
    """One hosted watcher plus its service-side bookkeeping."""

    def __init__(self, watch_id: str, watcher: Watcher, tenant: str,
                 session_id: Optional[str], tracer: Tracer) -> None:
        self.watch_id = watch_id
        self.watcher = watcher
        self.tenant = tenant
        self.session_id = session_id
        self.tracer = tracer
        self.created = time.monotonic()
        self.closed = False
        self.ingests = 0
        #: Serializes event batches — they mutate live solver state.
        self.lock = asyncio.Lock()
        # Long-poll wakeup: waiters grab the current event and wait on
        # it; each alarm-producing ingest sets-and-rotates it.
        self._changed = asyncio.Event()

    # -- long-poll plumbing ---------------------------------------------

    @property
    def changed(self) -> asyncio.Event:
        """The event the *next* alarm (or close) will set."""
        return self._changed

    def notify(self) -> None:
        stale, self._changed = self._changed, asyncio.Event()
        stale.set()

    def alarms_since(self, since: int) -> List[Alarm]:
        """Alarms with seq > *since* (alarm seqs start at 1)."""
        return [alarm for alarm in self.watcher.alarms
                if alarm.seq > since]

    # -- introspection --------------------------------------------------

    def trace_records(self) -> List[Dict[str, Any]]:
        """A complete, schema-valid trace (meta first, metrics last)."""
        return list(self.tracer.records) + [
            {"type": "metrics", **self.tracer.registry.snapshot()}]

    def describe(self) -> Dict[str, Any]:
        return {
            "watch": self.watch_id,
            "tenant": self.tenant,
            "session": self.session_id,
            "closed": self.closed,
            "ingests": self.ingests,
            "age_s": round(time.monotonic() - self.created, 3),
            **self.watcher.snapshot(),
        }


class WatcherManager:
    """The daemon's bounded pool of live watches."""

    def __init__(self, bridge: ExecutorBridge, registry: MetricsRegistry,
                 maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.bridge = bridge
        self.registry = registry
        self.maxsize = maxsize
        self.created = 0
        self.closed = 0
        self._watches: Dict[str, LiveWatch] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._watches)

    # -- traced bridge hops ---------------------------------------------

    async def _traced(self, watch_meta: Dict[str, Any],
                      fn: Callable[[], Any],
                      into: Optional[Tracer] = None) -> Any:
        """Run *fn* on a worker thread under a fresh tracer.

        The call's records and metrics are absorbed into the watch's
        long-lived tracer (when given) and the ``stream.*`` metrics
        additionally merge into the service registry, so they surface
        in ``/metrics`` alongside the job-layer counters.  Exceptions
        propagate to the caller *after* the telemetry is folded —
        a failed ingest keeps its evidence, like a failed job does.
        """
        tracer = Tracer(meta=watch_meta)

        def body() -> Tuple[Any, Optional[BaseException]]:
            try:
                with thread_activate(tracer):
                    return fn(), None
            except Exception as exc:  # noqa: BLE001 — refolded below
                return None, exc

        value, error = await self.bridge.run(body)
        tracer.close()
        if into is not None:
            into.absorb(tracer.export())
        self.registry.merge(tracer.registry.snapshot())
        if error is not None:
            raise error
        return value

    # -- lifecycle ------------------------------------------------------

    async def create(self, config: CaseConfig,
                     floors: Sequence[ResiliencySpec],
                     backend: str = "assumption",
                     card_encoding: str = "totalizer",
                     limits: Optional[Limits] = None,
                     engine_cache: int = 4,
                     tenant: str = "anonymous",
                     session_id: Optional[str] = None) -> LiveWatch:
        """Build a watcher (baseline pass included) and register it."""
        if len(self._watches) >= self.maxsize:
            raise ServiceError(
                429, "too-many-watchers",
                f"watch pool is full ({self.maxsize}); close one with "
                f"DELETE /watch/{{id}}")
        self._counter += 1
        watch_id = f"w{self._counter:06d}"
        meta = {"kind": "watch", "watch": watch_id, "tenant": tenant,
                "backend": backend,
                "floors": [spec.describe() for spec in floors]}
        # The watch's long-lived tracer: the attach hop's baseline
        # spans land in it first, every ingest's records follow.
        tracer = Tracer(meta=dict(meta))
        try:
            watcher = await self._traced(
                dict(meta, step="attach"),
                lambda: Watcher(config, floors, backend=backend,
                                card_encoding=card_encoding,
                                limits=limits,
                                engine_cache=engine_cache),
                into=tracer)
        except StreamError as exc:
            raise ServiceError(400, "bad-watch", str(exc)) from None
        except ValueError as exc:
            raise ServiceError(400, "bad-config", str(exc)) from None
        watch = LiveWatch(watch_id, watcher, tenant, session_id, tracer)
        self._watches[watch_id] = watch
        self.created += 1
        if watcher.alarms:
            watch.notify()
        return watch

    def get(self, watch_id: str) -> LiveWatch:
        watch = self._watches.get(watch_id)
        if watch is None:
            raise ServiceError(404, "no-such-watch",
                               f"unknown watch {watch_id!r} "
                               f"(closed, or never created)")
        return watch

    def close(self, watch_id: str) -> LiveWatch:
        """Detach the watch; its warm engines go with it."""
        watch = self.get(watch_id)
        del self._watches[watch_id]
        watch.closed = True
        self.closed += 1
        watch.notify()  # wake long-pollers so they see `closed`
        return watch

    def clear(self) -> None:
        for watch_id in list(self._watches):
            self.close(watch_id)

    # -- ingestion ------------------------------------------------------

    async def ingest(self, watch: LiveWatch,
                     events: Sequence[StreamEvent]) -> List[WatchUpdate]:
        """Apply an event batch in order; returns one update each."""
        if not events:
            raise ServiceError(400, "bad-events",
                               "'events' must be a non-empty list")
        async with watch.lock:
            if watch.closed:
                raise ServiceError(409, "watch-closed",
                                   f"watch {watch.watch_id} is closed")
            meta = {"kind": "watch-ingest", "watch": watch.watch_id,
                    "events": len(events)}

            def apply_all() -> List[WatchUpdate]:
                return [watch.watcher.apply(event) for event in events]

            try:
                updates = await self._traced(meta, apply_all,
                                             into=watch.tracer)
            except StreamError as exc:
                raise ServiceError(422, "bad-event", str(exc)) from None
            watch.ingests += 1
            if any(update.alarms for update in updates):
                watch.notify()
            return updates

    # -- introspection --------------------------------------------------

    def describe(self) -> List[Dict[str, Any]]:
        return [watch.describe() for watch in self._watches.values()]

    def stats(self) -> Dict[str, int]:
        watches = self._watches.values()
        return {
            "open": len(self._watches),
            "created": self.created,
            "closed": self.closed,
            "events": sum(w.watcher.events_seen for w in watches),
            "alarms": sum(len(w.watcher.alarms) for w in watches),
            "below_floor": sum(len(w.watcher.below_floor)
                               for w in watches),
        }
