"""Verification-as-a-service: the engine behind an asyncio daemon.

The service turns the per-process CLI workflow — parse, lint, encode,
solve, exit — into a long-lived daemon that keeps expensive state warm
between requests.  Four layers, one per module:

* :mod:`.sessions` — warm engine state (lint verdicts, encoding
  caches, live incremental solvers) keyed by configuration
  fingerprint, LRU-bounded, explicitly invalidatable.
* :mod:`.jobs` — admission and scheduling: a bounded queue,
  per-tenant budgets, request coalescing (identical in-flight queries
  share one solve), cooperative cancellation via the engine's sticky
  interrupt.
* :mod:`.executor` — the worker pool bridging asyncio to seconds-long
  CPU-bound solves: a warm thread lane and a cold
  :class:`~repro.engine.SweepExecutor` process lane.
* :mod:`.http` — the stdlib-asyncio HTTP transport and ``/metrics``.

:mod:`.protocol` defines the wire shapes shared by all of them, and
:mod:`.client` is the matching stdlib client (``repro client``).

Start a daemon with ``repro serve`` (or :class:`ReproService`
programmatically); drive it with ``repro client`` or any HTTP client.
"""

from .client import ServiceClient, ServiceClientError
from .executor import ExecutorBridge
from .http import ReproService
from .jobs import Job, JobManager, TenantPolicy
from .protocol import JobKind, JobState, ServiceError
from .sessions import Session, SessionManager

__all__ = [
    "ExecutorBridge",
    "Job",
    "JobKind",
    "JobManager",
    "JobState",
    "ReproService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "Session",
    "SessionManager",
    "TenantPolicy",
]
