"""The job layer: a bounded queue with coalescing and tenant limits.

Every solver-backed request becomes a :class:`Job` with a stable id,
observable state, and a result payload clients poll (or wait) for.
Three policies live here:

**Request coalescing.**  Identical in-flight requests — same session
fingerprint, same spec, same effective budget — share one solve: the
first submission creates the job, later ones attach to it and are
counted on ``service.coalesce.hits``.  N concurrent identical POSTs
therefore produce exactly one solver run, which is the whole point of
fronting the engine with a daemon: security-index-style traffic against
one grid differs only in budgets and properties, and the duplicates are
free.  Coalescing never crosses budgets: a 1-second query must not
inherit an unbounded query's solve (or vice versa), so the effective
:class:`~repro.sat.Limits` is part of the key.

**Bounded admission.**  A global queue limit plus per-tenant
:class:`TenantPolicy` caps (pending jobs, and a budget ceiling merged
into every request via ``Limits.merged``) keep one client from
occupying the pool.  Over-limit submissions are rejected with 429 at
admission — never silently queued without bound.

**Cooperative cancellation.**  Cancelling a queued job simply marks it;
cancelling a *running* warm-lane job arms the engine's sticky
:meth:`~repro.engine.VerificationEngine.interrupt`, the in-flight solve
returns UNKNOWN (limit reason ``interrupt``), the warm context survives
for the next request, and the job finishes with the exit-code-3
payload.  The interrupt is cleared only after the solve has fully
unwound, and solves on one session are serialized (they share live
solver state), so a cancel can never leak into a neighbour's query.

Jobs run under a per-job in-memory tracer (installed with
:func:`~repro.obs.tracer.thread_activate`, so concurrent jobs on
different threads never interleave): the job's JSONL trace is
downloadable afterwards and validates against the
:mod:`repro.obs.schema`, and its metrics fold into the service
registry that ``/metrics`` exports.
"""

from __future__ import annotations

import asyncio
import sys
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.specs import Property
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, thread_activate
from ..sat.limits import Limits, ResourceLimitReached
from .executor import ExecutorBridge, sweep_max_searches
from .protocol import (
    JobKind,
    JobState,
    ServiceError,
    cancelled_payload,
    max_resiliency_payload,
    result_payload,
    vectors_payload,
)
from .sessions import Session

__all__ = ["Job", "JobManager", "JobOutcome", "TenantPolicy",
           "enumerate_fn", "max_resiliency_fn", "max_resiliency_sweep_fn",
           "run_traced", "verify_fn"]


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant may ask of the service.

    ``limits`` is a per-solve budget ceiling merged (tighter-field-wise)
    into every request's own limits; ``max_pending`` bounds the
    tenant's queued-plus-running jobs.
    """

    limits: Optional[Limits] = None
    max_pending: int = 16

    def effective_limits(self,
                         requested: Optional[Limits]) -> Optional[Limits]:
        """The tighter of the request's and the tenant's budgets."""
        if requested is None:
            return self.limits
        return requested.merged(self.limits)


@dataclass
class JobOutcome:
    """What a job's worker-thread body hands back to the scheduler.

    A body that crashed still produces an outcome: ``error`` carries the
    one-line description, ``error_tb`` the full traceback (operator
    log only), and ``trace_records`` / ``metrics`` whatever telemetry
    accumulated before the failure — a failed job's trace is evidence,
    not garbage.
    """

    payload: Dict[str, Any]
    trace_records: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_tb: Optional[str] = None


@dataclass
class Job:
    """One submitted request and everything observable about it."""

    job_id: str
    kind: JobKind
    key: Optional[Hashable]
    session_id: Optional[str]
    tenant: str
    spec_text: str
    runner: Callable[[], Awaitable[JobOutcome]]
    interrupt: Optional[Callable[[], None]]
    clear_interrupt: Optional[Callable[[], None]]
    cancel_on_disconnect: bool = False
    state: JobState = JobState.QUEUED
    submitted: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    coalesced: int = 0
    watchers: int = 0
    cancel_requested: bool = False
    cancel_reason: Optional[str] = None
    interrupt_armed: bool = False
    trace_records: List[Dict[str, Any]] = field(default_factory=list)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def describe(self) -> Dict[str, Any]:
        now = time.monotonic()
        # A finished job's age stops at the finish stamp — it should
        # not keep growing while the record sits in history.
        end = self.finished if self.finished is not None else now
        info: Dict[str, Any] = {
            "job": self.job_id,
            "kind": self.kind.value,
            "state": self.state.value,
            "session": self.session_id,
            "tenant": self.tenant,
            "spec": self.spec_text,
            "coalesced": self.coalesced,
            "age_s": round(end - self.submitted, 3),
        }
        if self.started is not None:
            info["queued_s"] = round(self.started - self.submitted, 3)
            run_end = self.finished if self.finished is not None else now
            info["run_s"] = round(run_end - self.started, 3)
        if self.result is not None:
            info["result"] = self.result
        if self.error is not None:
            info["error"] = self.error
        if self.cancel_reason is not None:
            info["cancel_reason"] = self.cancel_reason
        return info


# ----------------------------------------------------------------------
# Worker-thread job bodies (warm lane)
# ----------------------------------------------------------------------

def run_traced(meta: Mapping[str, Any],
               fn: Callable[[], Dict[str, Any]]) -> JobOutcome:
    """Run *fn* under a per-job tracer; bundle payload + telemetry.

    Executes on a bridge worker thread.  The tracer is installed as the
    *thread's* override, so concurrent jobs trace independently and a
    process-wide CLI tracer (if any) never sees job internals.  The
    returned records are a complete, schema-valid trace (meta first,
    metrics last) ready to serialize as JSONL.

    A crash inside *fn* does not forfeit the telemetry: the tracer is
    closed normally and the partial trace plus metrics ride back on an
    outcome with ``error`` set, so the scheduler can mark the job
    FAILED while keeping the evidence downloadable.
    """
    tracer = Tracer(meta=dict(meta))
    error: Optional[str] = None
    error_tb: Optional[str] = None
    payload: Dict[str, Any] = {}
    try:
        with thread_activate(tracer):
            payload = fn()
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        error_tb = traceback.format_exc()
    finally:
        tracer.close()
    return JobOutcome(payload=payload,
                      trace_records=list(tracer.records),
                      metrics=tracer.registry.snapshot(),
                      error=error, error_tb=error_tb)


def verify_fn(session: Session, spec: Any, limits: Optional[Limits],
              minimize: bool = True) -> Callable[[], Dict[str, Any]]:
    """The worker-thread body of a verify job."""

    def fn() -> Dict[str, Any]:
        session.touch()
        result = session.engine.verify(spec, minimize=minimize,
                                       limits=limits)
        return result_payload(result)

    return fn


def enumerate_fn(session: Session, spec: Any, limits: Optional[Limits],
                 limit: Optional[int] = None,
                 minimal: bool = True) -> Callable[[], Dict[str, Any]]:
    """The worker-thread body of an enumerate job.

    An expired budget (or a cancel interrupt) mid-enumeration is not an
    error: the vectors found so far come back in an ``incomplete``
    payload with exit code 3.
    """

    def fn() -> Dict[str, Any]:
        session.touch()
        try:
            vectors = session.engine.enumerate_threat_vectors(
                spec, limit=limit, minimal=minimal, limits=limits)
        except ResourceLimitReached as exc:
            partial = list(exc.partial or [])
            reason = exc.reason.value if exc.reason is not None else None
            return vectors_payload(spec, partial, incomplete=True,
                                   limit_reason=reason)
        return vectors_payload(spec, vectors)

    return fn


def max_resiliency_fn(session: Session, prop: Property,
                      limits: Optional[Limits],
                      screen: bool = True) -> Callable[[], Dict[str, Any]]:
    """Warm-lane body: the three searches on the session's engine.

    Probes share the session's warm contexts, and a cancel interrupt
    reaches them cooperatively — interrupted probes come back UNKNOWN,
    leaving sound (inexact) brackets and an exit-code-3 payload.
    """

    def fn() -> Dict[str, Any]:
        session.touch()
        engine = session.engine
        total = engine.max_total_resiliency_bounds(
            prop, limits=limits, screen=screen)
        ied = engine.max_ied_resiliency_bounds(
            prop, limits=limits, screen=screen)
        rtu = engine.max_rtu_resiliency_bounds(
            prop, limits=limits, screen=screen)
        return max_resiliency_payload(prop.value, total, ied, rtu)

    return fn


def max_resiliency_sweep_fn(config_text: str, prop: Property,
                            backend: str, limits: Optional[Limits],
                            screen: bool,
                            jobs: int) -> Callable[[], Dict[str, Any]]:
    """Cold-lane body: the three searches fanned over a process pool.

    No warm state and no cooperative interrupt (the workers are
    separate processes) — but the sweep layer's retries and crash
    salvage apply, and per-probe :class:`Limits` still bound the work.
    """

    def fn() -> Dict[str, Any]:
        total, ied, rtu = sweep_max_searches(
            config_text, prop.value, backend, limits, screen, jobs)
        return max_resiliency_payload(prop.value, total, ied, rtu)

    return fn


# ----------------------------------------------------------------------


class JobManager:
    """Owns every job: admission, scheduling, coalescing, cancellation.

    All state transitions happen on the event loop thread — submit,
    cancel, and finalize are plain methods called from coroutines — so
    the manager needs no locks of its own.  Only the job *bodies* run
    on worker threads, and they touch nothing here.
    """

    def __init__(self, bridge: ExecutorBridge,
                 registry: MetricsRegistry,
                 queue_limit: int = 64,
                 default_policy: Optional[TenantPolicy] = None,
                 tenants: Optional[Mapping[str, TenantPolicy]] = None,
                 history: int = 256) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.bridge = bridge
        self.registry = registry
        self.queue_limit = queue_limit
        self.default_policy = default_policy or TenantPolicy()
        self.tenants: Dict[str, TenantPolicy] = dict(tenants or {})
        self.history = history
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: Dict[Hashable, Job] = {}
        self._session_locks: Dict[str, asyncio.Lock] = {}
        #: Caps concurrently *running* jobs at the pool width; admitted
        #: jobs beyond it wait here (the bounded queue's run side).
        self._slots = asyncio.Semaphore(bridge.workers)
        self._counter = 0
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        #: Optional hook fired (on the event loop) after a job reaches
        #: a terminal state — the HTTP layer uses it to mirror traces
        #: to disk.  Exceptions are logged, never fatal.
        self.on_finish: Optional[Callable[[Job], None]] = None

    # -- admission ------------------------------------------------------

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)

    def _pending(self, tenant: Optional[str] = None) -> int:
        return sum(1 for job in self._jobs.values()
                   if not job.state.finished
                   and (tenant is None or job.tenant == tenant))

    def submit(self, kind: JobKind,
               runner: Callable[[], Awaitable[JobOutcome]],
               *,
               key: Optional[Hashable] = None,
               session_id: Optional[str] = None,
               tenant: str = "anonymous",
               spec_text: str = "",
               interrupt: Optional[Callable[[], None]] = None,
               clear_interrupt: Optional[Callable[[], None]] = None,
               cancel_on_disconnect: bool = False
               ) -> Tuple[Job, bool]:
        """Admit one request; returns ``(job, coalesced)``.

        With a *key*, an unfinished job under the same key absorbs this
        submission — the caller gets the existing job and no new work
        enters the system.  A twin that is already doomed
        (``cancel_requested``) never absorbs: the newcomer must not
        inherit a cancelled verdict it never asked for.  Otherwise
        admission checks the global and per-tenant pending caps (429 on
        breach) and schedules the job.
        """
        if key is not None:
            twin = self._inflight.get(key)
            if (twin is not None and not twin.state.finished
                    and not twin.cancel_requested):
                twin.coalesced += 1
                # Any poll-mode interest pins the job: a later waiter's
                # disconnect must not cancel a solve whose result a
                # poll-mode submitter still plans to fetch.
                if not cancel_on_disconnect:
                    twin.cancel_on_disconnect = False
                self.registry.count("service.coalesce.hits")
                return twin, True
        if self._pending() >= self.queue_limit:
            self.registry.count("service.jobs.rejected")
            raise ServiceError(429, "queue-full",
                               f"job queue is full "
                               f"({self.queue_limit} pending)")
        policy = self.policy_for(tenant)
        if self._pending(tenant) >= policy.max_pending:
            self.registry.count("service.jobs.rejected")
            raise ServiceError(429, "tenant-queue-full",
                               f"tenant {tenant!r} already has "
                               f"{policy.max_pending} pending job(s)")
        self._counter += 1
        job = Job(job_id=f"j{self._counter:06d}", kind=kind, key=key,
                  session_id=session_id, tenant=tenant,
                  spec_text=spec_text, runner=runner,
                  interrupt=interrupt, clear_interrupt=clear_interrupt,
                  cancel_on_disconnect=cancel_on_disconnect)
        self._jobs[job.job_id] = job
        if key is not None:
            self._inflight[key] = job
        self.registry.count("service.jobs.submitted")
        self._trim_history()
        task = asyncio.get_running_loop().create_task(self._drive(job))
        self._tasks[job.job_id] = task
        return job, False

    # -- scheduling -----------------------------------------------------

    def _session_lock(self, session_id: Optional[str]) -> asyncio.Lock:
        # Solves against one session share live solver state and must
        # serialize; sessionless jobs get a throwaway lock.
        if session_id is None:
            return asyncio.Lock()
        lock = self._session_locks.get(session_id)
        if lock is None:
            lock = asyncio.Lock()
            self._session_locks[session_id] = lock
        return lock

    async def _drive(self, job: Job) -> None:
        try:
            async with self._slots:
                # A queued job cancelled while waiting for a slot was
                # already finalized by cancel(); nothing left to do.
                if job.state.finished:
                    return
                if job.cancel_requested:
                    self._finalize_cancelled(job)
                    return
                async with self._session_lock(job.session_id):
                    if job.state.finished:
                        return
                    if job.cancel_requested:
                        self._finalize_cancelled(job)
                        return
                    job.state = JobState.RUNNING
                    job.started = time.monotonic()
                    self.registry.count("service.solves")
                    self.registry.observe(
                        "service.queue_wait_ms",
                        (job.started - job.submitted) * 1000.0)
                    try:
                        outcome = await job.runner()
                    except Exception as exc:
                        # A runner that escapes run_traced's capture
                        # (e.g. a stub in tests, or a bridge failure)
                        # still yields an outcome so the FAILED path
                        # below is the only FAILED path.
                        outcome = JobOutcome(
                            payload={},
                            error=f"{type(exc).__name__}: {exc}",
                            error_tb=traceback.format_exc())
                    finally:
                        # Re-arm the engine only after the solve has
                        # fully unwound; the session lock is still held,
                        # so the next job on this session cannot start
                        # before the sticky flag is cleared.
                        if job.interrupt_armed \
                                and job.clear_interrupt is not None:
                            job.clear_interrupt()
            # Telemetry is absorbed for every terminal state — a failed
            # job keeps its (partial) trace and folds its metrics into
            # the service registry just like a successful one.
            self._absorb(job, outcome)
            if outcome.error is not None:
                job.error = outcome.error
                self.registry.count("service.jobs.failed")
                self._finish(job, JobState.FAILED)
                # Keep the traceback out of client payloads but
                # visible to the operator.
                if outcome.error_tb:
                    print(outcome.error_tb, file=sys.stderr)
                return
            if job.cancel_requested \
                    and outcome.payload.get("exit_code") == 3:
                job.result = dict(outcome.payload)
                job.result["cancelled"] = True
                job.result["cancel_reason"] = job.cancel_reason
                self.registry.count("service.jobs.cancelled")
                self._finish(job, JobState.CANCELLED)
                return
            job.result = outcome.payload
            self.registry.count("service.jobs.completed")
            self._finish(job, JobState.DONE)
        except asyncio.CancelledError:
            # Daemon shutdown: surface the standard UNKNOWN payload.
            if not job.state.finished:
                self._finalize_cancelled(job)
            raise

    def _absorb(self, job: Job, outcome: JobOutcome) -> None:
        """Fold a finished body's telemetry into the service."""
        job.trace_records = outcome.trace_records
        if outcome.metrics:
            self.registry.merge(outcome.metrics)
        duration = (time.monotonic() - job.started
                    if job.started is not None else 0.0)
        self.registry.observe("service.solve_ms", duration * 1000.0)

    def _finalize_cancelled(self, job: Job) -> None:
        job.result = cancelled_payload(
            job.spec_text, job.cancel_reason or "cancelled")
        self.registry.count("service.jobs.cancelled")
        self._finish(job, JobState.CANCELLED)

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished = time.monotonic()
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._tasks.pop(job.job_id, None)
        # Drop the session's serialization lock once no unfinished job
        # references it (an unfinished job is either holding it or
        # queued to acquire it) — otherwise the dict grows one entry
        # per session ever seen.
        if job.session_id is not None and not any(
                other.session_id == job.session_id
                and not other.state.finished
                for other in self._jobs.values()):
            self._session_locks.pop(job.session_id, None)
        job.done.set()
        if self.on_finish is not None:
            try:
                self.on_finish(job)
            except Exception:
                traceback.print_exc()

    def _trim_history(self) -> None:
        # Finished jobs are kept for polling/trace download, but only
        # `history` of them; the oldest finished jobs age out first.
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.state.finished]
        excess = len(self._jobs) - self.history
        for job_id in finished[:max(0, excess)]:
            del self._jobs[job_id]

    # -- lookup / cancellation -----------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(404, "no-such-job",
                               f"unknown job {job_id!r} (finished jobs "
                               f"age out after {self.history} entries)")
        return job

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def cancel(self, job_id: str, reason: str = "cancelled") -> Job:
        """Request cooperative cancellation; returns the job.

        Queued jobs finish as CANCELLED without ever touching the
        engine.  Running warm-lane jobs get a sticky engine interrupt:
        the solve in flight returns UNKNOWN and the job finishes with
        the exit-code-3 payload.  Cold-lane (process pool) jobs cannot
        be interrupted mid-solve; the mark is honored at the next
        scheduling point.  Cancelling a finished job is a no-op.
        """
        job = self.get(job_id)
        if job.state.finished or job.cancel_requested:
            return job
        job.cancel_requested = True
        job.cancel_reason = reason
        self.registry.count("service.jobs.cancel_requests")
        if job.state is JobState.RUNNING and job.interrupt is not None:
            job.interrupt_armed = True
            job.interrupt()
        elif job.state is JobState.QUEUED:
            # Still waiting for a worker slot: finalize right away so
            # the client sees the UNKNOWN payload immediately; _drive
            # notices the terminal state when the slot frees up.
            self._finalize_cancelled(job)
        return job

    def watcher_gone(self, job: Job) -> None:
        """A waiting client disconnected; cancel if nobody else cares.

        Only jobs submitted in wait mode opt in
        (``cancel_on_disconnect``); poll-mode jobs must survive their
        submitter's disconnect so the result can be fetched later.
        """
        if (job.cancel_on_disconnect and job.watchers <= 0
                and not job.state.finished):
            self.cancel(job.job_id, reason="client-disconnect")
            self.registry.count("service.jobs.disconnect_cancels")

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, int]:
        states: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        return {
            "tracked": len(self._jobs),
            "pending": self._pending(),
            "inflight_keys": len(self._inflight),
            **states,
        }

    async def drain(self) -> None:
        """Cancel every unfinished job and await their tasks (shutdown)."""
        for job in list(self._jobs.values()):
            if not job.state.finished:
                self.cancel(job.job_id, reason="shutdown")
        tasks = [task for task in self._tasks.values() if not task.done()]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
