"""A thin stdlib client for the verification service.

:class:`ServiceClient` wraps :mod:`http.client` — one connection per
request, matching the daemon's ``Connection: close`` discipline — and
returns the parsed JSON payloads as plain dicts.  Error responses
(any 4xx/5xx with the daemon's ``{"error": {code, message}}`` shape)
raise :class:`ServiceClientError` carrying the stable error code, so
callers branch on ``exc.code`` rather than string-matching messages.

The CLI's ``repro client`` subcommand is a veneer over this class; it
is equally usable from tests and scripts.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """An error response from the daemon."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status}] {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Talk to a running :class:`~repro.service.http.ReproService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 timeout: Optional[float] = None,
                 tenant: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant

    # -- transport ------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                raw: bool = False) -> Any:
        """One request/response cycle; JSON in, JSON (or text) out."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if self.timeout is not None else 600)
        try:
            body = None
            headers = {"Connection": "close"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if self.tenant is not None:
                headers["X-Tenant"] = self.tenant
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        if raw and response.status < 400:
            return text
        try:
            decoded = json.loads(text) if text else {}
        except json.JSONDecodeError:
            decoded = {}
        if response.status >= 400 or "error" in decoded:
            error = decoded.get("error") or {}
            raise ServiceClientError(
                response.status,
                str(error.get("code", "http-error")),
                str(error.get("message", text.strip() or "no body")))
        return decoded

    # -- introspection --------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def sessions(self) -> Dict[str, Any]:
        return self.request("GET", "/sessions")

    def jobs(self) -> Dict[str, Any]:
        return self.request("GET", "/jobs")

    # -- sessions -------------------------------------------------------

    def open_session(self, config_text: str,
                     backend: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"config": config_text}
        if backend is not None:
            payload["backend"] = backend
        return self.request("POST", "/sessions", payload)

    def invalidate(self, session_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/sessions/{session_id}")

    # -- solves ---------------------------------------------------------

    def _solve(self, endpoint: str,
               payload: Dict[str, Any]) -> Dict[str, Any]:
        cleaned = {name: value for name, value in payload.items()
                   if value is not None}
        return self.request("POST", endpoint, cleaned)

    def verify(self, *, config: Optional[str] = None,
               session: Optional[str] = None,
               spec: Optional[Dict[str, Any]] = None,
               limits: Optional[Dict[str, Any]] = None,
               minimize: bool = True, wait: bool = True,
               backend: Optional[str] = None) -> Dict[str, Any]:
        return self._solve("/verify", {
            "config": config, "session": session, "spec": spec,
            "limits": limits, "minimize": minimize, "wait": wait,
            "backend": backend,
        })

    def enumerate_vectors(self, *, config: Optional[str] = None,
                          session: Optional[str] = None,
                          spec: Optional[Dict[str, Any]] = None,
                          limits: Optional[Dict[str, Any]] = None,
                          limit: Optional[int] = None,
                          minimal: bool = True, wait: bool = True,
                          backend: Optional[str] = None
                          ) -> Dict[str, Any]:
        return self._solve("/enumerate", {
            "config": config, "session": session, "spec": spec,
            "limits": limits, "limit": limit, "minimal": minimal,
            "wait": wait, "backend": backend,
        })

    def max_resiliency(self, *, config: Optional[str] = None,
                       session: Optional[str] = None,
                       prop: Optional[str] = None,
                       limits: Optional[Dict[str, Any]] = None,
                       screen: bool = True, cold: bool = False,
                       wait: bool = True,
                       backend: Optional[str] = None) -> Dict[str, Any]:
        return self._solve("/max-resiliency", {
            "config": config, "session": session, "property": prop,
            "limits": limits, "screen": screen, "cold": cold,
            "wait": wait, "backend": backend,
        })

    # -- watches --------------------------------------------------------

    def watchers(self) -> Dict[str, Any]:
        return self.request("GET", "/watch")

    def open_watch(self, *, config: Optional[str] = None,
                   session: Optional[str] = None,
                   floors: Optional[list] = None,
                   backend: Optional[str] = None,
                   limits: Optional[Dict[str, Any]] = None,
                   engine_cache: Optional[int] = None) -> Dict[str, Any]:
        payload = {name: value for name, value in {
            "config": config, "session": session, "floors": floors,
            "backend": backend, "limits": limits,
            "engine_cache": engine_cache,
        }.items() if value is not None}
        return self.request("POST", "/watch", payload)

    def watch_status(self, watch_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/watch/{watch_id}")

    def send_events(self, watch_id: str,
                    events: list) -> Dict[str, Any]:
        """Apply a batch of event records (``StreamEvent.to_json``)."""
        return self.request("POST", f"/watch/{watch_id}/events",
                            {"events": events})

    def alarms(self, watch_id: str, since: int = 0,
               wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"since": since, "wait": wait}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("GET", f"/watch/{watch_id}/alarms",
                            payload)

    def watch_trace(self, watch_id: str) -> str:
        """The watch's JSONL trace so far (one record per line)."""
        text = self.request("GET", f"/watch/{watch_id}/trace",
                            raw=True)
        assert isinstance(text, str)
        return text

    def close_watch(self, watch_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/watch/{watch_id}")

    # -- jobs -----------------------------------------------------------

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/wait")

    def cancel(self, job_id: str,
               reason: str = "client-cancel") -> Dict[str, Any]:
        return self.request("POST", f"/jobs/{job_id}/cancel",
                            {"reason": reason})

    def trace(self, job_id: str) -> str:
        """The job's JSONL trace, verbatim (one record per line)."""
        text = self.request("GET", f"/jobs/{job_id}/trace", raw=True)
        assert isinstance(text, str)
        return text
