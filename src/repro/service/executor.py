"""The executor bridge: solver work off the event loop.

Solves are seconds-long CPU-bound calls; run on the event loop they
would freeze every health check, metrics scrape, and job poll.  The
bridge owns the worker pool and gives the job layer one awaitable
entry point per lane:

* the **warm lane** (:meth:`ExecutorBridge.run`) — a thread pool.
  Warm-session solves *must* run in-process: the cached
  :class:`~repro.core.incremental.IncrementalContext`\\ s hold live
  solvers that cannot cross a process boundary, and cooperative
  :meth:`~repro.engine.VerificationEngine.interrupt` needs shared
  memory to reach a running search.  Threads serve both; the solver's
  budget polling keeps them responsive.

* the **cold lane** (:func:`sweep_max_searches`) — a
  :class:`~repro.engine.SweepExecutor` process fan-out, driven from a
  pool thread so the event loop never blocks.  Stateless multi-query
  jobs (the three maximal-resiliency searches) use it and inherit the
  sweep layer's fault tolerance: per-task timeouts, retries in fresh
  solo pools, and crash salvage.  Worker tasks carry the config as
  *text* (the daemon has no file to point at) and rebuild their own
  engine — solver state never crosses a process boundary.

Pool sizing reserves one core for the event loop (see
:func:`~repro.engine.sweep.resolve_jobs`): a daemon whose workers
occupy every core starves its own accept loop exactly when it is
busiest.  An explicit ``--jobs`` value is honored as given.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Tuple, TypeVar

from ..core.search import SearchBounds
from ..core.specs import Property
from ..engine.engine import VerificationEngine
from ..engine.sweep import SweepExecutor, resolve_jobs
from ..sat.limits import Limits
from ..scada.config_io import parse_config

__all__ = ["ExecutorBridge", "max_search_task", "sweep_max_searches"]

_R = TypeVar("_R")


def max_search_task(
    task: Tuple[str, str, str, str, Optional[Limits], bool, int],
) -> SearchBounds:
    """Worker: one maximal-resiliency search on inline config text.

    Module-level and picklable; mirrors the CLI's path-based sweep task
    but parses the configuration from the request body the daemon
    received.  Lint already ran when the session was opened.
    ``engine_jobs`` sizes the engine's own pool when the requested
    backend (e.g. ``portfolio``) fans out further.
    """
    (config_text, prop_value, kind, backend, limits, screen,
     engine_jobs) = task
    config = parse_config(config_text, strict=False)
    engine = VerificationEngine(config.network, config.problem,
                                backend=backend, lint=False,
                                jobs=engine_jobs)
    prop = Property(prop_value)
    if kind == "total":
        return engine.max_total_resiliency_bounds(prop, limits=limits,
                                                  screen=screen)
    if kind == "ied":
        return engine.max_ied_resiliency_bounds(prop, limits=limits,
                                                screen=screen)
    return engine.max_rtu_resiliency_bounds(prop, limits=limits,
                                            screen=screen)


def sweep_max_searches(
    config_text: str,
    prop_value: str,
    backend: str,
    limits: Optional[Limits],
    screen: bool,
    jobs: int,
    timeout: Optional[float] = None,
) -> Tuple[SearchBounds, SearchBounds, SearchBounds]:
    """Fan the three maximal-resiliency searches over a process pool.

    Synchronous — a job body calls it from its bridge thread, so the
    event loop stays free while the sweep layer contributes its fault
    tolerance (worker retries in fresh solo pools, crash salvage,
    per-task timeouts).  Telemetry flows into whatever tracer is active
    on the *calling* thread, i.e. the job's.
    """
    # A portfolio engine inside each of the three search processes
    # spawns its own worker pool; splitting the grant three ways keeps
    # the cold job's total process count at the operator's --jobs.
    engine_jobs = max(1, jobs // 3) if backend == "portfolio" else 1
    tasks = [(config_text, prop_value, kind, backend, limits, screen,
              engine_jobs)
             for kind in ("total", "ied", "rtu")]
    total, ied, rtu = SweepExecutor(jobs=min(jobs, 3)).map(
        max_search_task, tasks, timeout=timeout, retries=1,
        on_error="raise")
    return total, ied, rtu


class ExecutorBridge:
    """Awaitable access to the daemon's worker pool."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        #: Resolved worker count: auto sizing keeps one core free for
        #: the event loop; an explicit count is the operator's call.
        self.workers = resolve_jobs(jobs, reserve=1)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-worker")

    async def run(self, fn: Callable[..., _R], *args: Any,
                  **kwargs: Any) -> _R:
        """Run *fn* on a pool thread; await its result."""
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args, **kwargs)
        return await loop.run_in_executor(self._pool, call)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=True)
