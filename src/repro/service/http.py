"""The HTTP transport: a stdlib-asyncio daemon fronting the engine.

One :class:`ReproService` owns the four service layers — the
:class:`~repro.service.sessions.SessionManager` (warm engine state),
the :class:`~repro.service.jobs.JobManager` (admission, coalescing,
cancellation), the :class:`~repro.service.executor.ExecutorBridge`
(worker pool), and the metrics registry ``/metrics`` exports — and
speaks a deliberately small HTTP/1.1 dialect over asyncio streams:
one request per connection (``Connection: close``), JSON bodies,
JSONL for traces.  No web framework; the whole transport is this file.

Endpoints::

    GET    /                     endpoint index
    GET    /healthz              liveness + version
    GET    /metrics              schema-valid metrics record (JSON)
    GET    /sessions             warm sessions + pool counters
    POST   /sessions             open/warm a session  {config, backend?}
    DELETE /sessions/{id}        invalidate (drop warm contexts)
    POST   /verify               submit a verify job
    POST   /enumerate            submit an enumeration job
    POST   /max-resiliency       submit the three searches
    GET    /jobs                 all tracked jobs
    GET    /jobs/{id}            one job (result included when done)
    GET    /jobs/{id}/wait       block until the job finishes
    POST   /jobs/{id}/cancel     cooperative cancel  {reason?}
    GET    /jobs/{id}/trace      the job's JSONL trace
    GET    /watch                live watches + pool counters
    POST   /watch                attach a watcher  {config|session,
                                 floors?, backend?, limits?}
    GET    /watch/{id}           one watch (verdicts, state, alarms)
    POST   /watch/{id}/events    apply a batch of stream events
    POST   /events               the same, with {"watch": id} inline
    GET    /watch/{id}/alarms    alarms after ?since= (long-poll with
                                 ?wait=true&timeout=s)
    GET    /watch/{id}/trace     the watch's JSONL trace so far
    DELETE /watch/{id}           detach (drops its warm engines)

Solve submissions take ``{"config": text}`` or ``{"session": id}``,
plus ``spec``/``limits`` objects (see :mod:`.protocol`), ``tenant``
(or an ``X-Tenant`` header), and ``"wait": true`` to hold the
connection until the verdict.  A waiting client that disconnects
triggers cooperative cancellation *iff* nobody else is attached to the
job — coalesced twins and poll-mode submitters keep it alive.

Every request is timed into a per-route latency histogram
(``service.http.<METHOD> <route>`` in milliseconds), and every job
runs under its own tracer whose records ``GET /jobs/{id}/trace``
serves — a trace ``repro stats`` aggregates like any CLI trace.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.specs import Property, ResiliencySpec
from ..engine.backends import BACKEND_NAMES
from ..obs.metrics import MetricsRegistry
from ..stream import StreamError, StreamEvent
from .executor import ExecutorBridge
from .jobs import (
    Job,
    JobManager,
    TenantPolicy,
    enumerate_fn,
    max_resiliency_fn,
    max_resiliency_sweep_fn,
    run_traced,
    verify_fn,
)
from .protocol import (
    JobKind,
    ServiceError,
    limits_from_payload,
    limits_key,
    spec_from_payload,
)
from .sessions import Session, SessionManager
from .watchers import LiveWatch, WatcherManager

__all__ = ["ReproService"]

SERVICE_VERSION = "1"
#: Upper bound on a request body (configs are ~100 KB at 118 buses;
#: anything near this limit is a client bug, not a bigger grid).
MAX_BODY = 32 * 1024 * 1024
_JSON = "application/json"
_NDJSON = "application/x-ndjson"


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    payload: Dict[str, Any]
    query: Dict[str, str] = field(default_factory=dict)


@dataclass
class _Response:
    status: int
    body: bytes
    content_type: str = _JSON

    @classmethod
    def json(cls, status: int, payload: Mapping[str, Any]) -> "_Response":
        text = json.dumps(payload, default=str)
        return cls(status, (text + "\n").encode("utf-8"))


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error"}


class ReproService:
    """The verification daemon: sessions + jobs behind asyncio HTTP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 jobs: Optional[int] = None,
                 max_sessions: int = 8,
                 backend: str = "assumption",
                 card_encoding: str = "totalizer",
                 contexts_per_session: int = 8,
                 queue_limit: int = 64,
                 default_policy: Optional[TenantPolicy] = None,
                 tenants: Optional[Mapping[str, TenantPolicy]] = None,
                 trace_dir: Optional[str] = None,
                 max_watchers: int = 8) -> None:
        self.host = host
        self.port = port
        self.registry = MetricsRegistry()
        self.bridge = ExecutorBridge(jobs=jobs)
        self.sessions = SessionManager(
            maxsize=max_sessions, backend=backend,
            card_encoding=card_encoding,
            contexts_per_session=contexts_per_session)
        self.jobs = JobManager(
            self.bridge, self.registry, queue_limit=queue_limit,
            default_policy=default_policy, tenants=tenants)
        self.watchers = WatcherManager(self.bridge, self.registry,
                                       maxsize=max_watchers)
        self.trace_dir = trace_dir
        if trace_dir is not None:
            self.jobs.on_finish = self._write_trace
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.jobs.drain()
        self.watchers.clear()
        self.sessions.clear()
        self.bridge.shutdown(wait=False)

    def _write_trace(self, job: Job) -> None:
        # Operator opt-in: mirror every finished job's trace to disk so
        # `repro stats <dir>/*.jsonl` works without touching the API.
        if not job.trace_records:
            return
        path = f"{self.trace_dir}/{job.job_id}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in job.trace_records:
                handle.write(json.dumps(record, default=str) + "\n")

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
        except ServiceError as exc:
            await self._write(writer, _Response.json(exc.status,
                                                     exc.payload()))
            return
        except (asyncio.IncompleteReadError, ConnectionError,
                ValueError):
            writer.close()
            return
        loop = asyncio.get_running_loop()
        started = loop.time()
        route = f"{request.method} {self._route_label(request.path)}"
        try:
            response = await self._dispatch(request, reader)
        except ServiceError as exc:
            self.registry.count(f"service.http.errors.{exc.status}")
            response = _Response.json(exc.status, exc.payload())
        except Exception as exc:  # noqa: BLE001 — boundary of the daemon
            self.registry.count("service.http.errors.500")
            response = _Response.json(500, {"error": {
                "code": type(exc).__name__, "message": str(exc)}})
        elapsed_ms = (loop.time() - started) * 1000.0
        self.registry.count("service.http.requests")
        self.registry.observe(f"service.http.{route}.ms", elapsed_ms)
        if response is not None:
            await self._write(writer, response)
        else:
            # Wait-mode client vanished mid-solve; nothing to write.
            writer.close()

    async def _read_request(self,
                            reader: asyncio.StreamReader) -> _Request:
        line = await reader.readline()
        if not line:
            raise ValueError("empty request")
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ServiceError(400, "bad-request",
                               "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise ServiceError(413, "too-large",
                               f"body exceeds {MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        payload: Dict[str, Any] = {}
        if body:
            try:
                decoded = json.loads(body)
            except json.JSONDecodeError as exc:
                raise ServiceError(400, "bad-json",
                                   f"body is not JSON: {exc}") from None
            if not isinstance(decoded, dict):
                raise ServiceError(400, "bad-json",
                                   "body must be a JSON object")
            payload = decoded
        path, _, raw_query = target.partition("?")
        query = {name: value for name, value
                 in urllib.parse.parse_qsl(raw_query)}
        return _Request(method.upper(), path, headers, payload, query)

    @staticmethod
    def _route_label(path: str) -> str:
        parts = [p for p in path.split("/") if p]
        if parts and parts[0] in ("jobs", "sessions", "watch") \
                and len(parts) > 1:
            parts[1] = "{id}"
        return "/" + "/".join(parts)

    async def _write(self, writer: asyncio.StreamWriter,
                     response: _Response) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = (f"HTTP/1.1 {response.status} {reason}\r\n"
                f"Content-Type: {response.content_type}\r\n"
                f"Content-Length: {len(response.body)}\r\n"
                f"Connection: close\r\n\r\n")
        try:
            writer.write(head.encode("latin-1") + response.body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            writer.close()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, request: _Request,
                        reader: asyncio.StreamReader
                        ) -> Optional[_Response]:
        method, path, payload = (request.method, request.path,
                                 request.payload)
        parts = [p for p in path.split("/") if p]
        tenant = request.headers.get(
            "x-tenant", str(payload.get("tenant", "anonymous")))
        if not parts:
            return self._index(method)
        head = parts[0]
        if head == "healthz" and method == "GET":
            return _Response.json(200, {
                "ok": True, "version": SERVICE_VERSION,
                "workers": self.bridge.workers})
        if head == "metrics" and method == "GET":
            return self._metrics()
        if head == "sessions":
            return await self._sessions_route(method, parts, payload)
        if head in ("verify", "enumerate", "max-resiliency"):
            if method != "POST":
                raise ServiceError(405, "method-not-allowed",
                                   f"{head} requires POST")
            return await self._submit(head, payload, tenant, reader)
        if head == "jobs":
            return await self._jobs_route(method, parts, payload, reader)
        if head == "watch":
            return await self._watch_route(method, parts, request,
                                           reader, tenant)
        if head == "events":
            if method != "POST":
                raise ServiceError(405, "method-not-allowed",
                                   "/events requires POST")
            watch_id = payload.get("watch")
            if not isinstance(watch_id, str):
                raise ServiceError(400, "bad-request",
                                   "provide 'watch' (the watch id)")
            return await self._ingest_events(
                self.watchers.get(watch_id), payload)
        raise ServiceError(404, "no-such-endpoint",
                           f"unknown path {path!r} (see GET /)")

    def _index(self, method: str) -> _Response:
        if method != "GET":
            raise ServiceError(405, "method-not-allowed",
                               "the index is GET-only")
        return _Response.json(200, {
            "service": "repro-verification-service",
            "version": SERVICE_VERSION,
            "endpoints": [
                "GET /healthz", "GET /metrics", "GET /sessions",
                "POST /sessions", "DELETE /sessions/{id}",
                "POST /verify", "POST /enumerate",
                "POST /max-resiliency", "GET /jobs", "GET /jobs/{id}",
                "GET /jobs/{id}/wait", "POST /jobs/{id}/cancel",
                "GET /jobs/{id}/trace", "GET /watch", "POST /watch",
                "GET /watch/{id}", "POST /watch/{id}/events",
                "POST /events", "GET /watch/{id}/alarms",
                "GET /watch/{id}/trace", "DELETE /watch/{id}",
            ],
        })

    def _metrics(self) -> _Response:
        # Point-in-time pool state rides along as gauges; counters and
        # histograms accumulate across the daemon's lifetime.  The
        # record is shaped exactly like a trace's final `metrics` line,
        # so obs schema validation applies as-is.
        for name, value in self.sessions.stats().items():
            self.registry.gauge(f"service.sessions.{name}", value)
        for name, value in self.jobs.stats().items():
            self.registry.gauge(f"service.jobs.{name}", value)
        for name, value in self.watchers.stats().items():
            self.registry.gauge(f"service.watchers.{name}", value)
        self.registry.gauge("service.workers", self.bridge.workers)
        return _Response.json(200, {"type": "metrics",
                                    **self.registry.snapshot()})

    # -- sessions -------------------------------------------------------

    async def _sessions_route(self, method: str, parts: list,
                              payload: Dict[str, Any]
                              ) -> _Response:
        if len(parts) == 1:
            if method == "GET":
                return _Response.json(200, {
                    "sessions": self.sessions.describe(),
                    "stats": self.sessions.stats(),
                })
            if method == "POST":
                session, created = await self._open_session(payload)
                return _Response.json(200, {
                    "session": session.session_id,
                    "created": created,
                    "info": session.describe(),
                })
        if len(parts) == 2 and method == "DELETE":
            dropped = self.sessions.invalidate(parts[1])
            if not dropped:
                raise ServiceError(404, "no-such-session",
                                   f"unknown session {parts[1]!r}")
            self.registry.count("service.sessions.invalidations")
            return _Response.json(200, {"invalidated": parts[1]})
        raise ServiceError(405, "method-not-allowed",
                           "sessions supports GET/POST /sessions and "
                           "DELETE /sessions/{id}")

    async def _open_session(self, payload: Dict[str, Any]
                            ) -> Tuple[Session, bool]:
        config_text = payload.get("config")
        if not isinstance(config_text, str) or not config_text.strip():
            raise ServiceError(400, "bad-request",
                               "provide 'config' (configuration text)")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ServiceError(400, "bad-request",
                               "'backend' must be a string")
        lint = bool(payload.get("lint", True))

        # Parse + lint + engine construction can take seconds on a big
        # grid — off the event loop, onto the pool.
        def build() -> Tuple[Session, bool]:
            config = self.sessions.parse(config_text)
            return self.sessions.open(config, backend=backend, lint=lint)

        return await self.bridge.run(build)

    async def _resolve_session(self, payload: Dict[str, Any]) -> Session:
        session_id = payload.get("session")
        if session_id is not None:
            if not isinstance(session_id, str):
                raise ServiceError(400, "bad-request",
                                   "'session' must be a string id")
            return self.sessions.get(session_id)
        session, _created = await self._open_session(payload)
        return session

    # -- job submission -------------------------------------------------

    async def _submit(self, endpoint: str, payload: Dict[str, Any],
                      tenant: str, reader: asyncio.StreamReader
                      ) -> Optional[_Response]:
        session = await self._resolve_session(payload)
        policy = self.jobs.policy_for(tenant)
        limits = policy.effective_limits(
            limits_from_payload(payload.get("limits")))
        wait = bool(payload.get("wait", False))
        engine = session.engine
        kind: JobKind
        fn: Callable[[], Dict[str, Any]]
        interrupt: Optional[Callable[[], None]] = engine.interrupt
        clear: Optional[Callable[[], None]] = engine.clear_interrupt
        if endpoint == "verify":
            kind = JobKind.VERIFY
            spec = spec_from_payload(payload.get("spec") or {})
            minimize = bool(payload.get("minimize", True))
            key: Tuple[Any, ...] = (session.session_id, "verify", spec,
                                    limits_key(limits), minimize)
            spec_text = spec.describe()
            fn = verify_fn(session, spec, limits, minimize=minimize)
        elif endpoint == "enumerate":
            kind = JobKind.ENUMERATE
            spec = spec_from_payload(payload.get("spec") or {})
            limit = payload.get("limit")
            if limit is not None and (not isinstance(limit, int)
                                      or isinstance(limit, bool)
                                      or limit < 1):
                raise ServiceError(400, "bad-request",
                                   "'limit' must be a positive integer")
            minimal = bool(payload.get("minimal", True))
            key = (session.session_id, "enumerate", spec,
                   limits_key(limits), limit, minimal)
            spec_text = f"enumerate {spec.describe()}"
            fn = enumerate_fn(session, spec, limits, limit=limit,
                              minimal=minimal)
        else:
            kind = JobKind.MAX_RESILIENCY
            prop_value = payload.get("property",
                                     Property.OBSERVABILITY.value)
            try:
                prop = Property(prop_value)
            except ValueError:
                raise ServiceError(
                    400, "bad-request",
                    f"unknown property {prop_value!r}") from None
            screen = bool(payload.get("screen", True))
            cold = bool(payload.get("cold", False))
            # The cold lane rebuilds engines in worker processes, so a
            # job may request a different backend than the session's —
            # e.g. "portfolio" to race each search probe across a pool.
            job_backend = payload.get("backend") or session.backend
            if job_backend not in BACKEND_NAMES:
                raise ServiceError(
                    400, "bad-request",
                    f"unknown backend {job_backend!r}; expected one of "
                    f"{', '.join(BACKEND_NAMES)}")
            if not cold and job_backend != session.backend:
                raise ServiceError(
                    400, "bad-request",
                    "a per-job 'backend' override needs \"cold\": true "
                    "— warm jobs run on the session's engine "
                    f"({session.backend!r})")
            key = (session.session_id, "max", prop, limits_key(limits),
                   screen, cold, job_backend)
            spec_text = f"max-resiliency {prop.value}"
            if cold:
                config_text = payload.get("config")
                if not isinstance(config_text, str):
                    raise ServiceError(
                        400, "bad-request",
                        "cold max-resiliency needs inline 'config' "
                        "text (worker processes rebuild the engine)")
                fn = max_resiliency_sweep_fn(
                    config_text, prop, job_backend, limits, screen,
                    self.bridge.workers)
                # Process-pool workers are beyond cooperative
                # interrupt; cancellation only skips queued jobs.
                interrupt = None
                clear = None
            else:
                fn = max_resiliency_fn(session, prop, limits,
                                       screen=screen)
        meta = {"service": SERVICE_VERSION, "kind": kind.value,
                "session": session.session_id, "tenant": tenant,
                "spec": spec_text}
        job, coalesced = self.jobs.submit(
            kind,
            lambda: self.bridge.run(run_traced, meta, fn),
            key=key, session_id=session.session_id, tenant=tenant,
            spec_text=spec_text, interrupt=interrupt,
            clear_interrupt=clear, cancel_on_disconnect=wait)
        if not wait:
            return _Response.json(202, {
                "job": job.job_id, "state": job.state.value,
                "session": session.session_id, "coalesced": coalesced,
            })
        return await self._wait_response(job, reader)

    # -- job lookup / wait / cancel / trace -----------------------------

    async def _jobs_route(self, method: str, parts: list,
                          payload: Dict[str, Any],
                          reader: asyncio.StreamReader
                          ) -> Optional[_Response]:
        if len(parts) == 1:
            if method != "GET":
                raise ServiceError(405, "method-not-allowed",
                                   "/jobs is GET-only")
            return _Response.json(200, {
                "jobs": [job.describe() for job in self.jobs.jobs()],
                "stats": self.jobs.stats(),
            })
        job = self.jobs.get(parts[1])
        action = parts[2] if len(parts) > 2 else None
        if action is None and method == "GET":
            return _Response.json(200, job.describe())
        if action == "wait" and method == "GET":
            return await self._wait_response(job, reader)
        if action == "cancel" and method == "POST":
            reason = str(payload.get("reason", "client-cancel"))
            job = self.jobs.cancel(job.job_id, reason=reason)
            status = 200 if job.state.finished else 202
            return _Response.json(status, job.describe())
        if action == "trace" and method == "GET":
            if not job.state.finished:
                raise ServiceError(409, "job-not-finished",
                                   f"job {job.job_id} is "
                                   f"{job.state.value}; traces are "
                                   f"served after completion")
            lines = "".join(json.dumps(record, default=str) + "\n"
                            for record in job.trace_records)
            return _Response(200, lines.encode("utf-8"),
                             content_type=_NDJSON)
        raise ServiceError(404, "no-such-endpoint",
                           "jobs supports GET /jobs, GET /jobs/{id}, "
                           "GET /jobs/{id}/wait, POST /jobs/{id}/cancel"
                           ", GET /jobs/{id}/trace")

    # -- watches: attach / ingest / alarms ------------------------------

    async def _watch_route(self, method: str, parts: list,
                           request: _Request,
                           reader: asyncio.StreamReader,
                           tenant: str) -> Optional[_Response]:
        payload = request.payload
        if len(parts) == 1:
            if method == "GET":
                return _Response.json(200, {
                    "watchers": self.watchers.describe(),
                    "stats": self.watchers.stats(),
                })
            if method == "POST":
                return await self._open_watch(payload, tenant)
            raise ServiceError(405, "method-not-allowed",
                               "/watch supports GET and POST")
        watch = self.watchers.get(parts[1])
        action = parts[2] if len(parts) > 2 else None
        if action is None:
            if method == "GET":
                return _Response.json(200, watch.describe())
            if method == "DELETE":
                closed = self.watchers.close(watch.watch_id)
                self.registry.count("service.watchers.detached")
                return _Response.json(200, {
                    "closed": closed.watch_id,
                    "info": closed.describe(),
                })
            raise ServiceError(405, "method-not-allowed",
                               "/watch/{id} supports GET and DELETE")
        if action == "events" and method == "POST":
            return await self._ingest_events(watch, payload)
        if action == "alarms" and method == "GET":
            return await self._alarms_response(watch, request, reader)
        if action == "trace" and method == "GET":
            lines = "".join(json.dumps(record, default=str) + "\n"
                            for record in watch.trace_records())
            return _Response(200, lines.encode("utf-8"),
                             content_type=_NDJSON)
        raise ServiceError(404, "no-such-endpoint",
                           "watch supports GET/POST /watch, "
                           "GET/DELETE /watch/{id}, "
                           "POST /watch/{id}/events, "
                           "GET /watch/{id}/alarms, "
                           "GET /watch/{id}/trace")

    async def _open_watch(self, payload: Dict[str, Any],
                          tenant: str) -> _Response:
        session_id = payload.get("session")
        if session_id is not None:
            if not isinstance(session_id, str):
                raise ServiceError(400, "bad-request",
                                   "'session' must be a string id")
            session = self.sessions.get(session_id)
            config = session.config
            backend = payload.get("backend") or session.backend
            attached = session.session_id
        else:
            config_text = payload.get("config")
            if not isinstance(config_text, str) \
                    or not config_text.strip():
                raise ServiceError(
                    400, "bad-request",
                    "provide 'config' (configuration text) or "
                    "'session' (a warm session id)")
            config = await self.bridge.run(self.sessions.parse,
                                           config_text)
            backend = payload.get("backend") or self.sessions.backend
            attached = None
        if backend not in BACKEND_NAMES:
            raise ServiceError(
                400, "bad-request",
                f"unknown backend {backend!r}; expected one of "
                f"{', '.join(BACKEND_NAMES)}")
        floors = self._watch_floors(payload, config.spec)
        policy = self.jobs.policy_for(tenant)
        limits = policy.effective_limits(
            limits_from_payload(payload.get("limits")))
        engine_cache = payload.get("engine_cache", 4)
        if not isinstance(engine_cache, int) \
                or isinstance(engine_cache, bool) or engine_cache < 1:
            raise ServiceError(400, "bad-request",
                               "'engine_cache' must be a positive "
                               "integer")
        watch = await self.watchers.create(
            config, floors, backend=backend,
            card_encoding=self.sessions.card_encoding,
            limits=limits, engine_cache=engine_cache,
            tenant=tenant, session_id=attached)
        self.registry.count("service.watchers.attached")
        return _Response.json(200, {
            "watch": watch.watch_id,
            "info": watch.describe(),
            "alarms": [alarm.to_json()
                       for alarm in watch.watcher.alarms],
        })

    @staticmethod
    def _watch_floors(payload: Dict[str, Any],
                      default: Optional[ResiliencySpec]
                      ) -> List[ResiliencySpec]:
        floors_payload = payload.get("floors")
        if floors_payload is None:
            if default is not None:
                return [default]
            return [spec_from_payload({})]
        if not isinstance(floors_payload, list) or not floors_payload:
            raise ServiceError(400, "bad-watch",
                               "'floors' must be a non-empty list of "
                               "spec objects")
        return [spec_from_payload(floor) for floor in floors_payload]

    async def _ingest_events(self, watch: LiveWatch,
                             payload: Dict[str, Any]) -> _Response:
        raw = payload.get("events")
        if not isinstance(raw, list) or not raw:
            raise ServiceError(400, "bad-events",
                               "'events' must be a non-empty list of "
                               "event objects")
        try:
            events = [StreamEvent.from_json(record) for record in raw]
        except (StreamError, ValueError, KeyError, TypeError,
                AttributeError) as exc:
            raise ServiceError(400, "bad-events",
                               f"unparseable event: {exc}") from None
        updates = await self.watchers.ingest(watch, events)
        alarms = [alarm for update in updates
                  for alarm in update.alarms]
        return _Response.json(200, {
            "watch": watch.watch_id,
            "applied": len(updates),
            "updates": [update.to_json() for update in updates],
            "alarms": [alarm.to_json() for alarm in alarms],
            "below_floor": [spec.describe()
                            for spec in watch.watcher.below_floor],
        })

    async def _alarms_response(self, watch: LiveWatch,
                               request: _Request,
                               reader: asyncio.StreamReader
                               ) -> Optional[_Response]:
        """Alarms after ``since``; optionally long-poll for the next.

        Parameters ride the query string (``?since=3&wait=true``) or
        the JSON body — the body wins on conflicts.  A waiting client
        that disconnects is detected on the read side, exactly like a
        wait-mode job submission.
        """
        params: Dict[str, Any] = dict(request.query)
        params.update(request.payload)
        try:
            since = int(params.get("since", 0))
            timeout = float(params.get("timeout", 30.0))
        except (TypeError, ValueError):
            raise ServiceError(400, "bad-request",
                               "'since' must be an integer and "
                               "'timeout' a number") from None
        wait = str(params.get("wait", "")).lower() \
            in ("1", "true", "yes")
        timeout = min(max(timeout, 0.0), 600.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        alarms = watch.alarms_since(since)
        while wait and not alarms and not watch.closed:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            changed = asyncio.ensure_future(watch.changed.wait())
            eof = asyncio.ensure_future(reader.read(1))
            try:
                await asyncio.wait({changed, eof}, timeout=remaining,
                                   return_when=asyncio.FIRST_COMPLETED)
                if eof.done() and not eof.result():
                    return None  # client hung up; nothing to write
            finally:
                changed.cancel()
                eof.cancel()
            alarms = watch.alarms_since(since)
        return _Response.json(200, {
            "watch": watch.watch_id,
            "since": since,
            "alarms": [alarm.to_json() for alarm in alarms],
            "total": len(watch.watcher.alarms),
            "closed": watch.closed,
            "below_floor": [spec.describe()
                            for spec in watch.watcher.below_floor],
        })

    async def _wait_response(self, job: Job,
                             reader: asyncio.StreamReader
                             ) -> Optional[_Response]:
        """Hold the connection until *job* finishes (or the client goes).

        Disconnect detection rides the read side of the socket: with
        one request per connection a conforming client sends nothing
        more, so the next read completing with EOF means it hung up.
        """
        job.watchers += 1
        try:
            finished = await self._await_or_eof(job, reader)
        finally:
            job.watchers -= 1
        if not finished:
            self.jobs.watcher_gone(job)
            return None
        return _Response.json(200, job.describe())

    @staticmethod
    async def _await_or_eof(job: Job,
                            reader: asyncio.StreamReader) -> bool:
        done = asyncio.ensure_future(job.done.wait())
        eof = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                await asyncio.wait({done, eof},
                                   return_when=asyncio.FIRST_COMPLETED)
                if done.done():
                    return True
                if eof.done():
                    if not eof.result():
                        return False
                    # Stray bytes (a misbehaving client); keep waiting
                    # on the job and keep watching for EOF.
                    eof = asyncio.ensure_future(reader.read(1))
        finally:
            done.cancel()
            eof.cancel()
