"""DC state estimation and bad-data detection.

The paper's resiliency properties exist to protect a concrete control
routine: power-system state estimation, "the core component" whose
output drives every other control decision (§II-A), together with the
bad-data detection step that screens its inputs (§III-E).  This module
implements that routine for the DC model:

* weighted-least-squares estimation of bus phase angles from delivered
  measurements (with a reference bus pinned to make the system
  determined),
* the chi-square global test on the residuals, and
* largest-normalized-residual (LNR) identification of a bad
  measurement.

It lets the examples *demonstrate* what the analyzer proves: when a
threat vector's failures occur, the estimator below actually loses the
system state; and with fewer than ``r + 1`` redundant measurements per
state, an injected gross error slips through the detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .jacobian import JacobianTable

__all__ = [
    "EstimationResult", "UnobservableError", "DcStateEstimator",
    "chi_square_threshold",
]

# Upper-tail critical values of the chi-square distribution at 95%
# confidence, indexed by degrees of freedom (1..30).  Hard-coded so the
# estimator does not depend on scipy.
_CHI2_95 = [
    3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919,
    18.307, 19.675, 21.026, 22.362, 23.685, 24.996, 26.296, 27.587,
    28.869, 30.144, 31.410, 32.671, 33.924, 35.172, 36.415, 37.652,
    38.885, 40.113, 41.337, 42.557, 43.773,
]


def chi_square_threshold(degrees_of_freedom: int) -> float:
    """95% chi-square critical value (Wilson-Hilferty above the table)."""
    if degrees_of_freedom < 1:
        return 0.0
    if degrees_of_freedom <= len(_CHI2_95):
        return _CHI2_95[degrees_of_freedom - 1]
    # Wilson-Hilferty approximation.
    df = float(degrees_of_freedom)
    z95 = 1.6449
    return df * (1 - 2 / (9 * df) + z95 * (2 / (9 * df)) ** 0.5) ** 3


class UnobservableError(RuntimeError):
    """Raised when the delivered measurements cannot fix the state."""


@dataclass
class EstimationResult:
    """Output of one WLS estimation run."""

    angles: np.ndarray                 # estimated phase angles (rad)
    residuals: np.ndarray              # z - H·x̂ per used measurement
    measurement_indices: List[int]     # order matching `residuals`
    objective: float                   # J(x̂) = Σ r²/σ²
    degrees_of_freedom: int
    reference_bus: int

    @property
    def chi_square_passes(self) -> bool:
        """Global test: no bad data detected at 95% confidence."""
        return self.objective <= chi_square_threshold(
            self.degrees_of_freedom)

    def largest_normalized_residual(self) -> Tuple[int, float]:
        """The measurement index with the largest |normalized residual|.

        The LNR test's suspect: if the chi-square test fails, this is
        the measurement to remove and re-estimate without.
        """
        if not len(self.residuals):
            raise ValueError("no residuals")
        position = int(np.argmax(np.abs(self.residuals)))
        return (self.measurement_indices[position],
                float(abs(self.residuals[position])))


class DcStateEstimator:
    """Weighted-least-squares DC state estimation over a Jacobian table."""

    def __init__(self, table: JacobianTable, reference_bus: int = 1,
                 sigma: float = 0.01) -> None:
        if not 1 <= reference_bus <= table.plan.num_states:
            raise ValueError("reference bus out of range")
        self.table = table
        self.reference_bus = reference_bus
        self.sigma = sigma
        self._positions = {
            msr.index: pos
            for pos, msr in enumerate(table.plan.measurements)}

    # ------------------------------------------------------------------

    def _h_matrix(self, indices: Sequence[int]) -> np.ndarray:
        n = self.table.plan.num_states
        h = np.zeros((len(indices), n))
        for row, index in enumerate(indices):
            for bus, coeff in self.table.rows[self._positions[index]].items():
                h[row, bus - 1] = coeff
        # Remove the reference angle column (pinned to zero).
        return np.delete(h, self.reference_bus - 1, axis=1)

    def measure(self, true_angles: Sequence[float],
                indices: Optional[Sequence[int]] = None,
                noise: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> Dict[int, float]:
        """Simulate meter readings for a true state.

        ``true_angles`` is indexed by bus - 1 and must have the
        reference bus at angle 0 for round-trip comparisons.
        """
        if indices is None:
            indices = [m.index for m in self.table.plan.measurements]
        angles = np.asarray(true_angles, dtype=float)
        readings: Dict[int, float] = {}
        for index in indices:
            row = self.table.rows[self._positions[index]]
            value = sum(coeff * angles[bus - 1]
                        for bus, coeff in row.items())
            if noise > 0.0:
                generator = rng if rng is not None else np.random.default_rng()
                value += generator.normal(0.0, noise)
            readings[index] = value
        return readings

    def estimate(self, readings: Dict[int, float]) -> EstimationResult:
        """WLS estimation from delivered readings.

        Raises :class:`UnobservableError` when the gain matrix is rank
        deficient — exactly the situation the analyzer's threat vectors
        predict.
        """
        indices = sorted(readings)
        if not indices:
            raise UnobservableError("no measurements delivered")
        h = self._h_matrix(indices)
        z = np.array([readings[i] for i in indices])
        n_states = h.shape[1]
        if np.linalg.matrix_rank(h) < n_states:
            raise UnobservableError(
                f"measurements {indices} do not observe the system "
                f"(rank {np.linalg.matrix_rank(h)} < {n_states})")
        weight = 1.0 / (self.sigma ** 2)
        gain = h.T @ h * weight
        rhs = h.T @ z * weight
        reduced = np.linalg.solve(gain, rhs)
        angles = np.insert(reduced, self.reference_bus - 1, 0.0)
        residuals = z - h @ reduced
        objective = float(weight * residuals @ residuals)
        return EstimationResult(
            angles=angles,
            residuals=residuals / self.sigma,
            measurement_indices=indices,
            objective=objective,
            degrees_of_freedom=max(len(indices) - n_states, 0),
            reference_bus=self.reference_bus,
        )

    # ------------------------------------------------------------------

    def detect_and_remove_bad_data(
        self, readings: Dict[int, float],
        max_removals: int = 3,
    ) -> Tuple[EstimationResult, List[int]]:
        """Iterative LNR bad-data elimination.

        Repeats estimate → chi-square test → drop the largest normalized
        residual, up to *max_removals* times.  Returns the final clean
        estimate and the removed measurement indices.  Raises
        :class:`UnobservableError` if removals destroy observability —
        the practical face of the paper's r-redundancy requirement.
        """
        current = dict(readings)
        removed: List[int] = []
        while True:
            result = self.estimate(current)
            if result.chi_square_passes or len(removed) >= max_removals:
                return result, removed
            suspect, _ = result.largest_normalized_residual()
            removed.append(suspect)
            del current[suspect]
