"""Transmission-grid model: buses and branches.

The paper's observability analysis works on the DC power-flow model of a
bus system: each branch has a susceptance, each measurement is a linear
function of the bus state variables (voltage phase angles), and the
Jacobian rows are built from branch susceptances (see
:mod:`repro.grid.jacobian`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["Branch", "BusSystem"]


@dataclass(frozen=True)
class Branch:
    """A transmission line (or transformer) between two buses."""

    index: int
    from_bus: int
    to_bus: int
    reactance: float

    def __post_init__(self) -> None:
        if self.from_bus == self.to_bus:
            raise ValueError(f"branch {self.index} is a self-loop")
        if self.reactance <= 0:
            raise ValueError(
                f"branch {self.index} must have positive reactance")

    @property
    def susceptance(self) -> float:
        """The DC susceptance ``b = 1/x``."""
        return 1.0 / self.reactance

    @property
    def buses(self) -> Tuple[int, int]:
        return (self.from_bus, self.to_bus)


class BusSystem:
    """A bus/branch network with 1-based bus numbering."""

    def __init__(self, name: str, num_buses: int,
                 branches: Sequence[Branch]) -> None:
        if num_buses < 1:
            raise ValueError("a bus system needs at least one bus")
        self.name = name
        self.num_buses = num_buses
        self.branches: List[Branch] = list(branches)
        self._validate()
        self._adjacency: Dict[int, List[Branch]] = {
            bus: [] for bus in range(1, num_buses + 1)}
        for branch in self.branches:
            self._adjacency[branch.from_bus].append(branch)
            self._adjacency[branch.to_bus].append(branch)

    def _validate(self) -> None:
        seen_indices: Set[int] = set()
        seen_pairs: Set[Tuple[int, int]] = set()
        for branch in self.branches:
            if branch.index in seen_indices:
                raise ValueError(f"duplicate branch index {branch.index}")
            seen_indices.add(branch.index)
            for bus in branch.buses:
                if not 1 <= bus <= self.num_buses:
                    raise ValueError(
                        f"branch {branch.index} references bus {bus}, "
                        f"outside 1..{self.num_buses}")
            pair = (min(branch.buses), max(branch.buses))
            if pair in seen_pairs:
                raise ValueError(f"parallel branch between {pair}")
            seen_pairs.add(pair)

    # ------------------------------------------------------------------

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    def branch(self, index: int) -> Branch:
        """Look up a branch by its index."""
        for branch in self.branches:
            if branch.index == index:
                return branch
        raise KeyError(f"no branch with index {index}")

    def incident_branches(self, bus: int) -> List[Branch]:
        """Branches touching *bus*."""
        return list(self._adjacency[bus])

    def neighbors(self, bus: int) -> List[int]:
        """Buses adjacent to *bus*."""
        out = []
        for branch in self._adjacency[bus]:
            out.append(branch.to_bus if branch.from_bus == bus
                       else branch.from_bus)
        return out

    def degree(self, bus: int) -> int:
        return len(self._adjacency[bus])

    def average_degree(self) -> float:
        """Mean bus degree; ≈3 for real power grids (paper §V-B)."""
        return 2.0 * self.num_branches / self.num_buses

    def is_connected(self) -> bool:
        """Whether every bus is reachable from bus 1."""
        if self.num_buses == 1:
            return True
        seen = {1}
        frontier = [1]
        while frontier:
            bus = frontier.pop()
            for nxt in self.neighbors(bus):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == self.num_buses

    def __repr__(self) -> str:
        return (f"BusSystem({self.name!r}, buses={self.num_buses}, "
                f"branches={self.num_branches})")


def from_branch_list(name: str, num_buses: int,
                     branch_data: Iterable[Tuple[int, int, float]]) -> BusSystem:
    """Build a :class:`BusSystem` from ``(from, to, reactance)`` triples."""
    branches = [
        Branch(index=i, from_bus=f, to_bus=t, reactance=x)
        for i, (f, t, x) in enumerate(branch_data, start=1)
    ]
    return BusSystem(name, num_buses, branches)
