"""Power-grid substrate: bus systems, measurements, DC Jacobians."""

from .bus_system import Branch, BusSystem, from_branch_list
from .estimation import (
    DcStateEstimator,
    EstimationResult,
    UnobservableError,
    chi_square_threshold,
)
from .ieee_cases import (
    CASE_SIZES,
    IEEE14_BRANCHES,
    case30,
    case57,
    case118,
    case_by_buses,
    ieee14,
    synthetic_grid,
)
from .jacobian import JacobianTable, jacobian_matrix, jacobian_row, state_sets
from .measurements import (
    Measurement,
    MeasurementPlan,
    MeasurementType,
    full_measurement_plan,
    sampled_measurement_plan,
)
from .observability import covered_states, is_rank_observable, rank_of_rows

__all__ = [
    "Branch", "BusSystem", "CASE_SIZES", "DcStateEstimator",
    "EstimationResult", "IEEE14_BRANCHES", "UnobservableError",
    "chi_square_threshold",
    "JacobianTable", "Measurement", "MeasurementPlan", "MeasurementType",
    "case30", "case57", "case118", "case_by_buses", "covered_states",
    "from_branch_list", "full_measurement_plan", "ieee14",
    "is_rank_observable", "jacobian_matrix", "jacobian_row",
    "rank_of_rows", "sampled_measurement_plan", "state_sets",
    "synthetic_grid",
]
