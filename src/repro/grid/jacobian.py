"""DC measurement Jacobian construction.

In the DC approximation, each measurement is linear in the bus phase
angles: a forward line flow on branch ``(f, t)`` is ``b·(θ_f − θ_t)``, a
backward flow negates it, and a bus injection is the sum of the incident
flows.  The Jacobian row of a measurement therefore has non-zero entries
exactly on the buses that influence it — the paper's ``StateSet_Z``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .bus_system import BusSystem
from .measurements import Measurement, MeasurementPlan, MeasurementType

__all__ = ["jacobian_row", "jacobian_matrix", "state_sets", "JacobianTable"]


def jacobian_row(bus_system: BusSystem, msr: Measurement) -> Dict[int, float]:
    """The sparse Jacobian row for one measurement (bus → coefficient)."""
    row: Dict[int, float] = {}
    if msr.mtype is MeasurementType.LINE_FLOW_FORWARD:
        branch = bus_system.branch(msr.element)
        b = branch.susceptance
        row[branch.from_bus] = b
        row[branch.to_bus] = -b
    elif msr.mtype is MeasurementType.LINE_FLOW_BACKWARD:
        branch = bus_system.branch(msr.element)
        b = branch.susceptance
        row[branch.from_bus] = -b
        row[branch.to_bus] = b
    elif msr.mtype is MeasurementType.BUS_INJECTION:
        bus = msr.element
        total = 0.0
        for branch in bus_system.incident_branches(bus):
            b = branch.susceptance
            other = branch.to_bus if branch.from_bus == bus else branch.from_bus
            row[other] = row.get(other, 0.0) - b
            total += b
        row[bus] = total
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown measurement type {msr.mtype}")
    return row


def jacobian_matrix(plan: MeasurementPlan) -> np.ndarray:
    """The dense ``m × n`` Jacobian for a measurement plan.

    Row order follows ``plan.measurements``; column ``j`` is bus ``j+1``.
    """
    h = np.zeros((plan.num_measurements, plan.num_states))
    for row_idx, msr in enumerate(plan.measurements):
        for bus, coeff in jacobian_row(plan.bus_system, msr).items():
            h[row_idx, bus - 1] = coeff
    return h


def state_sets(plan: MeasurementPlan) -> Dict[int, List[int]]:
    """``StateSet_Z`` for every measurement: index → buses with h ≠ 0."""
    out: Dict[int, List[int]] = {}
    for msr in plan.measurements:
        row = jacobian_row(plan.bus_system, msr)
        out[msr.index] = sorted(bus for bus, coeff in row.items()
                                if coeff != 0.0)
    return out


class JacobianTable:
    """A measurement plan together with explicit Jacobian rows.

    Normally rows are derived from the bus system, but the table can also
    be built from *given* rows — the paper's Table II supplies the matrix
    directly (its injection diagonals include contributions from branches
    outside the 5-bus subsystem), and the case study reproduces it
    verbatim.
    """

    def __init__(self, plan: MeasurementPlan,
                 rows: Optional[Sequence[Dict[int, float]]] = None) -> None:
        self.plan = plan
        if rows is None:
            self.rows: List[Dict[int, float]] = [
                jacobian_row(plan.bus_system, msr)
                for msr in plan.measurements
            ]
        else:
            if len(rows) != plan.num_measurements:
                raise ValueError(
                    f"expected {plan.num_measurements} rows, got {len(rows)}")
            self.rows = [dict(row) for row in rows]

    def state_set(self, msr_index: int) -> List[int]:
        """``StateSet_Z``: buses with a non-zero entry in row Z."""
        pos = self._row_position(msr_index)
        return sorted(bus for bus, coeff in self.rows[pos].items()
                      if coeff != 0.0)

    def state_sets(self) -> Dict[int, List[int]]:
        return {msr.index: self.state_set(msr.index)
                for msr in self.plan.measurements}

    def matrix(self) -> np.ndarray:
        h = np.zeros((self.plan.num_measurements, self.plan.num_states))
        for pos, row in enumerate(self.rows):
            for bus, coeff in row.items():
                h[pos, bus - 1] = coeff
        return h

    def _row_position(self, msr_index: int) -> int:
        for pos, msr in enumerate(self.plan.measurements):
            if msr.index == msr_index:
                return pos
        raise KeyError(f"no measurement with index {msr_index}")
