"""Measurement taxonomy and the unique-component (`UMsrSet`) grouping.

The paper's observability constraint counts *unique* delivered
measurements: a forward and a backward power-flow reading of the same
line represent the same electrical component and must be counted once
(`UMsrSet_E`).  This module models measurements, builds the full
candidate set for a bus system (two flow measurements per line plus one
injection per bus — the "maximum possible measurements" baseline of
Fig. 7(a)), and groups measurements by electrical component.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .bus_system import BusSystem

__all__ = [
    "MeasurementType", "Measurement", "MeasurementPlan",
    "full_measurement_plan", "sampled_measurement_plan",
]


class MeasurementType(enum.Enum):
    """The three DC measurement kinds the paper uses."""

    LINE_FLOW_FORWARD = "flow_fwd"
    LINE_FLOW_BACKWARD = "flow_bwd"
    BUS_INJECTION = "injection"

    @property
    def is_flow(self) -> bool:
        return self is not MeasurementType.BUS_INJECTION


@dataclass(frozen=True)
class Measurement:
    """A single meter reading.

    ``element`` is a branch index for flow measurements and a bus number
    for injections.  ``index`` is the 1-based measurement id ``Z`` used
    throughout the formal model.
    """

    index: int
    mtype: MeasurementType
    element: int

    @property
    def component_key(self) -> Tuple[str, int]:
        """The electrical component ``E`` this measurement observes.

        Forward and backward flows of one line share a key; that is
        exactly the paper's ``UMsrSet`` equivalence.
        """
        if self.mtype.is_flow:
            return ("line", self.element)
        return ("bus", self.element)

    def describe(self) -> str:
        kind = {
            MeasurementType.LINE_FLOW_FORWARD: "P_fwd(line {0})",
            MeasurementType.LINE_FLOW_BACKWARD: "P_bwd(line {0})",
            MeasurementType.BUS_INJECTION: "P_inj(bus {0})",
        }[self.mtype]
        return f"z{self.index}: " + kind.format(self.element)


class MeasurementPlan:
    """The measurement set attached to a bus system."""

    def __init__(self, bus_system: BusSystem,
                 measurements: Sequence[Measurement]) -> None:
        self.bus_system = bus_system
        self.measurements: List[Measurement] = list(measurements)
        self._validate()

    def _validate(self) -> None:
        seen = set()
        branch_ids = {b.index for b in self.bus_system.branches}
        for msr in self.measurements:
            if msr.index in seen:
                raise ValueError(f"duplicate measurement index {msr.index}")
            seen.add(msr.index)
            if msr.mtype.is_flow:
                if msr.element not in branch_ids:
                    raise ValueError(
                        f"measurement {msr.index} references unknown "
                        f"branch {msr.element}")
            elif not 1 <= msr.element <= self.bus_system.num_buses:
                raise ValueError(
                    f"measurement {msr.index} references unknown "
                    f"bus {msr.element}")

    # ------------------------------------------------------------------

    @property
    def num_measurements(self) -> int:
        return len(self.measurements)

    @property
    def num_states(self) -> int:
        """Number of state variables (bus phase angles), per the paper."""
        return self.bus_system.num_buses

    def by_index(self, index: int) -> Measurement:
        for msr in self.measurements:
            if msr.index == index:
                return msr
        raise KeyError(f"no measurement with index {index}")

    def unique_component_sets(self) -> Dict[Tuple[str, int], List[int]]:
        """``UMsrSet_E``: component key → measurement indices observing it."""
        groups: Dict[Tuple[str, int], List[int]] = {}
        for msr in self.measurements:
            groups.setdefault(msr.component_key, []).append(msr.index)
        return groups

    def indices(self) -> List[int]:
        return [msr.index for msr in self.measurements]

    def __repr__(self) -> str:
        return (f"MeasurementPlan({self.bus_system.name!r}, "
                f"m={self.num_measurements}, n={self.num_states})")


def full_measurement_plan(bus_system: BusSystem) -> MeasurementPlan:
    """Every possible measurement: 2 per line + 1 injection per bus.

    This is the "maximum possible measurements for a bus system" that
    Fig. 7(a)'s percentages are relative to.
    """
    measurements: List[Measurement] = []
    index = 0
    for branch in bus_system.branches:
        index += 1
        measurements.append(Measurement(
            index, MeasurementType.LINE_FLOW_FORWARD, branch.index))
        index += 1
        measurements.append(Measurement(
            index, MeasurementType.LINE_FLOW_BACKWARD, branch.index))
    for bus in range(1, bus_system.num_buses + 1):
        index += 1
        measurements.append(Measurement(
            index, MeasurementType.BUS_INJECTION, bus))
    return MeasurementPlan(bus_system, measurements)


def sampled_measurement_plan(
    bus_system: BusSystem,
    fraction: float,
    seed: int = 0,
    ensure_coverage: bool = True,
) -> MeasurementPlan:
    """Sample a fraction of the maximum measurement set.

    With ``ensure_coverage`` (the default, matching how real measurement
    plans are engineered), the sample is topped up so that every bus is
    touched by at least one selected measurement; the requested fraction
    is treated as a minimum.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    full = full_measurement_plan(bus_system)
    rng = random.Random(seed)
    want = max(1, round(fraction * full.num_measurements))
    pool = list(full.measurements)
    rng.shuffle(pool)
    chosen = pool[:want]
    if ensure_coverage:
        covered = _buses_covered(bus_system, chosen)
        remaining = pool[want:]
        for msr in remaining:
            if len(covered) == bus_system.num_buses:
                break
            touches = _touched_buses(bus_system, msr)
            if touches - covered:
                chosen.append(msr)
                covered |= touches
    chosen.sort(key=lambda m: m.index)
    renumbered = [
        Measurement(i, msr.mtype, msr.element)
        for i, msr in enumerate(chosen, start=1)
    ]
    return MeasurementPlan(bus_system, renumbered)


def _touched_buses(bus_system: BusSystem, msr: Measurement) -> set:
    if msr.mtype.is_flow:
        branch = bus_system.branch(msr.element)
        return set(branch.buses)
    return {msr.element} | set(bus_system.neighbors(msr.element))


def _buses_covered(bus_system: BusSystem,
                   measurements: Iterable[Measurement]) -> set:
    covered: set = set()
    for msr in measurements:
        covered |= _touched_buses(bus_system, msr)
    return covered
