"""IEEE test-system topologies used by the paper's evaluation.

The paper generates synthetic SCADA systems over the IEEE 14-, 30-, 57-
and 118-bus test systems.  The 14-bus system is transcribed exactly
(branch endpoints and reactances); for the larger systems the full
per-branch datasets are not available offline, so we substitute
*topology-equivalent synthetic grids*: the real systems' bus and branch
counts (30/41, 57/80, 118/186) with the power-grid degree profile the
paper itself relies on ("the average degree of a node is roughly 3,
regardless of the number of buses", §V-B).  Only the topology and branch
susceptances enter the verification model, so the scalability trends
depend on exactly these quantities.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .bus_system import BusSystem, from_branch_list

__all__ = [
    "ieee14", "case30", "case57", "case118", "case_by_buses",
    "synthetic_grid", "IEEE14_BRANCHES", "CASE_SIZES",
]

# (from_bus, to_bus, reactance) — the standard IEEE 14-bus test system.
IEEE14_BRANCHES: List[Tuple[int, int, float]] = [
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
]

# Real branch counts of the corresponding IEEE test systems.
CASE_SIZES: Dict[int, int] = {14: 20, 30: 41, 57: 80, 118: 186}


def ieee14() -> BusSystem:
    """The exact IEEE 14-bus test system."""
    return from_branch_list("ieee14", 14, IEEE14_BRANCHES)


def synthetic_grid(num_buses: int, num_branches: int,
                   seed: int = 0, name: str = "") -> BusSystem:
    """A connected synthetic grid with a power-grid-like degree profile.

    Construction: a random spanning tree (guaranteeing connectivity)
    followed by extra chords biased toward low-degree buses, which keeps
    the degree distribution tight around the 2·branches/buses mean, as in
    real transmission grids.  Reactances are drawn from the range spanned
    by the IEEE 14-bus data.
    """
    if num_branches < num_buses - 1:
        raise ValueError("need at least a spanning tree of branches")
    max_branches = num_buses * (num_buses - 1) // 2
    if num_branches > max_branches:
        raise ValueError("more branches than bus pairs")
    rng = random.Random(seed)
    name = name or f"synthetic{num_buses}"

    edges: List[Tuple[int, int]] = []
    used = set()
    degree = [0] * (num_buses + 1)

    def connect(a: int, b: int) -> None:
        pair = (min(a, b), max(a, b))
        used.add(pair)
        edges.append(pair)
        degree[a] += 1
        degree[b] += 1

    # Random spanning tree: attach each new bus to a random existing one.
    order = list(range(1, num_buses + 1))
    rng.shuffle(order)
    for pos in range(1, num_buses):
        connect(order[pos], rng.choice(order[:pos]))

    # Chords, biased toward low-degree buses.
    attempts = 0
    while len(edges) < num_branches:
        attempts += 1
        if attempts > 100 * num_branches:
            raise RuntimeError("could not place all chords")
        candidates = rng.sample(range(1, num_buses + 1), 4)
        candidates.sort(key=lambda bus: degree[bus])
        a, b = candidates[0], candidates[1]
        if a == b or (min(a, b), max(a, b)) in used:
            continue
        connect(a, b)

    lo = min(x for _, _, x in IEEE14_BRANCHES)
    hi = max(x for _, _, x in IEEE14_BRANCHES)
    branch_data = [(a, b, rng.uniform(lo, hi)) for a, b in edges]
    return from_branch_list(name, num_buses, branch_data)


def case30(seed: int = 0) -> BusSystem:
    """A 30-bus grid with the IEEE 30-bus system's branch count."""
    return synthetic_grid(30, CASE_SIZES[30], seed=seed, name="case30")


def case57(seed: int = 0) -> BusSystem:
    """A 57-bus grid with the IEEE 57-bus system's branch count."""
    return synthetic_grid(57, CASE_SIZES[57], seed=seed, name="case57")


def case118(seed: int = 0) -> BusSystem:
    """A 118-bus grid with the IEEE 118-bus system's branch count."""
    return synthetic_grid(118, CASE_SIZES[118], seed=seed, name="case118")


def case_by_buses(num_buses: int, seed: int = 0) -> BusSystem:
    """The evaluation case for a given bus count (14/30/57/118)."""
    if num_buses == 14:
        return ieee14()
    if num_buses in CASE_SIZES:
        return synthetic_grid(num_buses, CASE_SIZES[num_buses], seed=seed,
                              name=f"case{num_buses}")
    raise ValueError(f"no evaluation case for {num_buses} buses; "
                     f"choose one of {sorted(CASE_SIZES)}")
