"""Numeric observability oracle.

The paper's formal model uses a *combinatorial* observability definition
(state coverage plus a unique-measurement count).  True numerical
observability is a rank condition on the delivered Jacobian rows; this
module provides that rank check as an independent oracle, used by the
tests to relate the two notions and by the ablation benchmark comparing
the paper's criterion against the rank criterion.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from .jacobian import JacobianTable

__all__ = ["rank_of_rows", "is_rank_observable", "covered_states"]


def rank_of_rows(table: JacobianTable,
                 msr_indices: Iterable[int]) -> int:
    """Numerical rank of the Jacobian restricted to given measurements."""
    positions = {msr.index: pos
                 for pos, msr in enumerate(table.plan.measurements)}
    rows = []
    n = table.plan.num_states
    for index in msr_indices:
        dense = np.zeros(n)
        for bus, coeff in table.rows[positions[index]].items():
            dense[bus - 1] = coeff
        rows.append(dense)
    if not rows:
        return 0
    return int(np.linalg.matrix_rank(np.vstack(rows)))


def is_rank_observable(table: JacobianTable,
                       msr_indices: Iterable[int],
                       reference_bus: Optional[int] = None) -> bool:
    """Whether the given measurements determine all states numerically.

    Without a reference bus, full rank ``n`` is required (the paper
    treats all buses as states).  With ``reference_bus`` given, the
    conventional power-system criterion (rank ``n − 1`` after removing
    the reference angle) is used instead.
    """
    n = table.plan.num_states
    target = n if reference_bus is None else n - 1
    indices = list(msr_indices)
    if reference_bus is None:
        return rank_of_rows(table, indices) >= target
    positions = {msr.index: pos
                 for pos, msr in enumerate(table.plan.measurements)}
    rows = []
    for index in indices:
        dense = np.zeros(n)
        for bus, coeff in table.rows[positions[index]].items():
            dense[bus - 1] = coeff
        rows.append(np.delete(dense, reference_bus - 1))
    if not rows:
        return target == 0
    return int(np.linalg.matrix_rank(np.vstack(rows))) >= target


def covered_states(table: JacobianTable,
                   msr_indices: Iterable[int]) -> Set[int]:
    """Buses appearing in the state set of any given measurement."""
    covered: Set[int] = set()
    for index in msr_indices:
        covered.update(table.state_set(index))
    return covered
