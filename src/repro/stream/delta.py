"""Config deltas: what one event changes, and which properties care.

The compiler is the semantic core of the streaming layer.  It keeps
the *base* configuration immutable and represents the live system as a
:class:`LiveState` overlay — which devices are down, which links are
cut, which pairs run downgraded crypto, which IEDs are compromised.
Each incoming event folds into the overlay (:meth:`DeltaCompiler.apply`)
and yields a :class:`ConfigDelta` that records, besides the new state,
the **affected-property set**: the only resiliency properties whose
verdict the event can possibly change.  The watcher re-verifies exactly
those cells and carries the rest forward — that soundness claim is
what the replay-equivalence test checks.

The rules, derived from what the encoder actually reads:

- **Device failure / recovery** (including cascading outages) changes
  the device set, the topology, and the measurement map — every
  property is affected.
- **Link cut / restore** changes the topology — every property is
  affected.
- **Crypto downgrade / restore** forces a pair's security profiles to
  a broken-but-shared algorithm: the handshake still succeeds, so
  *delivery* (assured paths) is untouched and only the secured
  properties — secured observability and bad-data detectability — are
  affected.  This mirrors a real downgrade attack: traffic flows, the
  protections are gone.
- **IED compromise / restore** drops the device's measurements from
  the trusted measurement map (its data can no longer support state
  estimation) while the device itself stays alive and reachable —
  observability-family properties are affected, command deliverability
  is not.

:meth:`DeltaCompiler.materialize` turns an overlay into a full
:class:`~repro.scada.config_io.CaseConfig` whose network is rebuilt
from surviving parts.  Because
:meth:`~repro.scada.network.ScadaNetwork.fingerprint` ignores names,
a state the stream has visited before (e.g. after a recovery) hashes
identically, and the watcher's warm engine for it is reused as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..core.specs import Property
from ..scada.config_io import CaseConfig
from ..scada.devices import CryptoProfile
from ..scada.network import ScadaNetwork
from ..scada.topology import Link
from .events import EventKind, StreamError, StreamEvent

__all__ = ["ConfigDelta", "DOWNGRADE_PROFILE", "DeltaCompiler",
           "LiveState"]

#: The profile a downgrade attack forces on a pair: DES is on the
#: policy's broken list, so the pair still *pairs* (delivery works)
#: but authentication and integrity protection are both void.
DOWNGRADE_PROFILE = CryptoProfile("des", 56)

_ALL_PROPERTIES: FrozenSet[Property] = frozenset(Property)
_SECURITY_PROPERTIES: FrozenSet[Property] = frozenset(
    p for p in Property if p.uses_security)
_MEASUREMENT_PROPERTIES: FrozenSet[Property] = frozenset(
    p for p in Property if p is not Property.COMMAND_DELIVERABILITY)


@dataclass(frozen=True)
class LiveState:
    """The overlay of everything currently wrong with the system."""

    failed: FrozenSet[int] = frozenset()
    cut: FrozenSet[Tuple[int, int]] = frozenset()
    downgraded: FrozenSet[Tuple[int, int]] = frozenset()
    compromised: FrozenSet[int] = frozenset()

    @property
    def pristine(self) -> bool:
        return not (self.failed or self.cut or self.downgraded
                    or self.compromised)

    def describe(self) -> str:
        parts: List[str] = []
        if self.failed:
            parts.append("failed=" + ",".join(
                str(d) for d in sorted(self.failed)))
        if self.cut:
            parts.append("cut=" + ",".join(
                f"{a}-{b}" for a, b in sorted(self.cut)))
        if self.downgraded:
            parts.append("downgraded=" + ",".join(
                f"{a}-{b}" for a, b in sorted(self.downgraded)))
        if self.compromised:
            parts.append("compromised=" + ",".join(
                str(d) for d in sorted(self.compromised)))
        return "; ".join(parts) if parts else "pristine"

    def to_json(self) -> Dict[str, object]:
        return {
            "failed": sorted(self.failed),
            "cut": [list(pair) for pair in sorted(self.cut)],
            "downgraded": [list(pair) for pair in sorted(self.downgraded)],
            "compromised": sorted(self.compromised),
        }


@dataclass(frozen=True)
class ConfigDelta:
    """One event's effect: the state transition and its blast radius.

    ``changed`` is False for no-op events (failing an already-failed
    device, restoring an uncut link); the watcher then re-verifies
    nothing.  ``affected`` is empty exactly when ``changed`` is False.
    """

    event: StreamEvent
    before: LiveState
    after: LiveState
    affected: FrozenSet[Property]
    note: str = ""

    @property
    def changed(self) -> bool:
        return self.before != self.after

    def describe(self) -> str:
        if not self.changed:
            return f"{self.event.describe()} → no-op ({self.note})"
        names = ", ".join(sorted(p.value for p in self.affected))
        return f"{self.event.describe()} → affects {names}"


class DeltaCompiler:
    """Folds events into :class:`LiveState` and materializes configs."""

    def __init__(self, base: CaseConfig) -> None:
        self.base = base
        network = base.network
        self._device_ids = frozenset(network.devices)
        self._field_ids = frozenset(network.field_device_ids)
        self._ied_ids = frozenset(network.ied_ids)
        self._link_pairs = frozenset(
            link.node_pair for link in network.topology.links)

    # -- event folding --------------------------------------------------

    def apply(self, state: LiveState, event: StreamEvent) -> ConfigDelta:
        """Validate *event* against the base network and fold it in."""
        kind = event.kind
        if kind in (EventKind.DEVICE_FAILURE, EventKind.DEVICE_RECOVERY):
            return self._apply_device(state, event)
        if kind in (EventKind.LINK_CUT, EventKind.LINK_RESTORE):
            return self._apply_link(state, event)
        if kind in (EventKind.CRYPTO_DOWNGRADE, EventKind.CRYPTO_RESTORE):
            return self._apply_crypto(state, event)
        return self._apply_compromise(state, event)

    def _apply_device(self, state: LiveState,
                      event: StreamEvent) -> ConfigDelta:
        unknown = [d for d in event.devices if d not in self._field_ids]
        if unknown:
            raise StreamError(
                f"event #{event.seq}: not a field device: {unknown} "
                f"(only IEDs and RTUs fail; MTUs and routers are the "
                f"control-center side)")
        if event.kind is EventKind.DEVICE_FAILURE:
            fresh = frozenset(event.devices) - state.failed
            after = replace(state, failed=state.failed | fresh)
            note = "" if fresh else "already failed"
        else:
            hit = frozenset(event.devices) & state.failed
            after = replace(state, failed=state.failed - hit)
            note = "" if hit else "not failed"
        affected = _ALL_PROPERTIES if after != state else frozenset()
        return ConfigDelta(event, state, after, affected, note)

    def _apply_link(self, state: LiveState,
                    event: StreamEvent) -> ConfigDelta:
        pair = event.link
        assert pair is not None
        if pair not in self._link_pairs:
            raise StreamError(f"event #{event.seq}: no link "
                              f"{pair[0]}-{pair[1]} in the base network")
        if event.kind is EventKind.LINK_CUT:
            after = replace(state, cut=state.cut | {pair})
            note = "" if pair not in state.cut else "already cut"
        else:
            after = replace(state, cut=state.cut - {pair})
            note = "" if pair in state.cut else "not cut"
        affected = _ALL_PROPERTIES if after != state else frozenset()
        return ConfigDelta(event, state, after, affected, note)

    def _apply_crypto(self, state: LiveState,
                      event: StreamEvent) -> ConfigDelta:
        pair = event.pair
        assert pair is not None
        for end in pair:
            if end not in self._device_ids:
                raise StreamError(f"event #{event.seq}: unknown device "
                                  f"{end} in pair")
        if event.kind is EventKind.CRYPTO_DOWNGRADE:
            after = replace(state, downgraded=state.downgraded | {pair})
            note = "" if pair not in state.downgraded \
                else "already downgraded"
        else:
            after = replace(state, downgraded=state.downgraded - {pair})
            note = "" if pair in state.downgraded else "not downgraded"
        affected = _SECURITY_PROPERTIES if after != state else frozenset()
        return ConfigDelta(event, state, after, affected, note)

    def _apply_compromise(self, state: LiveState,
                          event: StreamEvent) -> ConfigDelta:
        unknown = [d for d in event.devices if d not in self._ied_ids]
        if unknown:
            raise StreamError(f"event #{event.seq}: not an IED: "
                              f"{unknown} (only IEDs produce "
                              f"measurements to compromise)")
        if event.kind is EventKind.IED_COMPROMISE:
            fresh = frozenset(event.devices) - state.compromised
            after = replace(state, compromised=state.compromised | fresh)
            note = "" if fresh else "already compromised"
        else:
            hit = frozenset(event.devices) & state.compromised
            after = replace(state, compromised=state.compromised - hit)
            note = "" if hit else "not compromised"
        affected = _MEASUREMENT_PROPERTIES if after != state \
            else frozenset()
        return ConfigDelta(event, state, after, affected, note)

    # -- materialization ------------------------------------------------

    def materialize(self, state: LiveState) -> CaseConfig:
        """The full configuration the overlay describes.

        The base config is returned untouched for the pristine state;
        otherwise the network is rebuilt from the surviving devices,
        links, measurements, and security pairs.  The problem (the
        Jacobian) is shared — events never change the grid itself.
        """
        if state.pristine:
            return self.base
        base_net = self.base.network
        devices = [d for d in base_net.devices.values()
                   if d.device_id not in state.failed]
        links = [
            Link(link.index, link.a, link.b, up=link.up,
                 medium=link.medium)
            for link in base_net.topology.links
            if link.node_pair not in state.cut
            and link.a not in state.failed
            and link.b not in state.failed
        ]
        dark = state.failed | state.compromised
        measurement_map = {
            ied: list(msrs)
            for ied, msrs in base_net.measurement_map.items()
            if ied not in dark
        }
        pair_security: Dict[Tuple[int, int], Sequence[CryptoProfile]] = {
            pair: profiles
            for pair, profiles in base_net.pair_security.items()
            if pair[0] not in state.failed
            and pair[1] not in state.failed
        }
        for pair in state.downgraded:
            if pair[0] in state.failed or pair[1] in state.failed:
                continue
            pair_security[pair] = (DOWNGRADE_PROFILE,)
        network = ScadaNetwork(
            devices=devices,
            links=links,
            measurement_map=measurement_map,
            pair_security=pair_security,
            policy=base_net.policy,
            name=f"{base_net.name}@{state.describe()}",
            max_paths=base_net.max_paths,
            max_path_length=base_net.max_path_length,
            main_mtu=base_net.mtu_id,
        )
        return CaseConfig(network=network, problem=self.base.problem,
                          spec=self.base.spec)
