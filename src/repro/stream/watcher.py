"""The watcher: continuous re-verification against a spec floor.

A :class:`Watcher` holds a declared floor — the list of
:class:`~repro.core.specs.ResiliencySpec` cells the live system must
keep satisfying — plus warm verification engines for every network
shape the stream has visited recently.  Each incoming event compiles
to a :class:`~repro.stream.delta.ConfigDelta`; only the floor cells
whose property is in the delta's affected set are re-verified (the
others *cannot* have changed — the replay-equivalence test enforces
that), and every verdict flip raises a structured :class:`Alarm`.

Warmth comes from two layers.  Engines default to the **assumption
backend**, so within one network shape every (property, k, r) cell
shares a single persistent solver context addressed by selector
literals.  Across shapes, engines live in a small LRU keyed by the
network fingerprint — and because fingerprints ignore names, a
recovery that returns the system to a previously-seen shape lands on
that shape's warm engine (counted on ``stream.engine.hits``).

Telemetry: ``stream.*`` counters and the ``stream.reverify_ms``
histogram flow through the active tracer, so they surface in
``repro stats`` for traced CLI runs and in ``/metrics`` when the
service hosts the watcher.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.results import Status, VerificationResult
from ..core.specs import ResiliencySpec
from ..engine.engine import VerificationEngine
from ..obs import count, gauge, observe, span
from ..sat.limits import Limits
from ..scada.config_io import CaseConfig
from .delta import ConfigDelta, DeltaCompiler, LiveState
from .events import StreamError, StreamEvent

__all__ = ["Alarm", "WatchUpdate", "Watcher", "batch_verdicts"]


@dataclass(frozen=True)
class Alarm:
    """One verdict flip on a floor cell.

    ``kind`` is ``raised`` when the cell dropped below the floor
    (a threat within budget now exists), ``cleared`` when it returned
    to resilient, and ``unknown`` when a resource budget expired
    before the re-verification decided (certifying nothing).
    """

    seq: int
    event_seq: int
    time: float
    kind: str
    spec: str
    property: str
    status: str
    previous: Optional[str]
    threat: Optional[str] = None

    def describe(self) -> str:
        head = {"raised": "ALARM", "cleared": "clear",
                "unknown": "unknown"}.get(self.kind, self.kind)
        text = (f"[{head}] #{self.seq} event #{self.event_seq} "
                f"t={self.time:.2f}s {self.spec}: "
                f"{self.previous or 'unverified'} → {self.status}")
        if self.threat:
            text += f" ({self.threat})"
        return text

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "alarm": self.seq,
            "event": self.event_seq,
            "t": round(self.time, 6),
            "kind": self.kind,
            "spec": self.spec,
            "property": self.property,
            "status": self.status,
            "previous": self.previous,
        }
        if self.threat is not None:
            record["threat"] = self.threat
        return record


@dataclass
class WatchUpdate:
    """What one event did: the delta, the re-verified cells, alarms."""

    event: StreamEvent
    delta: ConfigDelta
    reverified: List[Tuple[ResiliencySpec, VerificationResult]] = \
        field(default_factory=list)
    skipped: List[ResiliencySpec] = field(default_factory=list)
    alarms: List[Alarm] = field(default_factory=list)
    latency_s: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "event": self.event.to_json(),
            "state": self.delta.after.to_json(),
            "changed": self.delta.changed,
            "affected": sorted(p.value for p in self.delta.affected),
            "reverified": [
                {"spec": spec.describe(), "status": result.status.value,
                 "solve_ms": round(result.total_time * 1000.0, 3)}
                for spec, result in self.reverified
            ],
            "skipped": [spec.describe() for spec in self.skipped],
            "alarms": [alarm.to_json() for alarm in self.alarms],
            "latency_ms": round(self.latency_s * 1000.0, 3),
        }


class Watcher:
    """Apply events to warm engines; alarm on floor violations."""

    def __init__(self, base: CaseConfig,
                 floors: Sequence[ResiliencySpec],
                 backend: str = "assumption",
                 card_encoding: str = "totalizer",
                 limits: Optional[Limits] = None,
                 engine_cache: int = 4) -> None:
        if not floors:
            raise StreamError("a watcher needs at least one floor spec")
        if engine_cache < 1:
            raise StreamError("engine_cache must be positive")
        self.compiler = DeltaCompiler(base)
        self.floors: List[ResiliencySpec] = list(dict.fromkeys(floors))
        self.backend = backend
        self.card_encoding = card_encoding
        self.limits = limits
        self.engine_cache = engine_cache
        self.state = LiveState()
        self._engines: "OrderedDict[str, VerificationEngine]" = \
            OrderedDict()
        self.verdicts: Dict[ResiliencySpec, VerificationResult] = {}
        self.alarms: List[Alarm] = []
        self.events_seen = 0
        self._alarm_seq = 0
        # Baseline pass: every floor cell is verified on the pristine
        # config so later events have a verdict to diff against.  A
        # floor already violated at attach time alarms immediately
        # (event_seq 0).
        engine = self._engine_for(base)
        for spec in self.floors:
            with span("stream.baseline", spec=spec.describe()):
                result = engine.verify(spec, limits=self.limits)
            self.verdicts[spec] = result
            if result.status is not Status.RESILIENT:
                self._alarm(0, 0.0, spec, result, previous=None)

    # -- engines --------------------------------------------------------

    def _engine_for(self, config: CaseConfig) -> VerificationEngine:
        fingerprint = config.network.fingerprint()
        engine = self._engines.get(fingerprint)
        if engine is not None:
            self._engines.move_to_end(fingerprint)
            count("stream.engine.hits")
            return engine
        count("stream.engine.misses")
        engine = VerificationEngine(
            config.network, config.problem, backend=self.backend,
            card_encoding=self.card_encoding, lint=False)
        self._engines[fingerprint] = engine
        while len(self._engines) > self.engine_cache:
            self._engines.popitem(last=False)
            count("stream.engine.evictions")
        gauge("stream.engines.live", float(len(self._engines)))
        return engine

    # -- event ingestion ------------------------------------------------

    def apply(self, event: StreamEvent) -> WatchUpdate:
        """Fold one event in and re-verify the affected floor cells."""
        started = time.monotonic()
        delta = self.compiler.apply(self.state, event)
        self.state = delta.after
        self.events_seen += 1
        count("stream.events")
        update = WatchUpdate(event=event, delta=delta)
        if not delta.changed:
            count("stream.events.noop")
            update.skipped = list(self.floors)
            count("stream.reverify.skipped", len(update.skipped))
            update.latency_s = time.monotonic() - started
            return update
        config = self.compiler.materialize(self.state)
        engine = self._engine_for(config)
        for spec in self.floors:
            if spec.property not in delta.affected:
                update.skipped.append(spec)
                continue
            with span("stream.reverify", spec=spec.describe(),
                      event=event.seq):
                result = engine.verify(spec, limits=self.limits)
            count("stream.reverify")
            observe("stream.reverify_ms", result.total_time * 1000.0)
            previous = self.verdicts.get(spec)
            self.verdicts[spec] = result
            update.reverified.append((spec, result))
            if previous is None or previous.status is not result.status:
                alarm = self._alarm(
                    event.seq, event.time, spec, result,
                    previous=previous.status.value if previous else None)
                update.alarms.append(alarm)
        count("stream.reverify.skipped", len(update.skipped))
        update.latency_s = time.monotonic() - started
        observe("stream.event_ms", update.latency_s * 1000.0)
        return update

    def _alarm(self, event_seq: int, when: float, spec: ResiliencySpec,
               result: VerificationResult,
               previous: Optional[str]) -> Alarm:
        if result.status is Status.THREAT_FOUND:
            kind = "raised"
        elif result.status is Status.RESILIENT:
            kind = "cleared"
        else:
            kind = "unknown"
        self._alarm_seq += 1
        alarm = Alarm(
            seq=self._alarm_seq,
            event_seq=event_seq,
            time=when,
            kind=kind,
            spec=spec.describe(),
            property=spec.property.value,
            status=result.status.value,
            previous=previous,
            threat=(result.threat.describe()
                    if result.threat is not None else None),
        )
        self.alarms.append(alarm)
        count(f"stream.alarms.{kind}")
        return alarm

    # -- introspection --------------------------------------------------

    @property
    def below_floor(self) -> List[ResiliencySpec]:
        """Floor cells currently violated (threat within budget)."""
        return [spec for spec, result in self.verdicts.items()
                if result.status is Status.THREAT_FOUND]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state.to_json(),
            "events": self.events_seen,
            "backend": self.backend,
            "floors": [spec.describe() for spec in self.floors],
            "verdicts": {spec.describe(): result.status.value
                         for spec, result in self.verdicts.items()},
            "below_floor": [spec.describe()
                            for spec in self.below_floor],
            "alarms": len(self.alarms),
            "engines": len(self._engines),
        }


def batch_verdicts(base: CaseConfig, state: LiveState,
                   floors: Sequence[ResiliencySpec],
                   backend: str = "fresh",
                   limits: Optional[Limits] = None
                   ) -> Dict[ResiliencySpec, Status]:
    """From-scratch verdicts for *state* — the watcher's ground truth.

    Builds a cold engine on the fully materialized config and verifies
    every floor cell.  ``repro watch --selfcheck`` and the
    replay-equivalence test compare these against the watcher's
    incrementally-maintained verdicts after every event.
    """
    compiler = DeltaCompiler(base)
    config = compiler.materialize(state)
    engine = VerificationEngine(config.network, config.problem,
                                backend=backend, lint=False)
    return {spec: engine.verify(spec, limits=limits).status
            for spec in floors}
