"""Streaming re-verification: events, deltas, and the live watcher.

The paper's verdict is a one-shot certificate; this package keeps it
continuously true.  A :class:`~repro.stream.emulator.ScenarioEmulator`
(or any external feed) produces timestamped
:class:`~repro.stream.events.StreamEvent` records for the five live
scenarios — device failure/recovery, link cuts, crypto downgrades,
IED compromise, cascading outages.  The
:class:`~repro.stream.delta.DeltaCompiler` folds each event into a
minimal :class:`~repro.stream.delta.LiveState` overlay and names the
properties it can affect, and the
:class:`~repro.stream.watcher.Watcher` re-verifies exactly those floor
cells on warm assumption-backend engines, raising structured
:class:`~repro.stream.watcher.Alarm` records when resiliency drops
below the declared spec floor.

Entry points: ``repro emulate`` / ``repro watch`` on the CLI, and
``POST /watch`` / ``POST /events`` / ``GET /watch/{id}/alarms`` on the
service.  See ``docs/STREAMING.md``.
"""

from .delta import (
    DOWNGRADE_PROFILE,
    ConfigDelta,
    DeltaCompiler,
    LiveState,
)
from .emulator import ScenarioEmulator
from .events import (
    EVENT_SCHEMA_VERSION,
    SCENARIOS,
    EventKind,
    StreamError,
    StreamEvent,
    read_events,
    write_events,
)
from .watcher import Alarm, Watcher, WatchUpdate, batch_verdicts

__all__ = [
    "Alarm",
    "ConfigDelta",
    "DOWNGRADE_PROFILE",
    "DeltaCompiler",
    "EVENT_SCHEMA_VERSION",
    "EventKind",
    "LiveState",
    "SCENARIOS",
    "ScenarioEmulator",
    "StreamError",
    "StreamEvent",
    "WatchUpdate",
    "Watcher",
    "batch_verdicts",
    "read_events",
    "write_events",
]
