"""A seeded emulator producing plausible live-event sequences.

The emulator mirrors the :class:`~repro.stream.delta.LiveState` it has
caused so far, so every emitted event is *valid* (it never fails an
already-failed device or restores an uncut link) and every sequence it
produces replays cleanly through a watcher.  Inter-arrival times are
exponential around ``mean_interval``; with pending disturbances a
``recovery_bias`` coin flips toward emitting the matching recovery
event, so long runs hover around a steady disturbance level instead of
monotonically tearing the network down.

Scenario families (see :data:`~repro.stream.events.SCENARIOS`):

``device-outage``
    One field device (IED or RTU) fails; recovers later.
``link-cut``
    One communication link is cut (endpoints must be alive).
``crypto-downgrade``
    One currently-secured pair is forced onto broken crypto.
``ied-compromise``
    One IED's measurements become untrusted.
``cascading-outage``
    An RTU fails together with every IED hanging off it — the
    multi-device failure event the paper's hierarchy makes dangerous.

Determinism: two emulators built with the same network, seed, and
knobs emit identical sequences.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..scada.network import ScadaNetwork
from .events import SCENARIOS, EventKind, StreamError, StreamEvent

__all__ = ["ScenarioEmulator"]

#: Recovery kind for each disturbance category.
_RECOVERY: Dict[str, EventKind] = {
    "failed": EventKind.DEVICE_RECOVERY,
    "cut": EventKind.LINK_RESTORE,
    "downgraded": EventKind.CRYPTO_RESTORE,
    "compromised": EventKind.IED_RESTORE,
}


class ScenarioEmulator:
    """Emit timestamped attack/failure events against one network."""

    def __init__(self, network: ScadaNetwork, seed: int = 0,
                 scenarios: Optional[Sequence[str]] = None,
                 mean_interval: float = 1.0,
                 recovery_bias: float = 0.4,
                 max_failed_fraction: float = 0.4) -> None:
        chosen = tuple(scenarios) if scenarios else SCENARIOS
        unknown = [s for s in chosen if s not in SCENARIOS]
        if unknown:
            raise StreamError(f"unknown scenario(s) {unknown}; "
                              f"choose from {list(SCENARIOS)}")
        if mean_interval <= 0:
            raise StreamError("mean_interval must be positive")
        if not 0.0 <= recovery_bias < 1.0:
            raise StreamError("recovery_bias must be in [0, 1)")
        self.network = network
        self.scenarios = chosen
        self.mean_interval = mean_interval
        self.recovery_bias = recovery_bias
        self._rng = random.Random(seed)
        self._field = sorted(network.field_device_ids)
        self._ieds = set(network.ied_ids)
        self._rtus = sorted(network.rtu_ids)
        self._links = sorted({link.node_pair
                              for link in network.topology.links})
        self._adjacent_ieds: Dict[int, List[int]] = {
            rtu: [] for rtu in self._rtus}
        for a, b in self._links:
            if a in self._adjacent_ieds and b in self._ieds:
                self._adjacent_ieds[a].append(b)
            if b in self._adjacent_ieds and a in self._ieds:
                self._adjacent_ieds[b].append(a)
        #: Pairs worth downgrading: linked pairs (router-free) that are
        #: currently secured, plus any explicit security-table pairs.
        secured = [
            pair for pair in self._links
            if not network.devices[pair[0]].is_router
            and not network.devices[pair[1]].is_router
            and network.hop_secured(*pair)
        ]
        seen = set(secured)
        for pair in sorted(network.pair_security):
            if (pair not in seen and pair[0] in network.devices
                    and pair[1] in network.devices
                    and network.hop_secured(*pair)):
                secured.append(pair)
                seen.add(pair)
        self._pairs = secured
        #: Cap on concurrently failed devices, so long runs never
        #: grind the whole plant down to nothing.
        self._max_failed = max(1, int(len(self._field)
                                      * max_failed_fraction))
        # The mirror of the LiveState this emulator has caused.
        self._failed: Set[int] = set()
        self._cut: Set[Tuple[int, int]] = set()
        self._downgraded: Set[Tuple[int, int]] = set()
        self._compromised: Set[int] = set()
        self._clock = 0.0
        self._seq = 0

    # -- generation -----------------------------------------------------

    def events(self, count: int) -> List[StreamEvent]:
        """The next *count* events (advances the emulator)."""
        return [self.next_event() for _ in range(count)]

    def next_event(self) -> StreamEvent:
        self._clock += self._rng.expovariate(1.0 / self.mean_interval)
        self._seq += 1
        pending = [name for name, pool in self._pending().items() if pool]
        if pending and self._rng.random() < self.recovery_bias:
            return self._recover(self._rng.choice(pending))
        # Try scenarios in a seeded random order; fall back to a
        # recovery when nothing new is possible (everything already
        # failed/cut/downgraded/compromised).
        order = list(self.scenarios)
        self._rng.shuffle(order)
        for scenario in order:
            event = self._attempt(scenario)
            if event is not None:
                return event
        if pending:
            return self._recover(self._rng.choice(pending))
        raise StreamError("emulator is stuck: no scenario applies and "
                          "nothing is pending recovery")

    # -- internals ------------------------------------------------------

    def _pending(self) -> Dict[str, List[object]]:
        return {
            "failed": sorted(self._failed),
            "cut": sorted(self._cut),
            "downgraded": sorted(self._downgraded),
            "compromised": sorted(self._compromised),
        }

    def _event(self, kind: EventKind, scenario: str,
               devices: Tuple[int, ...] = (),
               link: Optional[Tuple[int, int]] = None,
               pair: Optional[Tuple[int, int]] = None) -> StreamEvent:
        return StreamEvent(seq=self._seq, time=self._clock, kind=kind,
                           devices=devices, link=link, pair=pair,
                           scenario=scenario)

    def _recover(self, category: str) -> StreamEvent:
        kind = _RECOVERY[category]
        if category == "failed":
            device = self._rng.choice(sorted(self._failed))
            self._failed.discard(device)
            return self._event(kind, "recovery", devices=(device,))
        if category == "cut":
            pair = self._rng.choice(sorted(self._cut))
            self._cut.discard(pair)
            return self._event(kind, "recovery", link=pair)
        if category == "downgraded":
            pair = self._rng.choice(sorted(self._downgraded))
            self._downgraded.discard(pair)
            return self._event(kind, "recovery", pair=pair)
        device = self._rng.choice(sorted(self._compromised))
        self._compromised.discard(device)
        return self._event(kind, "recovery", devices=(device,))

    def _attempt(self, scenario: str) -> Optional[StreamEvent]:
        if scenario == "device-outage":
            room = self._max_failed - len(self._failed)
            pool = [d for d in self._field if d not in self._failed]
            if room < 1 or not pool:
                return None
            device = self._rng.choice(pool)
            self._failed.add(device)
            return self._event(EventKind.DEVICE_FAILURE, scenario,
                               devices=(device,))
        if scenario == "link-cut":
            pool = [pair for pair in self._links
                    if pair not in self._cut
                    and pair[0] not in self._failed
                    and pair[1] not in self._failed]
            if not pool or len(self._cut) >= max(1, len(self._links) // 2):
                return None
            pair = self._rng.choice(pool)
            self._cut.add(pair)
            return self._event(EventKind.LINK_CUT, scenario, link=pair)
        if scenario == "crypto-downgrade":
            pool = [pair for pair in self._pairs
                    if pair not in self._downgraded
                    and pair[0] not in self._failed
                    and pair[1] not in self._failed]
            if not pool:
                return None
            pair = self._rng.choice(pool)
            self._downgraded.add(pair)
            return self._event(EventKind.CRYPTO_DOWNGRADE, scenario,
                               pair=pair)
        if scenario == "ied-compromise":
            pool = [d for d in sorted(self._ieds)
                    if d not in self._compromised
                    and d not in self._failed]
            if not pool:
                return None
            device = self._rng.choice(pool)
            self._compromised.add(device)
            return self._event(EventKind.IED_COMPROMISE, scenario,
                               devices=(device,))
        # cascading-outage: an RTU takes its attached IEDs down with it.
        pool = [rtu for rtu in self._rtus if rtu not in self._failed]
        if not pool:
            return None
        room = self._max_failed - len(self._failed)
        if room < 2:
            return None
        rtu = self._rng.choice(pool)
        cascade = [rtu] + [
            ied for ied in self._adjacent_ieds.get(rtu, ())
            if ied not in self._failed
        ][:max(0, room - 1)]
        self._failed.update(cascade)
        return self._event(EventKind.DEVICE_FAILURE, scenario,
                           devices=tuple(cascade))
