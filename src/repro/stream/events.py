"""The streaming event model: what can happen to a live SCADA system.

A :class:`StreamEvent` is one timestamped occurrence drawn from the
paper's attack/failure scenarios — device failure and recovery, link
cuts, crypto downgrades, IED compromise, and cascading outages (a
multi-device :data:`EventKind.DEVICE_FAILURE`).  Events are plain
data: the :mod:`~repro.stream.delta` layer decides what each one means
for the network under verification, and the
:mod:`~repro.stream.emulator` generates plausible sequences of them.

Serialization is one JSON object per line (JSONL), schema
``stream/1``::

    {"v": 1, "seq": 3, "t": 2.84, "kind": "device-failure",
     "devices": [17], "scenario": "device-outage"}

``link`` and ``pair`` are two-element arrays when present.  Unknown
fields are ignored on read, so the format can grow.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventKind",
    "SCENARIOS",
    "StreamError",
    "StreamEvent",
    "read_events",
    "write_events",
]

EVENT_SCHEMA_VERSION = 1

#: The five scenario families the emulator draws from.
SCENARIOS: Tuple[str, ...] = (
    "device-outage",
    "link-cut",
    "crypto-downgrade",
    "ied-compromise",
    "cascading-outage",
)


class StreamError(ValueError):
    """Raised on malformed events or events that do not fit the network."""


class EventKind(enum.Enum):
    """What happened.  Every kind has a recovery counterpart."""

    DEVICE_FAILURE = "device-failure"
    DEVICE_RECOVERY = "device-recovery"
    LINK_CUT = "link-cut"
    LINK_RESTORE = "link-restore"
    CRYPTO_DOWNGRADE = "crypto-downgrade"
    CRYPTO_RESTORE = "crypto-restore"
    IED_COMPROMISE = "ied-compromise"
    IED_RESTORE = "ied-restore"


#: Which payload field each kind requires.
_DEVICE_KINDS = (EventKind.DEVICE_FAILURE, EventKind.DEVICE_RECOVERY,
                 EventKind.IED_COMPROMISE, EventKind.IED_RESTORE)
_LINK_KINDS = (EventKind.LINK_CUT, EventKind.LINK_RESTORE)
_PAIR_KINDS = (EventKind.CRYPTO_DOWNGRADE, EventKind.CRYPTO_RESTORE)


def _sorted_pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class StreamEvent:
    """One timestamped occurrence on the live system.

    ``devices`` carries the affected device ids for device-flavoured
    kinds (a cascading outage is a multi-device failure); ``link`` and
    ``pair`` are sorted ``(a, b)`` node pairs for link and crypto
    kinds.  ``scenario`` names the generating scenario family (one of
    :data:`SCENARIOS`) for reporting; the semantics come entirely from
    ``kind`` and the payload.
    """

    seq: int
    time: float
    kind: EventKind
    devices: Tuple[int, ...] = ()
    link: Optional[Tuple[int, int]] = None
    pair: Optional[Tuple[int, int]] = None
    scenario: str = ""

    def __post_init__(self) -> None:
        if self.kind in _DEVICE_KINDS and not self.devices:
            raise StreamError(
                f"{self.kind.value} event needs at least one device")
        if self.kind in _LINK_KINDS and self.link is None:
            raise StreamError(f"{self.kind.value} event needs a link")
        if self.kind in _PAIR_KINDS and self.pair is None:
            raise StreamError(f"{self.kind.value} event needs a pair")
        if self.link is not None:
            object.__setattr__(self, "link", _sorted_pair(*self.link))
        if self.pair is not None:
            object.__setattr__(self, "pair", _sorted_pair(*self.pair))
        object.__setattr__(self, "devices", tuple(self.devices))

    def describe(self) -> str:
        subject = ""
        if self.devices:
            subject = "device " + ", ".join(str(d) for d in self.devices)
        elif self.link is not None:
            subject = f"link {self.link[0]}-{self.link[1]}"
        elif self.pair is not None:
            subject = f"pair {self.pair[0]}-{self.pair[1]}"
        tail = f" [{self.scenario}]" if self.scenario else ""
        return (f"#{self.seq} t={self.time:.2f}s "
                f"{self.kind.value} {subject}{tail}")

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "t": round(self.time, 6),
            "kind": self.kind.value,
        }
        if self.devices:
            record["devices"] = list(self.devices)
        if self.link is not None:
            record["link"] = list(self.link)
        if self.pair is not None:
            record["pair"] = list(self.pair)
        if self.scenario:
            record["scenario"] = self.scenario
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "StreamEvent":
        version = record.get("v", EVENT_SCHEMA_VERSION)
        if not isinstance(version, int) or version > EVENT_SCHEMA_VERSION:
            raise StreamError(f"unsupported event schema version "
                              f"{version!r} (supported: "
                              f"{EVENT_SCHEMA_VERSION})")
        try:
            kind = EventKind(str(record["kind"]))
        except (KeyError, ValueError) as exc:
            raise StreamError(
                f"bad event kind in {record!r}") from exc
        try:
            link = record.get("link")
            pair = record.get("pair")
            return cls(
                seq=int(record.get("seq", 0)),
                time=float(record.get("t", 0.0)),
                kind=kind,
                devices=tuple(int(d) for d in record.get("devices", ())),
                link=(int(link[0]), int(link[1])) if link else None,
                pair=(int(pair[0]), int(pair[1])) if pair else None,
                scenario=str(record.get("scenario", "")),
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise StreamError(f"malformed event {record!r}: {exc}") from exc


def write_events(events: Iterable[StreamEvent], handle: IO[str]) -> int:
    """Serialize *events* as JSONL; returns the number written."""
    written = 0
    for ev in events:
        handle.write(json.dumps(ev.to_json(), sort_keys=True) + "\n")
        written += 1
    return written


def read_events(handle: IO[str]) -> List[StreamEvent]:
    """Parse a JSONL event stream (blank lines ignored)."""
    events: List[StreamEvent] = []
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StreamError(f"line {lineno}: malformed JSON "
                              f"({exc.msg})") from exc
        if not isinstance(record, dict):
            raise StreamError(f"line {lineno}: not a JSON object")
        events.append(StreamEvent.from_json(record))
    return events
