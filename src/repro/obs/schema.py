"""The JSONL trace schema, and a dependency-free validator.

A trace file is one JSON object per line.  Four record types:

``meta``
    Exactly one, first line.  ``{"type": "meta", "version": 1,
    "pid": <int>, "attrs": {...}}`` — ``attrs`` carries the command
    line, config path, backend, and anything else the producer knows.

``span``
    A named timed region.  ``{"type": "span", "name": <str>,
    "t": <float>, "dur": <float>, "attrs": {...}}`` — ``t`` is the
    start offset in seconds from the tracer's start, ``dur`` the
    duration.  Phase spans are named ``encode`` / ``solve`` /
    ``extract``; a whole verification is a ``query`` span; a parallel
    fan-out is a ``sweep`` span.

``event``
    A point observation.  ``{"type": "event", "name": <str>,
    "t": <float>, "attrs": {...}}`` — e.g. ``solver.restart``,
    ``sweep.task``.

``metrics``
    Exactly one, last line: the final
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot —
    ``{"type": "metrics", "counters": {...}, "gauges": {...},
    "histograms": {...}}``.

Records replayed from sweep workers additionally carry a ``worker``
field (the worker pid).  Validation is structural, not exhaustive:
:func:`validate_record` checks the fields above and their types, and
:func:`validate_trace` additionally checks the meta-first /
metrics-last framing.  Both return human-readable problem strings
(empty list = valid) so the CI smoke job and ``repro stats`` can report
malformed traces without raising.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping

__all__ = [
    "TRACE_VERSION",
    "RECORD_TYPES",
    "validate_record",
    "validate_trace",
    "load_trace",
]

TRACE_VERSION = 1

RECORD_TYPES = ("meta", "span", "event", "metrics")

#: Required fields (beyond ``type``) per record type, with the Python
#: type (or tuple of types, as ``isinstance`` accepts) each uses.
_NUMBER = (int, float)
_REQUIRED: Dict[str, Dict[str, Any]] = {
    "meta": {"version": int, "pid": int, "attrs": dict},
    "span": {"name": str, "t": _NUMBER, "dur": _NUMBER, "attrs": dict},
    "event": {"name": str, "t": _NUMBER, "attrs": dict},
    "metrics": {"counters": dict, "gauges": dict, "histograms": dict},
}


def validate_record(record: object, index: int = 0) -> List[str]:
    """Structural problems with one parsed record (empty = valid)."""
    where = f"record {index}"
    if not isinstance(record, Mapping):
        return [f"{where}: not a JSON object"]
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        return [f"{where}: unknown type {kind!r}"]
    problems: List[str] = []
    for field, expected in _REQUIRED[kind].items():
        if field not in record:
            problems.append(f"{where} ({kind}): missing field {field!r}")
        elif not isinstance(record[field], expected):
            problems.append(
                f"{where} ({kind}): field {field!r} has type "
                f"{type(record[field]).__name__}")
    if kind == "meta":
        version = record.get("version")
        if isinstance(version, int) and version > TRACE_VERSION:
            problems.append(
                f"{where} (meta): trace version {version} is newer than "
                f"supported version {TRACE_VERSION}")
    worker = record.get("worker")
    if worker is not None and not isinstance(worker, int):
        problems.append(f"{where} ({kind}): field 'worker' has type "
                        f"{type(worker).__name__}")
    return problems


def validate_trace(records: Iterable[object]) -> List[str]:
    """Problems with a whole record stream: per-record plus framing."""
    problems: List[str] = []
    kinds: List[str] = []
    for index, record in enumerate(records):
        problems.extend(validate_record(record, index))
        if isinstance(record, Mapping):
            kind = record.get("type")
            if isinstance(kind, str):
                kinds.append(kind)
    if not kinds:
        return problems + ["trace is empty"]
    if kinds[0] != "meta":
        problems.append("first record is not 'meta'")
    if kinds.count("meta") > 1:
        problems.append("multiple 'meta' records")
    if kinds[-1] != "metrics":
        problems.append("last record is not 'metrics' "
                        "(trace truncated or tracer not closed?)")
    if kinds.count("metrics") > 1:
        problems.append("multiple 'metrics' records")
    return problems


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into records.

    Raises ``ValueError`` naming the offending line on malformed JSON;
    use :func:`validate_trace` afterwards for schema-level checks.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed JSON ({exc.msg})"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: not a JSON object")
            records.append(record)
    return records
