"""Telemetry: solver hooks, spans, metrics, JSONL traces, aggregation.

The subsystem behind ``--trace`` and ``repro stats``.  Design rules:

- **Off by default, near-zero when off.**  No tracer installed means
  every instrumentation point is one ``None`` check (module helpers
  here and in :mod:`.tracer`) or one attribute check (solver hooks).
- **Observers depend on the code they observe, never the reverse.**
  The hook protocol lives in :mod:`repro.sat.hooks`; ``repro.sat``
  does not import ``repro.obs``.
- **Pickle-safe across process pools.**  Sweep workers trace into
  in-memory tracers whose exports ship back with task results and are
  absorbed into the parent trace with per-worker attribution.
"""

from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .schema import (
    TRACE_VERSION,
    load_trace,
    validate_record,
    validate_trace,
)
from .stats import TraceStats, aggregate
from .tracer import (
    SolverProbe,
    Span,
    Tracer,
    activate,
    count,
    current_tracer,
    event,
    gauge,
    observe,
    probe_for,
    set_tracer,
    span,
    thread_activate,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "SolverProbe",
    "Span",
    "TRACE_VERSION",
    "TraceStats",
    "Tracer",
    "activate",
    "aggregate",
    "count",
    "current_tracer",
    "event",
    "gauge",
    "load_trace",
    "observe",
    "probe_for",
    "set_tracer",
    "span",
    "thread_activate",
    "validate_record",
    "validate_trace",
]
