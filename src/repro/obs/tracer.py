"""The tracer: spans, events, and the per-process active tracer.

A :class:`Tracer` turns a run into a JSONL stream of *records* —
``meta`` (one header line), ``span`` (a named timed region with
attributes), ``event`` (a point-in-time observation), and one final
``metrics`` line holding the :class:`~repro.obs.metrics.MetricsRegistry`
snapshot.  The schema is specified (and validated) in
:mod:`repro.obs.schema`.

Instrumented code never takes a tracer parameter: it asks for the
per-process *active* tracer (:func:`current_tracer`) and does nothing
when none is installed, so the disabled path costs one ``None`` check.
The module-level helpers :func:`span`, :func:`event`, :func:`count`,
:func:`gauge`, and :func:`observe` package that check; ``span`` returns
a shared no-op span when tracing is off, so call sites can
unconditionally write ``with span("solve") as sp: sp.attrs[...] = ...``.

Sweep workers run in separate processes where the parent's tracer does
not exist.  They build an in-memory ``Tracer()`` (no sink), and its
:meth:`Tracer.export` — a plain dict of records plus a metrics
snapshot — is pickled back with the task result; the parent's
:meth:`Tracer.absorb` replays those records tagged with the worker's
pid, giving per-worker attribution in a single merged trace.

The verification service runs many jobs concurrently on *threads* of
one process, where a single process-wide tracer would interleave
unrelated requests.  :func:`thread_activate` installs a per-thread
override: :func:`current_tracer` consults the calling thread's override
first and falls back to the process-wide tracer, so single-threaded
consumers (the CLI, sweep workers) keep the exact old semantics while
each service worker thread traces its own job in isolation.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from types import TracebackType
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    TextIO,
    Type,
)

from ..sat.hooks import SolverHooks
from .metrics import MetricsRegistry
from .schema import TRACE_VERSION

__all__ = [
    "SolverProbe",
    "Span",
    "Tracer",
    "activate",
    "count",
    "current_tracer",
    "event",
    "gauge",
    "observe",
    "probe_for",
    "set_tracer",
    "span",
    "thread_activate",
]

#: Per-process active tracer; ``None`` means telemetry is off.
_ACTIVE: Optional["Tracer"] = None

#: Per-thread tracer override (see :func:`thread_activate`).  The
#: attribute is *absent* (not ``None``) when a thread has no override,
#: so a thread can explicitly override to ``None`` — isolating itself
#: from a process-wide tracer — and that is distinguishable from "no
#: override installed".
_THREAD = threading.local()

_NO_OVERRIDE = object()

#: Solver events (restarts, clause-DB reductions) recorded per trace
#: before further ones are only counted — a hard search can restart
#: thousands of times and the counters already carry the totals.
_SOLVER_EVENT_CAP = 10_000


def current_tracer() -> Optional["Tracer"]:
    """The active tracer of this thread, or ``None`` (telemetry off).

    A per-thread override installed with :func:`thread_activate` wins;
    otherwise the process-wide tracer set with :func:`set_tracer` /
    :func:`activate` applies.
    """
    override = getattr(_THREAD, "tracer", _NO_OVERRIDE)
    if override is not _NO_OVERRIDE:
        return override  # type: ignore[return-value]
    return _ACTIVE


def set_tracer(tracer: Optional["Tracer"]) -> Optional["Tracer"]:
    """Install *tracer* as the process-wide active tracer.

    Returns the previously active tracer so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextlib.contextmanager
def activate(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """``with activate(tracer):`` — scoped :func:`set_tracer`."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextlib.contextmanager
def thread_activate(
        tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """``with thread_activate(tracer):`` — scoped per-thread override.

    Only the calling thread sees *tracer*; every other thread keeps its
    own override or the process-wide tracer.  Passing ``None``
    explicitly *isolates* the thread from a process-wide tracer — the
    service's scheduler uses that to keep job telemetry out of an
    operator's CLI trace.  Nests correctly with itself and with
    :func:`activate`.
    """
    previous = getattr(_THREAD, "tracer", _NO_OVERRIDE)
    _THREAD.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is _NO_OVERRIDE:
            del _THREAD.tracer
        else:
            _THREAD.tracer = previous


class Span:
    """A named timed region; records itself on ``__exit__``.

    Attributes set on :attr:`attrs` (including after entry) land in the
    record, so a span opened around a solve can note the verdict found
    inside it.
    """

    __slots__ = ("name", "attrs", "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        duration = self._tracer.clock() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.record({
            "type": "span",
            "name": self.name,
            "t": self._tracer.rel(self._start),
            "dur": duration,
            "attrs": self.attrs,
        })


class _NullSpan:
    """The shared do-nothing span returned when tracing is off.

    Carries a throwaway ``attrs`` dict so instrumented code can assign
    result attributes unconditionally.
    """

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        self.attrs.clear()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects records and metrics; optionally streams JSONL to *sink*.

    With a ``sink`` every record is written (and flushed) as produced,
    so a crashed run still leaves a usable partial trace.  Without one
    the records buffer in memory — the worker-side mode, exported with
    :meth:`export` and shipped back through the process pool.
    """

    def __init__(self, sink: Optional[TextIO] = None, *,
                 meta: Optional[Mapping[str, Any]] = None) -> None:
        self.clock = time.perf_counter
        self.registry = MetricsRegistry()
        self.records: List[Dict[str, Any]] = []
        self._sink = sink
        self._t0 = self.clock()
        self._closed = False
        self._solver_event_budget = _SOLVER_EVENT_CAP
        header: Dict[str, Any] = {
            "type": "meta",
            "version": TRACE_VERSION,
            "pid": os.getpid(),
            "attrs": dict(meta or {}),
        }
        self.record(header)

    # ------------------------------------------------------------------

    def rel(self, absolute: float) -> float:
        """A clock reading relative to the tracer's start."""
        return absolute - self._t0

    def record(self, record: Dict[str, Any]) -> None:
        """Append one raw record (already schema-shaped)."""
        if self._closed:
            return
        self.records.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, default=str) + "\n")
            self._sink.flush()

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, dict(attrs))

    def event(self, name: str, **attrs: Any) -> None:
        if name.startswith("solver."):
            if self._solver_event_budget <= 0:
                self.registry.count("solver.events_dropped")
                return
            self._solver_event_budget -= 1
        self.record({
            "type": "event",
            "name": name,
            "t": self.rel(self.clock()),
            "attrs": attrs,
        })

    # -- metrics shortcuts ----------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.registry.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    # -- worker aggregation ---------------------------------------------

    def export(self) -> Dict[str, Any]:
        """Everything collected so far, as one picklable dict."""
        return {
            "records": [dict(r) for r in self.records],
            "metrics": self.registry.snapshot(),
        }

    def absorb(self, export: Mapping[str, Any],
               worker: Optional[int] = None) -> None:
        """Replay a worker tracer's :meth:`export` into this trace.

        Every replayed record gains a ``worker`` field (the worker's
        pid) unless it already carries one, and the worker's metrics
        merge into this registry.  The worker's ``meta`` header and any
        ``metrics`` record are dropped — the merged trace keeps exactly
        one of each (the parent's), and the worker's metrics arrive
        through the export's ``metrics`` snapshot instead.
        """
        records = export.get("records") or []
        assert isinstance(records, list)
        for original in records:
            record = dict(original)
            kind = record.get("type")
            if kind == "meta":
                if worker is None:
                    worker = record.get("pid")
                continue
            if kind == "metrics":
                continue
            if worker is not None:
                record.setdefault("worker", worker)
            self.record(record)
        metrics = export.get("metrics")
        if metrics:
            assert isinstance(metrics, Mapping)
            self.registry.merge(metrics)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Write the final ``metrics`` record and stop recording.

        Idempotent; does not close the sink (the opener owns it).
        """
        if self._closed:
            return
        snapshot = self.registry.snapshot()
        self.record({"type": "metrics", **snapshot})
        self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Tracer(records={len(self.records)}, "
                f"sink={'file' if self._sink is not None else 'memory'})")


class SolverProbe:
    """The :class:`~repro.sat.hooks.SolverHooks` feeding a tracer.

    Per-conflict observations (LBD, conflict decision depth) go to
    histograms only — one Python call per conflict, no record each.
    Rare structural events (restarts, clause-DB reductions) are both
    counted and recorded as trace events, capped per trace.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def on_learned(self, lbd: int, size: int, level: int) -> None:
        tracer = self._tracer
        tracer.registry.observe("solver.lbd", lbd)
        tracer.registry.observe("solver.conflict_depth", level)

    def on_restart(self, restarts: int, conflicts: int) -> None:
        self._tracer.count("solver.restarts")
        self._tracer.event("solver.restart",
                           restarts=restarts, conflicts=conflicts)

    def on_reduce_db(self, before: int, after: int, conflicts: int) -> None:
        self._tracer.count("solver.db_reductions")
        self._tracer.event("solver.reduce_db", before=before,
                           after=after, conflicts=conflicts)

    def on_rescale(self) -> None:
        self._tracer.count("solver.activity_rescales")

    def on_inprocess(self, subsumed: int, strengthened: int,
                     vivified: int, conflicts: int) -> None:
        tracer = self._tracer
        tracer.count("solver.inprocess.rounds")
        tracer.count("solver.inprocess.subsumed", subsumed)
        tracer.count("solver.inprocess.strengthened", strengthened)
        tracer.count("solver.inprocess.vivified", vivified)
        tracer.event("solver.inprocess", subsumed=subsumed,
                     strengthened=strengthened, vivified=vivified,
                     conflicts=conflicts)

    def on_arena_compact(self, live: int, reclaimed: int) -> None:
        tracer = self._tracer
        tracer.count("solver.arena.compactions")
        tracer.count("solver.arena.reclaimed_slots", reclaimed)
        tracer.event("solver.arena.compact", live=live,
                     reclaimed=reclaimed)

    def on_tiers(self, core: int, mid: int, local: int) -> None:
        # Gauges: retention per tier is a level, not a rate.
        registry = self._tracer.registry
        registry.gauge("solver.tier.core", core)
        registry.gauge("solver.tier.mid", mid)
        registry.gauge("solver.tier.local", local)


def probe_for(tracer: Optional[Tracer]) -> Optional[SolverHooks]:
    """A :class:`SolverProbe` for *tracer*, or ``None`` when off."""
    return SolverProbe(tracer) if tracer is not None else None


# ----------------------------------------------------------------------
# Module-level convenience: no-ops when no tracer is active.
# ----------------------------------------------------------------------

def span(name: str, **attrs: Any) -> Any:
    """A span on the active tracer, or the shared no-op span."""
    tracer = current_tracer()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(name, **attrs)


def count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: float) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.gauge(name, value)


def observe(name: str, value: float) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.observe(name, value)
