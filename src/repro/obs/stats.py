"""Trace aggregation behind ``repro stats``.

:func:`aggregate` folds one or more JSONL trace files into a
:class:`TraceStats` summary: wall time per phase (encode / solve /
extract), per-query solver work (conflicts, restarts, decisions),
encoding-cache hit rate, sweep worker utilization, and the solver
distribution histograms (LBD, conflict depth) from the final metrics
record.  :meth:`TraceStats.to_text` renders the human summary printed
by default; :meth:`TraceStats.to_json` the machine form behind
``--json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from .metrics import MetricsRegistry
from .schema import load_trace, validate_trace

__all__ = ["PhaseStat", "TraceStats", "aggregate"]

#: Span names treated as verification phases, in display order.
PHASES = ("encode", "solve", "extract")


class PhaseStat:
    """Total wall time and invocation count for one phase."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TraceStats:
    """The aggregate of one or more trace files."""

    def __init__(self) -> None:
        self.traces = 0
        self.problems: List[str] = []
        self.phases: Dict[str, PhaseStat] = {p: PhaseStat() for p in PHASES}
        self.queries = 0
        self.query_time = 0.0
        self.conflicts = 0
        self.restarts = 0
        self.decisions = 0
        self.propagations = 0
        self.sweeps = 0
        self.sweep_time = 0.0
        self.sweep_tasks = 0
        self.sweep_failures = 0
        #: worker pid -> summed task wall time
        self.worker_busy: Dict[int, float] = {}
        self.metrics = MetricsRegistry()
        self.events: Dict[str, int] = {}

    # -- folding --------------------------------------------------------

    def add_trace(self, records: Sequence[Mapping[str, Any]],
                  source: str = "<trace>") -> None:
        self.traces += 1
        self.problems.extend(f"{source}: {p}"
                             for p in validate_trace(records))
        for record in records:
            kind = record.get("type")
            if kind == "span":
                self._add_span(record)
            elif kind == "event":
                self._add_event(record)
            elif kind == "metrics":
                self.metrics.merge(record)

    def _add_span(self, record: Mapping[str, Any]) -> None:
        name = record.get("name")
        duration = float(record.get("dur") or 0.0)
        attrs = record.get("attrs") or {}
        if not isinstance(attrs, Mapping):
            attrs = {}
        if name in self.phases:
            self.phases[str(name)].add(duration)
        elif name == "query":
            self.queries += 1
            self.query_time += duration
            self.conflicts += int(attrs.get("conflicts") or 0)
            self.restarts += int(attrs.get("restarts") or 0)
            self.decisions += int(attrs.get("decisions") or 0)
            self.propagations += int(attrs.get("propagations") or 0)
        elif name == "sweep":
            self.sweeps += 1
            self.sweep_time += duration

    def _add_event(self, record: Mapping[str, Any]) -> None:
        name = str(record.get("name"))
        self.events[name] = self.events.get(name, 0) + 1
        if name != "sweep.task":
            return
        attrs = record.get("attrs") or {}
        if not isinstance(attrs, Mapping):
            return
        self.sweep_tasks += 1
        if attrs.get("ok") is False:
            self.sweep_failures += 1
        worker = attrs.get("worker", record.get("worker"))
        duration = float(attrs.get("dur") or 0.0)
        if isinstance(worker, int):
            self.worker_busy[worker] = (
                self.worker_busy.get(worker, 0.0) + duration)

    # -- derived --------------------------------------------------------

    @property
    def cache_hit_rate(self) -> Optional[float]:
        hits = self.metrics.counters.get("cache.hits", 0)
        misses = self.metrics.counters.get("cache.misses", 0)
        lookups = hits + misses
        return hits / lookups if lookups else None

    @property
    def stream_counters(self) -> Dict[str, int]:
        """The ``stream.*`` counters (empty when no watcher ran)."""
        return {name: value
                for name, value in sorted(self.metrics.counters.items())
                if name.startswith("stream.")}

    @property
    def corpus_counters(self) -> Dict[str, int]:
        """The ``corpus.*`` counters (empty when no corpus run ran)."""
        return {name: value
                for name, value in sorted(self.metrics.counters.items())
                if name.startswith("corpus.")}

    @property
    def worker_utilization(self) -> Optional[float]:
        """Mean fraction of sweep wall time each worker spent busy."""
        if not self.worker_busy or self.sweep_time <= 0.0:
            return None
        per_worker = self.sweep_time * len(self.worker_busy)
        return min(1.0, sum(self.worker_busy.values()) / per_worker)

    def _per_query(self, total: int) -> str:
        if not self.queries:
            return str(total)
        return f"{total} ({total / self.queries:.1f}/query)"

    # -- rendering ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        histograms = {
            name: {"count": hist.count, "mean": hist.mean,
                   "p50": hist.quantile(0.5), "p90": hist.quantile(0.9),
                   "max": hist.high}
            for name, hist in sorted(self.metrics.histograms.items())
        }
        return {
            "traces": self.traces,
            "problems": list(self.problems),
            "phases": {
                name: {"count": stat.count, "total": stat.total,
                       "mean": stat.mean}
                for name, stat in self.phases.items()
            },
            "queries": {
                "count": self.queries,
                "total_time": self.query_time,
                "conflicts": self.conflicts,
                "restarts": self.restarts,
                "decisions": self.decisions,
                "propagations": self.propagations,
            },
            "cache": {
                "hits": self.metrics.counters.get("cache.hits", 0),
                "misses": self.metrics.counters.get("cache.misses", 0),
                "hit_rate": self.cache_hit_rate,
            },
            "sweep": {
                "sweeps": self.sweeps,
                "tasks": self.sweep_tasks,
                "failures": self.sweep_failures,
                "wall_time": self.sweep_time,
                "workers": len(self.worker_busy),
                "utilization": self.worker_utilization,
            },
            "stream": self.stream_counters,
            "corpus": self.corpus_counters,
            "counters": dict(sorted(self.metrics.counters.items())),
            "histograms": histograms,
            "events": dict(sorted(self.events.items())),
        }

    def to_text(self) -> str:
        lines: List[str] = []
        lines.append(f"traces aggregated: {self.traces}")
        if self.problems:
            lines.append(f"schema problems: {len(self.problems)}")
            lines.extend(f"  ! {p}" for p in self.problems[:10])
            if len(self.problems) > 10:
                lines.append(f"  … and {len(self.problems) - 10} more")
        lines.append("")
        lines.append("phase timings:")
        phase_total = sum(s.total for s in self.phases.values())
        for name in PHASES:
            stat = self.phases[name]
            share = (100.0 * stat.total / phase_total
                     if phase_total > 0 else 0.0)
            lines.append(f"  {name:<8} {stat.total:9.3f}s  "
                         f"x{stat.count:<5d} mean {stat.mean * 1e3:8.2f}ms"
                         f"  {share:5.1f}%")
        lines.append("")
        lines.append(f"queries: {self.queries} "
                     f"({self.query_time:.3f}s total)")
        if self.queries:
            lines.append(f"  conflicts    {self._per_query(self.conflicts)}")
            lines.append(f"  restarts     {self._per_query(self.restarts)}")
            lines.append(f"  decisions    {self._per_query(self.decisions)}")
            lines.append("  propagations "
                         f"{self._per_query(self.propagations)}")
        rate = self.cache_hit_rate
        if rate is not None:
            hits = self.metrics.counters.get("cache.hits", 0)
            misses = self.metrics.counters.get("cache.misses", 0)
            lines.append(f"encoding cache: {hits} hit(s), {misses} "
                         f"miss(es) ({100.0 * rate:.1f}% hit rate)")
        else:
            # Zero lookups: the rate is undefined, not 0% — say so
            # explicitly rather than dividing by zero or going silent.
            lines.append("encoding cache: hit rate n/a (no lookups)")
        if self.sweeps or self.sweep_tasks:
            lines.append(f"sweeps: {self.sweeps} "
                         f"({self.sweep_time:.3f}s wall), "
                         f"{self.sweep_tasks} task(s), "
                         f"{self.sweep_failures} failure(s), "
                         f"{len(self.worker_busy)} worker(s)")
            util = self.worker_utilization
            if util is not None:
                lines.append(f"  worker utilization: {100.0 * util:.1f}%")
            else:
                # No busy-time attribution or a zero-duration sweep
                # span: utilization is undefined for this trace.
                lines.append("  worker utilization: n/a")
            for pid, busy in sorted(self.worker_busy.items()):
                lines.append(f"  worker {pid}: {busy:.3f}s busy")
        corpus = self.corpus_counters
        if corpus:
            cells = corpus.get("corpus.cells", 0)
            skipped = corpus.get("corpus.cells.skipped", 0)
            screened = corpus.get("corpus.cells.screened", 0)
            solved = corpus.get("corpus.cells.solved", 0)
            unknown = corpus.get("corpus.cells.unknown", 0)
            lines.append(f"corpus: {cells} cell(s) — {skipped} "
                         f"resumed from store, {screened} screened "
                         f"structurally, {solved} solved, "
                         f"{unknown} unknown")
            hits = corpus.get("corpus.store.hits", 0)
            misses = corpus.get("corpus.store.misses", 0)
            lookups = hits + misses
            stored = corpus.get("corpus.store.appends", 0)
            quarantined = corpus.get("corpus.store.quarantined", 0)
            rate_text = (f"{100.0 * hits / lookups:.1f}% hit rate"
                         if lookups else "hit rate n/a (no lookups)")
            lines.append(f"  store: {hits} hit(s), {misses} miss(es) "
                         f"({rate_text}), {stored} record(s) appended"
                         + (f", {quarantined} shard(s) quarantined"
                            if quarantined else ""))
        stream = self.stream_counters
        if stream:
            events = stream.get("stream.events", 0)
            reverified = stream.get("stream.reverify", 0)
            skipped = stream.get("stream.reverify.skipped", 0)
            cells = reverified + skipped
            lines.append(f"stream: {events} event(s), {reverified} "
                         f"cell(s) re-verified, {skipped} skipped"
                         + (f" ({100.0 * skipped / cells:.1f}% pruned)"
                            if cells else ""))
            alarms = {kind: stream.get(f"stream.alarms.{kind}", 0)
                      for kind in ("raised", "cleared", "unknown")}
            if any(alarms.values()):
                lines.append("  alarms: "
                             + ", ".join(f"{n} {kind}"
                                         for kind, n in alarms.items()
                                         if n))
            hits = stream.get("stream.engine.hits", 0)
            misses = stream.get("stream.engine.misses", 0)
            if hits + misses:
                lines.append(f"  warm engines: {hits} hit(s), "
                             f"{misses} miss(es), "
                             f"{stream.get('stream.engine.evictions', 0)}"
                             f" eviction(s)")
        if self.metrics.histograms:
            lines.append("")
            lines.append("solver distributions:")
            for name, hist in sorted(self.metrics.histograms.items()):
                lines.append(
                    f"  {name:<22} n={hist.count:<7d} "
                    f"mean={hist.mean:6.2f} p50={hist.quantile(0.5):g} "
                    f"p90={hist.quantile(0.9):g} max={hist.high:g}"
                    if hist.high is not None else
                    f"  {name:<22} n=0")
        return "\n".join(lines) + "\n"


def aggregate(paths: Sequence[str]) -> TraceStats:
    """Fold the trace files at *paths* into one :class:`TraceStats`."""
    stats = TraceStats()
    for path in paths:
        stats.add_trace(load_trace(path), source=path)
    return stats
