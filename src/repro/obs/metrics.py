"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

The registry is the in-memory half of the telemetry layer: solver hooks
and spans feed it during a run, and its :meth:`MetricsRegistry.snapshot`
is written as the final record of a JSONL trace (see
:mod:`repro.obs.schema`).  Snapshots are plain JSON-able dictionaries,
so they pickle across :class:`~repro.engine.SweepExecutor` process
pools and :meth:`MetricsRegistry.merge` can fold a worker's metrics
into the parent's.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds — tuned for small-integer
#: solver distributions (learned-clause LBD, conflict decision depth):
#: fine-grained at the glue end, geometric above, overflow bucket last.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512,
)


class Histogram:
    """A fixed-bucket histogram over non-negative observations.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  The running ``sum``,
    ``min``, and ``max`` make mean/extremes recoverable from a snapshot
    without raw samples.
    """

    __slots__ = ("bounds", "counts", "count", "total", "low", "high")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and sorted")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        Overflow observations report the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return float(self.bounds[index])
                return float(self.high if self.high is not None else 0.0)
        return float(self.high if self.high is not None else 0.0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.low,
            "max": self.high,
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another histogram's snapshot (same bounds) into this."""
        bounds = snapshot.get("bounds")
        if tuple(bounds or ()) != self.bounds:  # type: ignore[arg-type]
            raise ValueError("histogram bucket bounds differ; cannot merge")
        counts = snapshot.get("counts")
        if not isinstance(counts, list) or len(counts) != len(self.counts):
            raise ValueError("histogram snapshot counts are malformed")
        for index, value in enumerate(counts):
            self.counts[index] += int(value)
        self.count += int(snapshot.get("count", 0))  # type: ignore[arg-type]
        self.total += float(snapshot.get("sum", 0.0))  # type: ignore[arg-type]
        for key, pick in (("min", min), ("max", max)):
            other = snapshot.get(key)
            if other is None:
                continue
            mine = self.low if key == "min" else self.high
            merged = (float(other) if mine is None  # type: ignore[arg-type]
                      else pick(mine, float(other)))  # type: ignore[arg-type]
            if key == "min":
                self.low = merged
            else:
                self.high = merged

    def __repr__(self) -> str:
        return (f"Histogram(n={self.count}, mean={self.mean:.2f}, "
                f"max={self.high})")


class MetricsRegistry:
    """Named counters, gauges, and histograms for one trace session."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds)
            self.histograms[name] = hist
        hist.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able (and picklable) copy of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: hist.snapshot()
                           for name, hist in self.histograms.items()},
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a snapshot (e.g. from a sweep worker) into this registry.

        Counters and histograms add; gauges keep the merged-in value
        (last writer wins, matching their point-in-time semantics).
        """
        # Snapshots read back from disk can be malformed (truncated
        # writes, hand-edited traces); raise ValueError — the error
        # class the stats CLI reports — never AssertionError.
        counters = snapshot.get("counters") or {}
        if not isinstance(counters, Mapping):
            raise ValueError("metrics snapshot counters must be a mapping")
        for name, value in counters.items():
            self.count(name, int(value))
        gauges = snapshot.get("gauges") or {}
        if not isinstance(gauges, Mapping):
            raise ValueError("metrics snapshot gauges must be a mapping")
        for name, value in gauges.items():
            self.gauge(name, float(value))
        histograms = snapshot.get("histograms") or {}
        if not isinstance(histograms, Mapping):
            raise ValueError(
                "metrics snapshot histograms must be a mapping")
        for name, hist_snapshot in histograms.items():
            if not isinstance(hist_snapshot, Mapping):
                raise ValueError(
                    f"histogram snapshot {name!r} must be a mapping")
            hist = self.histograms.get(name)
            if hist is None:
                bounds = hist_snapshot.get("bounds") or DEFAULT_BUCKETS
                if not isinstance(bounds, Sequence):
                    raise ValueError(
                        f"histogram snapshot {name!r} bounds are "
                        f"malformed")
                hist = Histogram(tuple(float(b) for b in bounds))
                self.histograms[name] = hist
            hist.merge(hist_snapshot)

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self.counters)}, "
                f"gauges={len(self.gauges)}, "
                f"histograms={len(self.histograms)})")
